"""Load benchmark for the evaluation service (ISSUE 9 acceptance).

Spins up the real server (asyncio HTTP transport, supervised worker
pool, result cache) and drives it with N concurrent clients — each
submitting a mix of distinct and deliberately duplicated specs — then
records p50/p99 request latency, throughput, shed rate and dedupe hit
rate into ``BENCH_service.json`` at the repository root.

Two scenarios run: ``baseline`` (healthy workers) and ``chaos``
(``--chaos``-style worker kills on the service path *plus* hostile
clients injecting malformed and abandoned requests).  In both, the
acceptance contract is asserted, not just measured: every request gets
a structured response — a result, DEGRADED cells, or 4xx/5xx JSON —
and identical concurrent submissions compute exactly once.

Shrink with ``REPRO_BENCH_CLIENTS`` (default 8, the acceptance floor)
and ``REPRO_BENCH_REQUESTS`` (requests per client, default 4).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.resil.atomic import atomic_write_json
from repro.resil.settings import ResilSettings
from repro.serve.bench_schema import validate_bench_service
from repro.serve.chaos_client import ChaosClient
from repro.serve.client import ServiceClient
from repro.serve.http import ServerThread
from repro.serve.service import EvaluationService
from repro.sim import cache as sim_cache

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The distinct request pool: small cells, two policies.
CELLS = [
    {"workload": app, "policy": policy, "rate": 0.5, "scale": 0.25}
    for app in ("HOT", "STN", "BFS")
    for policy in ("lru", "hpe")
]


def _clients() -> int:
    try:
        return max(2, int(os.environ.get("REPRO_BENCH_CLIENTS", "8")))
    except ValueError:
        return 8


def _requests_per_client() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_REQUESTS", "4")))
    except ValueError:
        return 4


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


class _ClientWorker:
    """One concurrent client: submits, watches, and tallies."""

    def __init__(self, port: int, index: int, requests: int) -> None:
        self.client = ServiceClient("127.0.0.1", port, timeout=120.0)
        self.index = index
        self.requests = requests
        self.latencies_ms: list[float] = []
        self.statuses: dict[int, int] = {}
        self.deduped = 0
        self.unanswered = 0
        self.degraded_cells = 0

    def run(self) -> None:
        for attempt in range(self.requests):
            # Request 0 is the same cell for every client (deliberate
            # concurrent duplicates); later requests walk the pool.
            cell = CELLS[0] if attempt == 0 else (
                CELLS[(self.index + attempt) % len(CELLS)]
            )
            start = time.perf_counter()
            try:
                response = self.client.submit({"cell": cell})
            except Exception:  # noqa: BLE001 - tallied, not hidden
                self.unanswered += 1
                continue
            self.statuses[response.status] = (
                self.statuses.get(response.status, 0) + 1
            )
            if response.status != 202:
                # A shed is a complete (fast) structured answer.
                self.latencies_ms.append(
                    (time.perf_counter() - start) * 1000.0
                )
                continue
            if response.body.get("deduped"):
                self.deduped += 1
            final = self.client.watch(
                response.body["job_id"], timeout=300.0, poll=0.2
            )
            self.latencies_ms.append((time.perf_counter() - start) * 1000.0)
            result = final.body.get("result") or {}
            self.degraded_cells += int(result.get("cells_degraded") or 0)
            assert final.body.get("status") not in ("queued", "running"), (
                "request left without a terminal answer"
            )


def _drive(service: EvaluationService, *, chaos_clients: bool) -> dict:
    clients = _clients()
    per_client = _requests_per_client()
    with ServerThread(service) as server:
        workers = [
            _ClientWorker(server.port, index, per_client)
            for index in range(clients)
        ]
        threads = [
            threading.Thread(target=worker.run, name=f"bench-client-{i}")
            for i, worker in enumerate(workers)
        ]
        hostile_report = None
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        if chaos_clients:
            hostile = ChaosClient(
                "127.0.0.1", server.port, seed=17,
                abandon=0.3, malformed=0.3,
            )
            hostile_report = hostile.run({"cell": CELLS[0]}, count=10)
        for thread in threads:
            thread.join(timeout=600.0)
        wall = time.perf_counter() - start
        stats = service.stats()
    total = sum(sum(w.statuses.values()) for w in workers)
    shed = sum(
        count
        for worker in workers
        for status, count in worker.statuses.items()
        if status in (429, 503)
    )
    latencies = [ms for worker in workers for ms in worker.latencies_ms]
    submitted = stats["counters"]["serve.submitted"]
    deduped = stats["counters"]["serve.deduped"]
    unanswered = sum(w.unanswered for w in workers)
    abandoned = 0
    if hostile_report is not None:
        # Hostile traffic counts toward the answered/unanswered
        # contract: only deliberately abandoned requests lack answers.
        total += sum(hostile_report.statuses.values())
        unanswered += hostile_report.unanswered
        abandoned = hostile_report.abandoned
        unanswered += abandoned
    record = {
        "clients": clients,
        "requests": clients * per_client + (
            hostile_report.sent if hostile_report is not None else 0
        ),
        "duplicates": sum(w.deduped for w in workers),
        "latency_p50_ms": round(_percentile(latencies, 0.50), 2),
        "latency_p99_ms": round(_percentile(latencies, 0.99), 2),
        "throughput_rps": round(total / wall, 2) if wall else 0.0,
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "dedupe_hit_rate": round(deduped / submitted, 4) if submitted else 0.0,
        "answered": total,
        "unanswered": unanswered,
        "wall_s": round(wall, 3),
        "degraded_cells": sum(w.degraded_cells for w in workers),
        "abandoned": abandoned,
    }
    # The acceptance contract, asserted on every benchmark run.
    assert record["unanswered"] <= record["abandoned"], record
    assert record["duplicates"] >= 1, "concurrent duplicates never deduped"
    return record


def _merge_into_output(fragment: dict) -> None:
    payload = {}
    if OUTPUT.is_file():
        try:
            payload = json.loads(OUTPUT.read_text(encoding="ascii"))
        except (ValueError, OSError):
            payload = {}
    section = payload.setdefault("service_load", {})
    section.update(fragment)
    problems = validate_bench_service(payload)
    assert not problems, problems
    atomic_write_json(OUTPUT, payload)


def test_service_load_baseline(tmp_path):
    previous_dir = sim_cache.cache_dir()
    previous_enabled = sim_cache.cache_enabled()
    sim_cache.configure(enabled=True, directory=tmp_path)
    try:
        service = EvaluationService(ResilSettings(
            rate_limit=0.0, max_queue=64, max_concurrent=4,
            request_deadline=0.0, breaker_threshold=0,
            drain_grace=10.0, worker_timeout=300.0, retries=1,
            backoff=0.05, serve_jobs=2,
        ))
        record = _drive(service, chaos_clients=False)
        record["chaos"] = ""
    finally:
        sim_cache.configure(enabled=previous_enabled, directory=previous_dir)
    assert record["degraded_cells"] == 0
    _merge_into_output({"baseline": record})
    print()
    print(f"service load (baseline): {record['clients']} clients, "
          f"p50 {record['latency_p50_ms']}ms p99 {record['latency_p99_ms']}ms, "
          f"{record['throughput_rps']} req/s, "
          f"dedupe {record['dedupe_hit_rate']:.0%} -> {OUTPUT.name}")


def test_service_load_chaos(tmp_path):
    chaos = "seed=9,crash=0.35,flaky=0.2"
    previous_dir = sim_cache.cache_dir()
    previous_enabled = sim_cache.cache_enabled()
    sim_cache.configure(enabled=True, directory=tmp_path)
    try:
        service = EvaluationService(ResilSettings(
            rate_limit=0.0, max_queue=64, max_concurrent=4,
            request_deadline=0.0, breaker_threshold=0,
            drain_grace=10.0, worker_timeout=300.0, retries=1,
            backoff=0.05, serve_jobs=2,
        ), chaos=chaos)
        record = _drive(service, chaos_clients=True)
        record["chaos"] = chaos
    finally:
        sim_cache.configure(enabled=previous_enabled, directory=previous_dir)
    _merge_into_output({"chaos": record})
    print()
    print(f"service load (chaos): {record['clients']} clients, "
          f"p50 {record['latency_p50_ms']}ms p99 {record['latency_p99_ms']}ms, "
          f"{record['throughput_rps']} req/s, "
          f"degraded cells {record['degraded_cells']}, "
          f"unanswered {record['unanswered']} "
          f"(abandoned {record['abandoned']}) -> {OUTPUT.name}")
