"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures on the
full 23-application suite and prints the reproduced rows, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction run.

Set ``REPRO_BENCH_SCALE`` (e.g. ``0.5``) or ``REPRO_BENCH_APPS``
(comma-separated abbreviations) to shrink the runs during development,
and ``REPRO_BENCH_JOBS`` to fan matrix benchmarks over worker processes.

Benchmarks measure simulation cost, so the persistent result cache is
bypassed for the benchmarked process (a cached rerun would measure a
disk read); ``bench_matrix_wallclock`` opts back in explicitly because
the cache is the thing it measures.
"""

from __future__ import annotations

import os
from typing import Optional

import pytest


def bench_scale() -> float:
    """Footprint scale for benchmark runs (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_apps() -> Optional[list[str]]:
    """Application subset for benchmark runs (env-overridable)."""
    raw = os.environ.get("REPRO_BENCH_APPS")
    if not raw:
        return None
    return [item.strip().upper() for item in raw.split(",") if item.strip()]


def bench_jobs() -> int:
    """Worker-process count for matrix benchmarks (env-overridable)."""
    try:
        return int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    except ValueError:
        return 1


@pytest.fixture(autouse=True, scope="session")
def _bypass_result_cache():
    """Benchmarks time simulations, not cache reads."""
    from repro.sim import cache

    cache.configure(enabled=False)
    yield
    cache.configure(enabled=True)


def run_once(benchmark, harness, **kwargs):
    """Run ``harness`` exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(
        lambda: harness(**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def harness_kwargs():
    """Common kwargs (scale / app subset) for every figure harness."""
    kwargs = {"scale": bench_scale()}
    apps = bench_apps()
    if apps is not None:
        kwargs["apps"] = apps
    return kwargs
