"""Regenerate Fig. 14 (average MRU-C search overhead)."""

from conftest import run_once

from repro.experiments.figures import figure14


def test_figure14(benchmark, harness_kwargs):
    result = run_once(benchmark, figure14, **harness_kwargs)
    for row in result.rows:
        assert row[1] >= 1.0  # every search compares at least one entry
