"""Cold vs. warm wall-clock of the parallel matrix engine.

Runs a reference (app × policy × rate) slice twice against a fresh
cache directory — once cold (every run simulated) and once warm (every
run answered from the persistent result cache) — and records both
wall-clock times plus the speedup into ``BENCH_matrix.json`` at the
repository root.  The warm/cold ratio is the headline number for the
caching layer; the ISSUE's acceptance bar is a ≥10× warm speedup.

A second benchmark times the same cold slice under the flattened v1
inner loop (``REPRO_SIM_FASTPATH=1``) and the vectorized batch kernel
(``REPRO_SIM_FASTPATH=2``) and records the v2-over-v1 speedup next to
the caching numbers.  The tiers are bit-identical (``tests/diff``), so
this is a pure like-for-like inner-loop comparison.

A third benchmark compares v1 against the *relaxed* batch kernel
(tier 3, DESIGN §13).  The env var deliberately clamps to tier 2 —
ambient config must never relax results — so the v3 slice is timed
through explicit ``ScenarioSpec(fastpath=3)`` cells via ``run_spec``,
and every timed run's executed tier is asserted so a silent fallback
cannot fake the speedup.

Shrink the slice with ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_APPS`` and
pick the worker count with ``REPRO_BENCH_JOBS`` (default: serial).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import bench_apps, bench_jobs, bench_scale

from repro.experiments.runner import clear_trace_cache, run_matrix, run_spec
from repro.resil.atomic import atomic_write_json
from repro.scenarios.spec import ScenarioSpec
from repro.sim import cache as sim_cache
from repro.sim.config import FASTPATH_ENV

#: Default acceptance slice: one app per pattern type.
DEFAULT_APPS = ["BFS", "STN", "HOT"]
POLICIES = ["lru", "hpe"]
RATES = [0.75]

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_matrix.json"


def _timed_matrix(jobs: int) -> float:
    start = time.perf_counter()
    run_matrix(POLICIES, rates=RATES, apps=bench_apps() or DEFAULT_APPS,
               scale=bench_scale(), jobs=jobs)
    return time.perf_counter() - start


def _slice_specs(level: int) -> list:
    """The bench slice as explicit cell specs pinned to ``level``."""
    apps = bench_apps() or DEFAULT_APPS
    return [
        ScenarioSpec(workload=app, policy=policy, rate=rate,
                     scale=bench_scale(), fastpath=level)
        for rate in RATES
        for app in apps
        for policy in POLICIES
    ]


def _timed_spec_slice(level: int) -> tuple:
    """Wall-clock the slice at ``level``, collecting executed tiers."""
    executed = set()
    start = time.perf_counter()
    for spec in _slice_specs(level):
        result = run_spec(spec, use_cache=False)
        executed.add(result.extras["fastpath"]["executed"])
    return time.perf_counter() - start, executed


def _read_output() -> dict:
    if OUTPUT.is_file():
        try:
            payload = json.loads(OUTPUT.read_text(encoding="ascii"))
            if isinstance(payload, dict):
                return payload
        except (ValueError, OSError):
            pass
    return {}


def _merge_into_output(fragment: dict) -> None:
    """Update ``BENCH_matrix.json`` without clobbering the other bench."""
    payload = _read_output()
    payload.update(fragment)
    atomic_write_json(OUTPUT, payload)


def _merge_fastpath(updates: dict) -> None:
    """Merge into the nested ``fastpath`` record, keeping sibling keys.

    The v1/v2 and v1/v3 benchmarks both write under ``fastpath``; a
    plain top-level update would clobber whichever ran first.
    """
    existing = _read_output().get("fastpath")
    merged = dict(existing) if isinstance(existing, dict) else {}
    merged.update(updates)
    _merge_into_output({"fastpath": merged})


def test_matrix_cold_vs_warm(tmp_path):
    jobs = bench_jobs()
    previous_dir = sim_cache.cache_dir()
    previous_enabled = sim_cache.cache_enabled()
    sim_cache.configure(enabled=True, directory=tmp_path)
    clear_trace_cache()
    try:
        cold = _timed_matrix(jobs)
        warm = _timed_matrix(jobs)
    finally:
        sim_cache.configure(enabled=previous_enabled, directory=previous_dir)
    payload = {
        "apps": bench_apps() or DEFAULT_APPS,
        "policies": POLICIES,
        "rates": RATES,
        "scale": bench_scale(),
        "jobs": jobs,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 2) if warm else float("inf"),
    }
    _merge_into_output(payload)
    print()
    print(f"matrix wall-clock: cold {cold:.3f}s, warm {warm:.3f}s "
          f"({payload['warm_speedup']}x) -> {OUTPUT.name}")
    assert warm < cold


def test_matrix_fastpath_v1_vs_v2(tmp_path):
    """Cold inner-loop wall-clock: flattened v1 vs. batch-kernel v2.

    The result cache is disabled for the whole comparison (we are
    timing the simulator, not the cache) and a warm-up pass builds the
    traces first so neither timed run pays trace generation.
    """
    jobs = bench_jobs()
    previous_dir = sim_cache.cache_dir()
    previous_enabled = sim_cache.cache_enabled()
    previous_level = os.environ.get(FASTPATH_ENV)
    sim_cache.configure(enabled=False, directory=tmp_path)
    clear_trace_cache()
    try:
        _timed_matrix(jobs)  # warm-up: trace build + import costs
        os.environ[FASTPATH_ENV] = "1"
        v1 = _timed_matrix(jobs)
        os.environ[FASTPATH_ENV] = "2"
        v2 = _timed_matrix(jobs)
    finally:
        if previous_level is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = previous_level
        sim_cache.configure(enabled=previous_enabled, directory=previous_dir)
    updates = {
        "apps": bench_apps() or DEFAULT_APPS,
        "policies": POLICIES,
        "rates": RATES,
        "scale": bench_scale(),
        "jobs": jobs,
        "v1_seconds": round(v1, 4),
        "v2_seconds": round(v2, 4),
        "v2_over_v1_speedup": round(v1 / v2, 2) if v2 else float("inf"),
    }
    _merge_fastpath(updates)
    print()
    print(f"matrix inner loop: v1 {v1:.3f}s, v2 {v2:.3f}s "
          f"({updates['v2_over_v1_speedup']}x) "
          f"-> {OUTPUT.name}")
    assert v1 > 0 and v2 > 0


def test_matrix_fastpath_v1_vs_v3(tmp_path):
    """Cold inner-loop wall-clock: flattened v1 vs. relaxed-tier v3.

    Unlike v1 vs. v2 this is *not* a like-for-like comparison — tier 3
    is only metric-equivalent within the DESIGN §13 tolerances (the
    tolerance gate lives in ``tests/diff/test_tolerance.py``).  The
    slice is timed serially through ``run_spec`` because tier 3 must be
    requested explicitly per spec; the env var clamps to tier 2.
    """
    previous_dir = sim_cache.cache_dir()
    previous_enabled = sim_cache.cache_enabled()
    sim_cache.configure(enabled=False, directory=tmp_path)
    clear_trace_cache()
    try:
        _timed_spec_slice(1)  # warm-up: trace build + import costs
        v1, v1_tiers = _timed_spec_slice(1)
        v3, v3_tiers = _timed_spec_slice(3)
    finally:
        sim_cache.configure(enabled=previous_enabled, directory=previous_dir)
    # A silent fallback would time the wrong kernel and lie about the
    # speedup, so the executed tiers are part of the bench contract.
    assert v1_tiers == {1}, v1_tiers
    assert v3_tiers == {3}, v3_tiers
    # v1 is re-timed here (not reused from the v1-vs-v2 record) because
    # this bench runs per-spec serial loops, not the matrix engine; the
    # baseline is recorded so the schema check can cross-validate.
    updates = {
        "v1_serial_seconds": round(v1, 4),
        "v3_seconds": round(v3, 4),
        "v3_over_v1_speedup": round(v1 / v3, 2) if v3 else float("inf"),
    }
    _merge_fastpath(updates)
    print()
    print(f"matrix inner loop: v1 {v1:.3f}s, v3 {v3:.3f}s "
          f"({updates['v3_over_v1_speedup']}x) "
          f"-> {OUTPUT.name}")
    assert v1 > 0 and v3 > 0
