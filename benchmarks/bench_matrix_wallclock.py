"""Cold vs. warm wall-clock of the parallel matrix engine.

Runs a reference (app × policy × rate) slice twice against a fresh
cache directory — once cold (every run simulated) and once warm (every
run answered from the persistent result cache) — and records both
wall-clock times plus the speedup into ``BENCH_matrix.json`` at the
repository root.  The warm/cold ratio is the headline number for the
caching layer; the ISSUE's acceptance bar is a ≥10× warm speedup.

Shrink the slice with ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_APPS`` and
pick the worker count with ``REPRO_BENCH_JOBS`` (default: serial).
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import bench_apps, bench_jobs, bench_scale

from repro.experiments.runner import clear_trace_cache, run_matrix
from repro.resil.atomic import atomic_write_json
from repro.sim import cache as sim_cache

#: Default acceptance slice: one app per pattern type.
DEFAULT_APPS = ["BFS", "STN", "HOT"]
POLICIES = ["lru", "hpe"]
RATES = [0.75]

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_matrix.json"


def _timed_matrix(jobs: int) -> float:
    start = time.perf_counter()
    run_matrix(POLICIES, rates=RATES, apps=bench_apps() or DEFAULT_APPS,
               scale=bench_scale(), jobs=jobs)
    return time.perf_counter() - start


def test_matrix_cold_vs_warm(tmp_path):
    jobs = bench_jobs()
    previous_dir = sim_cache.cache_dir()
    previous_enabled = sim_cache.cache_enabled()
    sim_cache.configure(enabled=True, directory=tmp_path)
    clear_trace_cache()
    try:
        cold = _timed_matrix(jobs)
        warm = _timed_matrix(jobs)
    finally:
        sim_cache.configure(enabled=previous_enabled, directory=previous_dir)
    payload = {
        "apps": bench_apps() or DEFAULT_APPS,
        "policies": POLICIES,
        "rates": RATES,
        "scale": bench_scale(),
        "jobs": jobs,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 2) if warm else float("inf"),
    }
    atomic_write_json(OUTPUT, payload)
    print()
    print(f"matrix wall-clock: cold {cold:.3f}s, warm {warm:.3f}s "
          f"({payload['warm_speedup']}x) -> {OUTPUT.name}")
    assert warm < cold
