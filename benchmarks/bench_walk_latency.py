"""Regenerate the Section V-B page-walk-latency sensitivity study."""

from conftest import run_once

from repro.experiments.sensitivity import walk_latency


def test_walk_latency(benchmark, harness_kwargs):
    result = run_once(benchmark, walk_latency, **harness_kwargs)
    for row in result.rows:
        # Paper: minimal difference between 8 and 20 cycles.
        assert abs(row[2] - 1.0) < 0.1
