"""Regenerate Fig. 10 (HPE speedup over LRU, both rates)."""

from conftest import run_once

from repro.experiments.figures import figure10


def test_figure10(benchmark, harness_kwargs):
    result = run_once(benchmark, figure10, **harness_kwargs)
    mean = next(row for row in result.rows if row[0] == "MEAN")
    # Paper: 1.34x at 75%, 1.16x at 50%; require a clear mean win.
    assert mean[2] > 1.05
