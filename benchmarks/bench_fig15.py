"""Regenerate Fig. 15 (HIR entries transferred per transfer)."""

from conftest import run_once

from repro.experiments.figures import figure15


def test_figure15(benchmark, harness_kwargs):
    result = run_once(benchmark, figure15, **harness_kwargs)
    by_app = {row[0].split()[0]: row for row in result.rows}
    if "MVT" in by_app and "HOT" in by_app:
        # Paper: MVT ships far more entries than the typical app.
        assert by_app["MVT"][1] > by_app["HOT"][1]
