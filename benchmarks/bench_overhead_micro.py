"""Regenerate the Section V-C classification/search wall-clock probes."""

from conftest import run_once

from repro.experiments.overhead import classification_cost, search_cost


def test_classification_cost(benchmark):
    result = run_once(benchmark, classification_cost)
    assert result.rows[0][1] > 0


def test_search_cost(benchmark):
    result = run_once(benchmark, search_cost)
    assert result.rows[0][1] > 0
