"""Regenerate the Section V-C host-CPU core-load estimate."""

from conftest import run_once

from repro.experiments.overhead import core_load


def test_core_load(benchmark, harness_kwargs):
    result = run_once(benchmark, core_load, **harness_kwargs)
    for row in result.rows:
        assert 0.0 <= row[2] <= 1.0
