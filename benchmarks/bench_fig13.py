"""Regenerate Fig. 13 (eviction-strategy adjustment breakdown)."""

from conftest import run_once

from repro.experiments.figures import figure13


def test_figure13(benchmark, harness_kwargs):
    result = run_once(benchmark, figure13, **harness_kwargs)
    by_key = {row[0]: row for row in result.rows}
    if "BFS 75%" in by_key:
        assert by_key["BFS 75%"][4] >= 1  # BFS switches strategy
    if "HOT 75%" in by_key:
        assert by_key["HOT 75%"][3] == 1.0  # pure MRU-C
