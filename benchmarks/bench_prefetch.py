"""Extension: fault-around prefetch sweep (not in the paper)."""

from conftest import run_once

from repro.experiments.sensitivity import prefetch


def test_prefetch(benchmark, harness_kwargs):
    result = run_once(benchmark, prefetch, **harness_kwargs)
    degrees = [row[0] for row in result.rows]
    assert degrees == [0, 1, 3, 7, 15]
    # More prefetching must not increase the mean fault count.
    faults = [row[1] for row in result.rows]
    assert faults == sorted(faults, reverse=True)
