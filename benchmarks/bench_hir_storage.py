"""Regenerate the Section V-C HIR storage-saving analysis."""

from conftest import run_once

from repro.experiments.overhead import hir_storage


def test_hir_storage(benchmark, harness_kwargs):
    result = run_once(benchmark, hir_storage, **harness_kwargs)
    for row in result.rows:
        assert row[1] > 0.0  # HIR must beat the naive address buffer
