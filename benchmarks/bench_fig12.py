"""Regenerate Fig. 12 (all policies normalised to Ideal)."""

from conftest import run_once

from repro.experiments.figures import figure12


def test_figure12(benchmark, harness_kwargs):
    result = run_once(benchmark, figure12, **harness_kwargs)
    at_75 = {row[1]: row for row in result.rows if row[0] == "75%"}
    # HPE must be the best non-ideal policy on mean IPC.
    hpe_ipc = at_75["hpe"][2]
    for policy in ("lru", "random", "rrip", "clock-pro"):
        assert hpe_ipc >= at_75[policy][2]
