"""Regenerate Table II (workload characteristics)."""

from conftest import run_once

from repro.experiments.tables import table2


def test_table2(benchmark, harness_kwargs):
    result = run_once(benchmark, table2, **harness_kwargs)
    assert len(result.rows) >= 1
