"""Regenerate Fig. 9 (ratio1/ratio2 at first-full)."""

from conftest import run_once

from repro.experiments.figures import figure9


def test_figure9(benchmark, harness_kwargs):
    result = run_once(benchmark, figure9, **harness_kwargs)
    by_app = {row[0]: row for row in result.rows}
    if "KMN" in by_app:
        assert by_app["KMN"][4] == "irregular#2"  # paper's outlier
    if "HOT" in by_app:
        assert by_app["HOT"][4] == "regular"
