"""Regenerate Fig. 8 (sensitivity to interval length)."""

from conftest import run_once

from repro.experiments.figures import figure8


def test_figure8(benchmark, harness_kwargs):
    result = run_once(benchmark, figure8, **harness_kwargs)
    mean = next(row for row in result.rows if row[0] == "MEAN")
    # Paper: the three lengths stay within ~12% of each other.
    assert all(0.7 <= value <= 1.4 for value in mean[1:])
