"""Regenerate the Section V-A transfer-interval sensitivity study."""

from conftest import run_once

from repro.experiments.sensitivity import transfer_interval


def test_transfer_interval(benchmark, harness_kwargs):
    result = run_once(benchmark, transfer_interval, **harness_kwargs)
    assert [row[0] for row in result.rows] == [1, 8, 16, 32, 64]
