"""Design-choice ablations (DESIGN.md): what each HPE mechanism buys."""

from conftest import run_once

from repro.experiments.ablation import ablation


def test_ablation(benchmark, harness_kwargs):
    result = run_once(benchmark, ablation, **harness_kwargs)
    by_variant = {row[0]: row for row in result.rows}
    # Pinning LRU forfeits the speedup; the full config must beat it.
    assert by_variant["full"][1] > by_variant["always-lru"][1]
