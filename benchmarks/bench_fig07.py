"""Regenerate Fig. 7 (sensitivity to page set size)."""

from conftest import run_once

from repro.experiments.figures import figure7


def test_figure7(benchmark, harness_kwargs):
    result = run_once(benchmark, figure7, **harness_kwargs)
    mean = next(row for row in result.rows if row[0] == "MEAN")
    # Paper: the three sizes stay within ~10% of each other.
    assert all(0.7 <= value <= 1.4 for value in mean[1:])
