"""Regenerate Fig. 11 (HPE evictions normalised to LRU)."""

from conftest import run_once

from repro.experiments.figures import figure11


def test_figure11(benchmark, harness_kwargs):
    result = run_once(benchmark, figure11, **harness_kwargs)
    mean = next(row for row in result.rows if row[0] == "MEAN")
    # Paper: 18% fewer evictions at 75%, 12% at 50%.
    assert mean[2] < 1.0
