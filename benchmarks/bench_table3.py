"""Regenerate Table III (statistics-based classification)."""

from conftest import run_once

from repro.experiments.tables import table3


def test_table3(benchmark, harness_kwargs):
    result = run_once(benchmark, table3, **harness_kwargs)
    categories = {row[2] for row in result.rows}
    assert categories & {"regular", "irregular#1", "irregular#2"}
