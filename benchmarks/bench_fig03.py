"""Regenerate Fig. 3 (LRU/RRIP evictions normalised to Ideal, 75% OS)."""

from conftest import run_once

from repro.experiments.figures import figure3


def test_figure3(benchmark, harness_kwargs):
    result = run_once(benchmark, figure3, **harness_kwargs)
    mean = next(row for row in result.rows if row[0] == "MEAN")
    assert mean[2] >= 1.0  # LRU can never beat Ideal
