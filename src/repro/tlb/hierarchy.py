"""Two-level TLB hierarchy: private per-SM L1 TLBs backed by a shared L2.

This is the second address-translation design described in Section II of
the paper (per-SM L1 TLBs + shared L2 TLB), which the authors adopt
because it outperforms a shared page-walk cache.

A translation request flows L1 → L2 → page-table walker; the hierarchy
reports where it was satisfied so the timing engine can charge the right
latency and the walker can notify the HIR cache on page-walk hits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.tlb.tlb import TLB, TLBConfig

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry


class TranslationLevel(enum.Enum):
    """Where a translation request was satisfied."""

    L1_TLB = "l1_tlb"
    L2_TLB = "l2_tlb"
    PAGE_TABLE = "page_table"
    FAULT = "fault"


@dataclass
class TranslationResult:
    """Outcome of a lookup through the hierarchy (before walking)."""

    level: TranslationLevel
    latency_cycles: int


class TLBHierarchy:
    """Per-SM L1 TLBs in front of one shared L2 TLB.

    The hierarchy only resolves TLB levels; misses fall through to the
    caller (the page-table walker), which decides hit vs. page fault.
    """

    def __init__(
        self,
        num_sms: int,
        l1_config: TLBConfig,
        l2_config: TLBConfig,
    ) -> None:
        if num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {num_sms}")
        self.num_sms = num_sms
        self.l1_tlbs = [
            TLB(TLBConfig(
                entries=l1_config.entries,
                associativity=l1_config.associativity,
                latency_cycles=l1_config.latency_cycles,
                name=f"l1_tlb_sm{sm}",
            ))
            for sm in range(num_sms)
        ]
        self.l2_tlb = TLB(l2_config)

    def lookup(self, sm: int, page: int) -> TranslationResult:
        """Probe L1 then L2 for ``page`` on behalf of SM ``sm``.

        Returns a :class:`TranslationResult` whose level is ``L1_TLB`` or
        ``L2_TLB`` on a hit.  On a full TLB miss the level is
        ``PAGE_TABLE`` (meaning: "go walk"), and the latency covers the
        two TLB probes only — the caller adds walk latency.
        """
        l1 = self.l1_tlbs[sm]
        latency = l1.config.latency_cycles
        if l1.lookup(page):
            return TranslationResult(TranslationLevel.L1_TLB, latency)
        latency += self.l2_tlb.config.latency_cycles
        if self.l2_tlb.lookup(page):
            # Refill the L1 so subsequent accesses from this SM hit there.
            l1.insert(page)
            return TranslationResult(TranslationLevel.L2_TLB, latency)
        return TranslationResult(TranslationLevel.PAGE_TABLE, latency)

    def lookup_fast(self, sm: int, page: int) -> int:
        """Allocation-free :meth:`lookup` with an int-encoded outcome.

        Returns the probe latency in cycles, **negated** when the request
        missed both TLB levels and must walk the page table.  Exactly the
        same state and stats updates as :meth:`lookup` — only the
        :class:`TranslationResult`/enum wrapper is skipped, which matters
        on the simulator's per-event hot path.
        """
        l1 = self.l1_tlbs[sm]
        latency = l1.config.latency_cycles
        if l1.lookup(page):
            return latency
        latency += self.l2_tlb.config.latency_cycles
        if self.l2_tlb.lookup(page):
            l1.insert(page)
            return latency
        return -latency

    def fill(self, sm: int, page: int, frame: int = 0) -> None:
        """Install a translation in the requesting SM's L1 and in the L2."""
        self.l1_tlbs[sm].insert(page, frame)
        self.l2_tlb.insert(page, frame)

    def shootdown(self, page: int) -> int:
        """Invalidate ``page`` everywhere (page evicted); return hit count.

        Runs once per eviction over every TLB, so the per-TLB probe is
        inlined (same update rules as :meth:`TLB.invalidate`) rather than
        paying a method call and generator frame per level.
        """
        removed = 0
        for tlb in self.l1_tlbs:
            entries = tlb._sets[page & tlb._set_mask]
            if page in entries:
                del entries[page]
                tlb.stats.shootdowns += 1
                removed += 1
        entries = self.l2_tlb._sets[page & self.l2_tlb._set_mask]
        if page in entries:
            del entries[page]
            self.l2_tlb.stats.shootdowns += 1
            removed += 1
        return removed

    def flush(self) -> None:
        """Drop every translation in every TLB."""
        for tlb in self.l1_tlbs:
            tlb.flush()
        self.l2_tlb.flush()

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Fold per-level hit/miss/eviction tallies into a registry.

        L1 counters are summed over SMs (``tlb.l1.*``); the shared L2
        keeps its own (``tlb.l2.*``).  Called once at end-of-run by the
        engine's collect step, never on the per-event hot path.
        """
        registry.inc("tlb.l1.hits", sum(t.stats.hits for t in self.l1_tlbs))
        registry.inc("tlb.l1.misses", sum(t.stats.misses for t in self.l1_tlbs))
        registry.inc(
            "tlb.l1.evictions", sum(t.stats.evictions for t in self.l1_tlbs)
        )
        registry.inc(
            "tlb.l1.shootdowns", sum(t.stats.shootdowns for t in self.l1_tlbs)
        )
        stats = self.l2_tlb.stats
        registry.inc("tlb.l2.hits", stats.hits)
        registry.inc("tlb.l2.misses", stats.misses)
        registry.inc("tlb.l2.evictions", stats.evictions)
        registry.inc("tlb.l2.shootdowns", stats.shootdowns)

    @property
    def total_hits(self) -> int:
        """Aggregate hit count across all levels."""
        return self.l2_tlb.stats.hits + sum(t.stats.hits for t in self.l1_tlbs)

    @property
    def total_misses(self) -> int:
        """Full-hierarchy misses (L2 misses — every one reaches the walker)."""
        return self.l2_tlb.stats.misses
