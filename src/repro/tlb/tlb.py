"""Set-associative TLB with LRU replacement.

Table I of the paper configures two TLB levels:

* private L1 TLB — 128 entries per SM, single port, 1-cycle latency, LRU;
* shared L2 TLB — 512 entries, 16-way associative, 10-cycle latency.

Both are instances of this class; associativity, size and latency are
parameters.  An LRU stack per set is kept with an ``OrderedDict`` so lookup
and insertion are O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.memory.addressing import is_power_of_two


@dataclass
class TLBStats:
    """Hit/miss counters for one TLB instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    shootdowns: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never accessed)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


@dataclass
class TLBConfig:
    """Size/shape/latency of one TLB level."""

    entries: int = 128
    associativity: int = 128
    latency_cycles: int = 1
    name: str = "tlb"

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError(f"entries must be positive, got {self.entries}")
        if self.associativity <= 0 or self.associativity > self.entries:
            raise ValueError(
                f"associativity must be in [1, {self.entries}], got {self.associativity}"
            )
        if self.entries % self.associativity:
            raise ValueError("entries must be a multiple of associativity")
        if not is_power_of_two(self.entries // self.associativity):
            raise ValueError("number of sets must be a power of two")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    @property
    def num_sets(self) -> int:
        """Number of sets (entries / associativity)."""
        return self.entries // self.associativity


class TLB:
    """A set-associative translation lookaside buffer.

    Entries are keyed by virtual page number; the stored value is opaque to
    the TLB (the simulator stores the frame number, but nothing here depends
    on it).
    """

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self.stats = TLBStats()
        self._set_mask = config.num_sets - 1
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def _set_of(self, page: int) -> OrderedDict[int, int]:
        return self._sets[page & self._set_mask]

    def lookup(self, page: int) -> bool:
        """Probe for ``page``; update LRU order and stats; return hit."""
        entries = self._sets[page & self._set_mask]
        if page in entries:
            entries.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, page: int, frame: int = 0) -> None:
        """Install a translation, evicting the set's LRU entry if full."""
        entries = self._sets[page & self._set_mask]
        if page in entries:
            entries.move_to_end(page)
            entries[page] = frame
            return
        if len(entries) >= self.config.associativity:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[page] = frame

    def invalidate(self, page: int) -> bool:
        """Shootdown: drop ``page``'s translation if present."""
        entries = self._sets[page & self._set_mask]
        if page in entries:
            del entries[page]
            self.stats.shootdowns += 1
            return True
        return False

    # -- fast-path support -------------------------------------------------

    def fastpath_state(self) -> tuple[list[OrderedDict[int, int]], int, int, int]:
        """Internals for a flattened simulation loop.

        Returns ``(sets, set_mask, associativity, latency_cycles)``.  The
        caller may probe/mutate the set dictionaries directly — with
        exactly the :meth:`lookup`/:meth:`insert` update rules — provided
        it reports the hit/miss/eviction counts it accumulated through
        :meth:`add_batched_stats` afterwards.  Shootdowns must still go
        through :meth:`invalidate` (they are counted live).
        """
        return (
            self._sets,
            self._set_mask,
            self.config.associativity,
            self.config.latency_cycles,
        )

    def add_batched_stats(self, hits: int, misses: int, evictions: int) -> None:
        """Fold counters accumulated outside this class into the stats."""
        stats = self.stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions

    @staticmethod
    def apply_batched_misses(
        entries: OrderedDict[int, int],
        pages: "list[int]",
        frames: "list[int]",
        associativity: int,
        evicted: "Optional[list[int]]" = None,
    ) -> int:
        """Apply a batch of deferred miss-fills to one set; return the
        number of LRU evictions it caused.

        Contract: ``pages`` are pairwise distinct, all absent from
        ``entries``, and the set received no other mutation since the
        first fill was deferred.  Under those conditions replaying the
        fills sequentially evicts ``max(0, occupancy + count - assoc)``
        LRU-front entries and leaves the batch at the MRU end in batch
        order — which is computed here in one pass instead of
        ``count`` probe/evict steps.  When ``evicted`` is given, the
        evicted pages are appended to it in eviction order (callers
        tracking TLB presence need the identities, not just the count).
        """
        count = len(pages)
        occupancy = len(entries)
        overflow = occupancy + count - associativity
        if overflow <= 0:
            for page, frame in zip(pages, frames):
                entries[page] = frame
            return 0
        if count >= associativity:
            # Every pre-existing entry overflows, as does the batch's own
            # head: only the last ``associativity`` fills survive.
            if evicted is not None:
                evicted.extend(entries)
                evicted.extend(pages[:count - associativity])
            entries.clear()
            for page, frame in zip(
                pages[count - associativity:],
                frames[count - associativity:],
            ):
                entries[page] = frame
            return overflow
        if evicted is not None:
            for _ in range(overflow):
                evicted.append(entries.popitem(last=False)[0])
        else:
            for _ in range(overflow):
                entries.popitem(last=False)
        for page, frame in zip(pages, frames):
            entries[page] = frame
        return overflow

    def flush(self) -> None:
        """Drop every translation."""
        for entries in self._sets:
            entries.clear()

    def __contains__(self, page: int) -> bool:
        return page in self._set_of(page)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)
