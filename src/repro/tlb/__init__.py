"""Address translation substrate: TLBs, hierarchy, and page-table walker."""

from repro.tlb.hierarchy import TLBHierarchy, TranslationLevel, TranslationResult
from repro.tlb.tlb import TLB, TLBConfig, TLBStats
from repro.tlb.walker import PageTableWalker, WalkOutcome

__all__ = [
    "PageTableWalker",
    "TLB",
    "TLBConfig",
    "TLBHierarchy",
    "TLBStats",
    "TranslationLevel",
    "TranslationResult",
    "WalkOutcome",
]
