"""Page-table walker with a fixed walk latency and hit-notification hooks.

Section IV-A of the paper: "Once the walker knows that the request is a
hit, it notifies HIR with the page address."  The walker therefore exposes
an observer interface; the HIR cache (for HPE) and the ideal-model update
path (for LRU/RRIP/CLOCK-Pro) both subscribe to page-walk hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.memory.page_table import PageTable, PageTableEntry

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

#: Callback signature invoked with the page number of a page-walk hit.
WalkHitListener = Callable[[int], None]


@dataclass
class WalkOutcome:
    """Result of one page-table walk."""

    entry: Optional[PageTableEntry]
    latency_cycles: int

    @property
    def hit(self) -> bool:
        """``True`` when the walk found a valid translation."""
        return self.entry is not None


class PageTableWalker:
    """Walks the (single-level) page table at a fixed cycle cost.

    Parameters
    ----------
    page_table:
        The GPU page table to walk.
    walk_latency_cycles:
        Fixed cost of one walk; the paper uses 8 cycles by default and
        evaluates 20 cycles in a sensitivity study (Section V-B).
    """

    def __init__(self, page_table: PageTable, walk_latency_cycles: int = 8) -> None:
        if walk_latency_cycles < 0:
            raise ValueError("walk_latency_cycles must be non-negative")
        self.page_table = page_table
        self.walk_latency_cycles = walk_latency_cycles
        self._hit_listeners: list[WalkHitListener] = []
        self.walks = 0
        self.hits = 0
        self.faults = 0

    def add_batched_counts(self, walks: int, hits: int, faults: int) -> None:
        """Fold walk/hit/fault tallies accumulated by a fast path."""
        self.walks += walks
        self.hits += hits
        self.faults += faults

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Fold the walk/hit/fault tallies into a ``MetricsRegistry``."""
        registry.inc("walker.walks", self.walks)
        registry.inc("walker.hits", self.hits)
        registry.inc("walker.faults", self.faults)

    def add_hit_listener(self, listener: WalkHitListener) -> None:
        """Subscribe ``listener`` to page-walk hit notifications."""
        self._hit_listeners.append(listener)

    def remove_hit_listener(self, listener: WalkHitListener) -> None:
        """Unsubscribe ``listener``; raises ``ValueError`` if absent."""
        self._hit_listeners.remove(listener)

    def walk(self, page: int) -> WalkOutcome:
        """Walk the page table for ``page``.

        On a hit, every subscribed listener is notified with the page
        number (recording hit information is off the critical path, so the
        notification adds no latency).  On a miss the caller raises a page
        fault with the GPU driver.
        """
        self.walks += 1
        entry = self.page_table.lookup(page)
        if entry is not None:
            self.hits += 1
            entry.walk_hits += 1
            for listener in self._hit_listeners:
                listener(page)
        else:
            self.faults += 1
        return WalkOutcome(entry=entry, latency_cycles=self.walk_latency_cycles)
