"""Supervised worker pool: timeouts, retries, crash isolation, watchdog.

``multiprocessing.Pool`` is the wrong tool for a long experiment matrix:
a worker that dies without returning leaves ``imap`` waiting forever, a
hung worker stalls the whole run, and one lost job loses the matrix.
This module replaces it with a supervisor that owns N persistent worker
processes and assigns jobs to them individually, so it always knows
*which* job a worker is running and can police it:

* **liveness watchdog** — ``multiprocessing.connection.wait`` over every
  worker's result pipe *and* process sentinel, so a worker that dies
  without sending anything is detected immediately (not at ``join``);
* **wall-clock timeouts** — a worker past its per-job deadline is
  terminated and the job counted as a timeout failure;
* **bounded retries** — failed jobs are re-queued with exponential
  backoff plus deterministic (hashed, seeded) jitter, up to
  ``retries`` extra attempts; a dead or hung process costs one retry,
  never the matrix;
* **crash forensics** — each worker's stderr is redirected to a file and
  the per-job tail is attached to the failure record;
* **graceful degradation** — a job whose retries are exhausted produces
  a :class:`JobFailure` (exception class, attempts, elapsed, stderr),
  not an exception in the parent.

Workers are persistent (they keep their in-process trace caches warm
across jobs) and are respawned on demand after a crash or kill.
"""

from __future__ import annotations

import hashlib
import math
import os
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.resil.chaos import CHAOS_CRASH_EXIT, ChaosSpec
from repro.resil import chaos as chaos_module
from repro.resil import settings as resil_settings

#: Per-job wall-clock timeout in seconds (``REPRO_WORKER_TIMEOUT``,
#: legacy ``REPRO_TIMEOUT``; 0 disables enforcement).
DEFAULT_TIMEOUT_S = 600.0
#: Extra attempts after the first failure (``REPRO_RETRIES``).
DEFAULT_RETRIES = 2
#: Base backoff before a retry, doubled per attempt (``REPRO_BACKOFF``).
DEFAULT_BACKOFF_S = 0.25

ENV_TIMEOUT = "REPRO_TIMEOUT"
ENV_WORKER_TIMEOUT = "REPRO_WORKER_TIMEOUT"
ENV_RETRIES = "REPRO_RETRIES"
ENV_BACKOFF = "REPRO_BACKOFF"

#: How long a worker hang simulation sleeps (far past any sane timeout).
_HANG_SLEEP_S = 86400.0

#: Default bytes of worker stderr attached to a failure record
#: (``REPRO_STDERR_TAIL``; see :func:`compact_tail`).
STDERR_TAIL_BYTES = 4096


def resolve_timeout(timeout: Optional[float] = None) -> float:
    """Per-job timeout: explicit value, env, then default (0 = disabled).

    A thin adapter over :func:`repro.resil.settings.resolve` — the one
    knob table — kept for the call sites and tests that predate it.
    ``REPRO_WORKER_TIMEOUT=0`` (or an explicit ``timeout=0``) disables
    wall-clock enforcement entirely; the legacy ``REPRO_TIMEOUT``
    cannot express 0.
    """
    return resil_settings.resolve(worker_timeout=timeout).worker_timeout


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry budget: explicit value, then ``REPRO_RETRIES``, then default."""
    return resil_settings.resolve(retries=retries).retries


def resolve_backoff(backoff: Optional[float] = None) -> float:
    """Backoff base: explicit value, then ``REPRO_BACKOFF``, then default."""
    return resil_settings.resolve(backoff=backoff).backoff


def compact_tail(text: str, limit: int = STDERR_TAIL_BYTES) -> str:
    """Bound a stderr tail: collapse duplicate-line runs, cap the bytes.

    A crash-looping worker prints the same traceback (or injected-chaos
    notice) every attempt; attaching that verbatim bloats journals and
    service error responses with pure repetition.  Consecutive
    duplicate lines collapse to one line plus an ``[xN]`` marker, and
    the result keeps its *tail* (the newest, most diagnostic end) when
    it still exceeds ``limit`` UTF-8 bytes.
    """
    if not text:
        return text
    out: list[str] = []
    run_line: Optional[str] = None
    run_count = 0

    def flush() -> None:
        if run_line is None:
            return
        out.append(run_line)
        if run_count > 1:
            out.append(f"  [repeated x{run_count}]")

    for line in text.splitlines():
        if line == run_line:
            run_count += 1
            continue
        flush()
        run_line = line
        run_count = 1
    flush()
    compacted = "\n".join(out)
    encoded = compacted.encode("utf-8")
    if len(encoded) > limit:
        compacted = encoded[-limit:].decode("utf-8", errors="replace")
        cut = compacted.find("\n")
        if 0 <= cut < len(compacted) - 1:
            compacted = compacted[cut + 1:]  # drop the torn first line
    return compacted


def backoff_delay(base: float, key: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``base * 2**(attempt-1)`` scaled by a jitter in [1, 2) hashed from
    the job key and attempt — spreading retries without global RNG state
    (REP001) and reproducibly across runs.
    """
    if base <= 0:
        return 0.0
    step = base * (2.0 ** max(0, attempt - 1))
    digest = hashlib.sha256(f"{key}|{attempt}".encode("utf-8")).digest()
    jitter = 1.0 + int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return step * jitter


@dataclass
class JobFailure:
    """A job whose retry budget is exhausted — explicit, not raised."""

    key: str
    error_type: str
    message: str
    attempts: int
    elapsed: float
    stderr_tail: str = ""

    def render(self) -> str:
        text = (
            f"{self.key}: {self.error_type} after {self.attempts} "
            f"attempt(s) ({self.elapsed:.2f}s): {self.message}"
        )
        if self.stderr_tail:
            text += f"\n  stderr: {self.stderr_tail.strip()[-400:]}"
        return text


@dataclass
class JobOutcome:
    """Terminal state of one supervised job."""

    key: str
    result: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class SupervisorStats:
    """Counters the supervisor accumulates across one :meth:`run`."""

    completed: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    transient_errors: int = 0
    exhausted: int = 0


class SupervisorInterrupted(RuntimeError):
    """Raised inside :meth:`WorkerSupervisor.run` on chaos SIGTERM."""


@dataclass
class _Job:
    key: str
    payload: Any
    attempt: int = 1
    not_before: float = 0.0
    started_first: float = 0.0
    last_error: str = ""
    last_message: str = ""
    last_stderr: str = ""


@dataclass
class _Worker:
    process: Any
    conn: Any
    stderr_path: Path
    job: Optional[_Job] = None
    deadline: float = 0.0
    stderr_offset: int = 0


def _worker_main(
    worker_fn: Callable[[Any], Any],
    conn: Any,
    stderr_path: str,
    chaos_text: str,
) -> None:
    """Worker process loop: recv (key, payload, attempt) → send outcome.

    Runs until the parent sends ``None`` or closes the pipe.  stderr is
    redirected at the fd level so tracebacks and injected-crash notices
    from any layer (including C extensions) land in the capture file.
    """
    try:
        stream = open(stderr_path, "ab", buffering=0)
        os.dup2(stream.fileno(), 2)
        sys.stderr = os.fdopen(2, "w", buffering=1)
    except OSError:
        pass
    spec: Optional[ChaosSpec] = None
    if chaos_text:
        spec = ChaosSpec.parse(chaos_text)
        chaos_module.activate(spec)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        key, payload, attempt = message
        if spec is not None:
            action = spec.worker_action(key, attempt)
            if action == "crash":
                print(
                    f"chaos: injected crash for {key} (attempt {attempt})",
                    file=sys.stderr, flush=True,
                )
                os._exit(CHAOS_CRASH_EXIT)
            if action == "hang":
                print(
                    f"chaos: injected hang for {key} (attempt {attempt})",
                    file=sys.stderr, flush=True,
                )
                time.sleep(_HANG_SLEEP_S)
            if action == "flaky":
                try:
                    conn.send((
                        "error", "ChaosTransientError",
                        f"injected transient failure (attempt {attempt})",
                    ))
                except (OSError, ValueError):
                    os._exit(1)
                continue
        try:
            result = worker_fn(payload)
        except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
            traceback.print_exc()
            try:
                conn.send(("error", type(exc).__name__, str(exc)))
            except (OSError, ValueError):
                os._exit(1)
        else:
            try:
                conn.send(("ok", result))
            except (OSError, ValueError):
                traceback.print_exc()
                os._exit(1)


class WorkerSupervisor:
    """Run jobs through supervised persistent workers (see module doc)."""

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        jobs: int,
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        chaos: Optional[ChaosSpec] = None,
        mp_context: Any = None,
        stderr_dir: Optional[Path] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.worker_fn = worker_fn
        self.jobs = jobs
        settings = resil_settings.resolve(
            worker_timeout=timeout, retries=retries, backoff=backoff
        )
        self.timeout = settings.worker_timeout
        self.retries = settings.retries
        self.backoff = settings.backoff
        self.stderr_limit = settings.stderr_tail_bytes
        self.chaos = chaos
        self.stats = SupervisorStats()
        if mp_context is None:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            mp_context = mp.get_context(
                "fork" if "fork" in methods else None
            )
        self._ctx = mp_context
        self._stderr_dir = stderr_dir
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._workers: list[_Worker] = []
        self._spawned = 0

    # -- worker lifecycle ----------------------------------------------

    def _stderr_root(self) -> Path:
        if self._stderr_dir is not None:
            return self._stderr_dir
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-sup-")
        return Path(self._tmpdir.name)

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._spawned += 1
        stderr_path = self._stderr_root() / f"worker-{self._spawned}.stderr"
        chaos_text = self.chaos.text if self.chaos is not None else ""
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.worker_fn, child_conn, str(stderr_path), chaos_text),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(
            process=process, conn=parent_conn, stderr_path=stderr_path
        )

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _stderr_tail(self, worker: _Worker) -> str:
        """Stderr this worker wrote since its current job was assigned.

        Bounded and deduplicated (:func:`compact_tail`) so a
        crash-looping worker cannot bloat failure records, journals, or
        service error responses with repeated tracebacks.
        """
        try:
            size = worker.stderr_path.stat().st_size
            with worker.stderr_path.open("rb") as stream:
                # Read a few multiples of the bound so duplicate-line
                # collapsing has material to work with, then compact.
                start = max(worker.stderr_offset, size - 4 * self.stderr_limit)
                stream.seek(start)
                raw = stream.read().decode("utf-8", errors="replace")
        except OSError:
            return ""
        return compact_tail(raw, self.stderr_limit)

    def shutdown(self) -> None:
        """Stop every worker (graceful send, then terminate) and clean up."""
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                self._kill_worker(worker)
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        self._workers = []
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- failure/retry bookkeeping -------------------------------------

    def _record_failure(
        self,
        job: _Job,
        pending: list[_Job],
        outcomes: dict[str, JobOutcome],
        error_type: str,
        message: str,
        stderr_tail: str,
        now: float,
    ) -> Optional[JobOutcome]:
        """Retry ``job`` or mark it exhausted; return a terminal outcome."""
        job.last_error = error_type
        job.last_message = message
        job.last_stderr = stderr_tail
        if job.attempt <= self.retries:
            self.stats.retries += 1
            delay = backoff_delay(self.backoff, job.key, job.attempt)
            job.attempt += 1
            job.not_before = now + delay
            pending.append(job)
            return None
        self.stats.exhausted += 1
        elapsed = now - job.started_first
        outcome = JobOutcome(
            key=job.key,
            failure=JobFailure(
                key=job.key,
                error_type=error_type,
                message=message,
                attempts=job.attempt,
                elapsed=elapsed,
                stderr_tail=stderr_tail,
            ),
            attempts=job.attempt,
            elapsed=elapsed,
        )
        outcomes[job.key] = outcome
        return outcome

    # -- the supervision loop ------------------------------------------

    def run(
        self,
        items: Sequence[tuple[str, Any]],
        on_outcome: Optional[Callable[[JobOutcome], None]] = None,
    ) -> dict[str, JobOutcome]:
        """Run every (key, payload) to a terminal outcome.

        ``on_outcome`` fires once per job as it reaches success or
        retry exhaustion (journaling hook).  Raises
        :class:`SupervisorInterrupted` when the chaos spec's ``sigterm``
        budget is hit — after the triggering outcome was delivered.
        """
        outcomes: dict[str, JobOutcome] = {}
        pending: list[_Job] = [
            _Job(key=key, payload=payload) for key, payload in items
        ]
        if not pending:
            return outcomes
        try:
            self._workers = [
                self._spawn_worker()
                for _ in range(min(self.jobs, len(pending)))
            ]
            self._loop(pending, outcomes, on_outcome)
        finally:
            self.shutdown()
        return outcomes

    def _assign(self, worker: _Worker, job: _Job, now: float) -> None:
        if not job.started_first:
            job.started_first = now
        try:
            worker.stderr_offset = worker.stderr_path.stat().st_size
        except OSError:
            worker.stderr_offset = 0
        worker.job = job
        # timeout 0 is the documented escape hatch: no deadline at all.
        worker.deadline = (
            now + self.timeout if self.timeout > 0 else math.inf
        )
        worker.conn.send((job.key, job.payload, job.attempt))

    def _next_pending(self, pending: list[_Job], now: float) -> Optional[_Job]:
        """Pop the first runnable job (its backoff window has passed)."""
        for index, job in enumerate(pending):
            if job.not_before <= now:
                return pending.pop(index)
        return None

    def _finish(
        self,
        outcomes: dict[str, JobOutcome],
        outcome: JobOutcome,
        on_outcome: Optional[Callable[[JobOutcome], None]],
    ) -> None:
        self.stats.completed += 1
        if on_outcome is not None:
            on_outcome(outcome)
        if self.chaos is not None and self.chaos.should_interrupt(
            self.stats.completed
        ):
            raise SupervisorInterrupted(
                f"chaos sigterm after {self.stats.completed} completion(s)"
            )

    def _loop(
        self,
        pending: list[_Job],
        outcomes: dict[str, JobOutcome],
        on_outcome: Optional[Callable[[JobOutcome], None]],
    ) -> None:
        while pending or any(w.job is not None for w in self._workers):
            now = time.monotonic()
            # Replace any dead idle workers, then hand out work.
            for index, worker in enumerate(self._workers):
                if worker.job is None and not worker.process.is_alive():
                    self._kill_worker(worker)
                    self._workers[index] = self._spawn_worker()
            for worker in self._workers:
                if worker.job is not None:
                    continue
                job = self._next_pending(pending, now)
                if job is None:
                    break
                self._assign(worker, job, now)

            busy = [w for w in self._workers if w.job is not None]
            if not busy:
                # Everything pending is in a backoff window: sleep to
                # the earliest not_before.
                wake = min(job.not_before for job in pending)
                time.sleep(max(0.0, min(wake - now, 0.25)))
                continue

            # Earliest deadline bounds the wait; sentinels detect death.
            wait_timeout = max(
                0.0, min(w.deadline for w in busy) - now
            )
            sources: list[Any] = [w.conn for w in busy]
            sources.extend(w.process.sentinel for w in busy)
            ready = mp_connection.wait(sources, timeout=min(wait_timeout, 1.0))
            ready_set = set(ready)
            now = time.monotonic()

            for index, worker in enumerate(self._workers):
                job = worker.job
                if job is None:
                    continue
                message: Optional[tuple] = None
                if worker.conn in ready_set:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        # The result pipe is gone — worker died mid-send,
                        # or closed its fd while staying alive.  Either
                        # way this is a crash *now*: waiting for the
                        # sentinel would busy-spin (wait() re-reports the
                        # dead pipe every iteration) until the deadline.
                        self.stats.crashes += 1
                        exit_code = worker.process.exitcode
                        tail = self._stderr_tail(worker)
                        self._kill_worker(worker)
                        self._workers[index] = self._spawn_worker()
                        terminal = self._record_failure(
                            job, pending, outcomes, "WorkerCrash",
                            "result pipe closed without a result "
                            f"(exit code {exit_code})",
                            tail, now,
                        )
                        if terminal is not None:
                            self._finish(outcomes, terminal, on_outcome)
                        continue
                if message is not None:
                    worker.job = None
                    if message[0] == "ok":
                        elapsed = now - job.started_first
                        outcome = JobOutcome(
                            key=job.key, result=message[1],
                            attempts=job.attempt, elapsed=elapsed,
                        )
                        outcomes[job.key] = outcome
                        self._finish(outcomes, outcome, on_outcome)
                    else:
                        _tag, error_type, error_message = message
                        self.stats.transient_errors += 1
                        terminal = self._record_failure(
                            job, pending, outcomes, error_type,
                            error_message, self._stderr_tail(worker), now,
                        )
                        if terminal is not None:
                            self._finish(outcomes, terminal, on_outcome)
                    continue
                if not worker.process.is_alive():
                    # Crash: the worker died without delivering a result.
                    self.stats.crashes += 1
                    exit_code = worker.process.exitcode
                    tail = self._stderr_tail(worker)
                    self._kill_worker(worker)
                    self._workers[index] = self._spawn_worker()
                    terminal = self._record_failure(
                        job, pending, outcomes, "WorkerCrash",
                        f"worker exited with code {exit_code} "
                        "without returning a result",
                        tail, now,
                    )
                    if terminal is not None:
                        self._finish(outcomes, terminal, on_outcome)
                    continue
                if now >= worker.deadline:
                    # Hang: past the wall-clock budget — kill and retry.
                    self.stats.timeouts += 1
                    tail = self._stderr_tail(worker)
                    self._kill_worker(worker)
                    self._workers[index] = self._spawn_worker()
                    terminal = self._record_failure(
                        job, pending, outcomes, "JobTimeout",
                        f"no result within {self.timeout:.1f}s "
                        "(worker terminated)",
                        tail, now,
                    )
                    if terminal is not None:
                        self._finish(outcomes, terminal, on_outcome)
