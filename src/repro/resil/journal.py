"""Checkpoint/resume run journal — an append-only, fsync'd JSONL manifest.

One matrix run writes one journal under ``<cache-dir>/runs/<run-id>.jsonl``
recording every job's completion (keyed by the persistent result-cache
digest) and every retry-exhausted failure.  An interrupted run — SIGTERM,
crash, power loss — resumes by replaying the journal: completed digests
are served straight from the result cache, the rest re-run, and the final
matrix is bit-identical to an uninterrupted run (the resume-equivalence
tests assert this on metric digests).

Schema
------
Versioned like the :mod:`repro.obs.events` traces: every record carries
``type`` and a monotonic ``seq`` (continuing across append sessions), and
the per-type required fields of :data:`JOURNAL_SCHEMA`.  A journal may
contain several *segments* (one ``run_start`` each — the original run
plus each resume); readers take the union of completions.

Durability: each record is written with ``flush`` + ``os.fsync`` before
:meth:`RunJournal.append` returns, so a record observed by a reader is
complete and a crash can lose at most the record being written — which,
being JSONL, is detected as a torn trailing line and ignored with a
warning by :func:`read_journal`.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional, Union

#: Bump when the journal's observable structure changes.
#: v2: ``run_start`` identifies the run by the scenario spec hash
#:     (:meth:`repro.scenarios.spec.MatrixSpec.spec_hash`) plus the
#:     ``family`` / ``prefetch`` fields needed to reconstruct the spec;
#:     the unreliable ``custom_config: bool`` is retired — resume now
#:     *proves* spec equality by recomputing the hash instead of
#:     trusting a flag.
JOURNAL_SCHEMA_VERSION = 2

_NoneType = type(None)

#: ``run_start`` as written by schema v1 journals (still readable).
_RUN_START_V1: dict[str, tuple] = {
    "schema": (int,),
    "run_id": (str,),
    "spec_hash": (str,),
    "policies": (list,),
    "rates": (list,),
    "apps": (list,),
    "seed": (int,),
    "scale": (int, float),
    "total_jobs": (int,),
    "custom_config": (bool,),
}

#: Per-type required fields (beyond ``type`` and ``seq``) and accepted
#: Python types after a JSON round-trip.
JOURNAL_SCHEMA: dict[str, dict[str, tuple]] = {
    # Segment bracket: identifies the run and stamps the schema version.
    "run_start": {
        "schema": (int,),
        "run_id": (str,),
        "spec_hash": (str,),
        "family": (str,),
        "policies": (list,),
        "rates": (list,),
        "apps": (list,),
        "seed": (int,),
        "scale": (int, float),
        "prefetch": (int,),
        "total_jobs": (int,),
    },
    # One per job that produced a result (simulated or cache hit).
    "job_done": {
        "app": (str,),
        "policy": (str,),
        "rate": (int, float),
        "digest": (str,),
        "cached": (bool,),
        "attempts": (int,),
        "elapsed": (int, float),
    },
    # One per job whose retries were exhausted.
    "job_failed": {
        "app": (str,),
        "policy": (str,),
        "rate": (int, float),
        "digest": (str,),
        "error": (str,),
        "message": (str,),
        "attempts": (int,),
        "elapsed": (int, float),
    },
    # Clean shutdown after SIGTERM / KeyboardInterrupt.
    "run_interrupted": {
        "completed": (int,),
        "remaining": (int,),
    },
    "run_end": {
        "completed": (int,),
        "failed": (int,),
    },
}

#: The known record types, in schema order.
RECORD_TYPES = tuple(JOURNAL_SCHEMA)

_SCALARS = (str, int, float, bool, _NoneType)


class JournalError(ValueError):
    """A journal record or file does not conform to the schema."""


def validate_record(record: object) -> None:
    """Raise :class:`JournalError` unless ``record`` is schema-valid."""
    if not isinstance(record, dict):
        raise JournalError(
            f"record must be an object, got {type(record).__name__}"
        )
    record_type = record.get("type")
    if record_type not in JOURNAL_SCHEMA:
        raise JournalError(f"unknown record type {record_type!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise JournalError(f"{record_type}: 'seq' must be a non-negative int")
    fields = JOURNAL_SCHEMA[record_type]
    if record_type == "run_start" and record.get("schema") == 1:
        fields = _RUN_START_V1  # journals written before the spec refactor
    for name, accepted in fields.items():
        if name not in record:
            raise JournalError(f"{record_type}: missing field {name!r}")
        value = record[name]
        if isinstance(value, bool) and bool not in accepted:
            raise JournalError(
                f"{record_type}: field {name!r} has invalid type bool"
            )
        if not isinstance(value, accepted):
            raise JournalError(
                f"{record_type}: field {name!r} has invalid type "
                f"{type(value).__name__}"
            )
    for name, value in record.items():
        if name in ("type", "seq") or name in fields:
            continue
        if not isinstance(value, _SCALARS):
            raise JournalError(
                f"{record_type}: extra field {name!r} must be a JSON scalar"
            )


def journal_dir() -> Path:
    """Directory holding run journals (inside the persistent cache dir)."""
    from repro.sim import cache as sim_cache

    return sim_cache.cache_dir() / "runs"


def journal_path(run_id: str) -> Path:
    """Where the journal for ``run_id`` lives."""
    return journal_dir() / f"{run_id}.jsonl"


class RunJournal:
    """Append-only, fsync'd JSONL writer for one run id.

    Opening is lazy; the first append creates the file (or continues an
    existing one, resuming the ``seq`` numbering after its last intact
    record).
    """

    def __init__(self, run_id: str, path: Optional[Path] = None) -> None:
        self.run_id = run_id
        self.path = Path(path) if path is not None else journal_path(run_id)
        self._stream: Optional[IO[str]] = None
        self._seq: Optional[int] = None

    def _open(self) -> IO[str]:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._seq is None:
                existing = read_journal(self.path, missing_ok=True)
                self._seq = (
                    existing[-1]["seq"] + 1 if existing else 0
                )
            _repair_tail(self.path)
            self._stream = self.path.open("a", encoding="utf-8")
        return self._stream

    def append(self, record_type: str, **fields: object) -> dict:
        """Validate, append, flush and fsync one record; return it."""
        stream = self._open()
        assert self._seq is not None
        record: dict = {"type": record_type, "seq": self._seq}
        record.update(fields)
        validate_record(record)
        stream.write(
            json.dumps(record, separators=(",", ":"), allow_nan=False) + "\n"
        )
        stream.flush()
        os.fsync(stream.fileno())
        self._seq += 1
        return record

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def _repair_tail(path: Path) -> None:
    """Ensure the journal ends on a record boundary before appending.

    A crash mid-append can leave an unterminated final line — either a
    torn JSON fragment or a complete record missing only its newline.
    :func:`read_journal` tolerates both, but appending after them would
    concatenate the next record onto the fragment, turning a survivable
    crashed-tail write into mid-file corruption that poisons every later
    read.  So: a fragment is truncated away (matching what readers
    already dropped), an unterminated-but-intact record gets its newline.
    """
    if not path.is_file():
        return
    with path.open("r+b") as stream:
        data = stream.read()
        if not data or data.endswith(b"\n"):
            return
        tail_start = data.rfind(b"\n") + 1
        try:
            json.loads(data[tail_start:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            stream.truncate(tail_start)
        else:
            stream.write(b"\n")
        stream.flush()
        os.fsync(stream.fileno())


def read_journal(
    path: Union[str, Path], *, missing_ok: bool = False
) -> list[dict]:
    """Every intact record of a journal file, in file order.

    A torn trailing line — the one write a crash can lose — is skipped
    with a :class:`RuntimeWarning`; a torn line *followed by intact
    records* is real corruption and raises :class:`JournalError`.
    """
    path = Path(path)
    if not path.is_file():
        if missing_ok:
            return []
        raise JournalError(f"no journal at {path}")
    records: list[dict] = []
    torn_at: Optional[int] = None
    with path.open("r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if torn_at is None:
                    torn_at = lineno
                    continue
                raise JournalError(
                    f"{path}:{torn_at}: torn record mid-file "
                    "(corruption, not a crashed tail write)"
                )
            if torn_at is not None:
                raise JournalError(
                    f"{path}:{torn_at}: torn record mid-file "
                    "(corruption, not a crashed tail write)"
                )
            records.append(record)
    if torn_at is not None:
        warnings.warn(
            f"{path}:{torn_at}: dropping torn trailing record "
            "(interrupted final write)",
            RuntimeWarning, stacklevel=2,
        )
    return records


@dataclass
class JournalSummary:
    """Parsed view of one journal: spec, completions, failures, state."""

    run_id: str
    path: Path
    #: The most recent ``run_start`` record (the active spec).
    spec: dict = field(default_factory=dict)
    #: digest → most recent ``job_done`` record with ``cached=True``
    #: (only cached completions can be served on resume).
    completed: dict[str, dict] = field(default_factory=dict)
    #: Every digest whose latest terminal state is a completion —
    #: cached or not.  Reporting (``check journal``, resume listings)
    #: counts these; only :attr:`completed` is resume-serviceable.
    done_digests: set[str] = field(default_factory=set)
    #: digest → most recent ``job_failed`` record.
    failed: dict[str, dict] = field(default_factory=dict)
    segments: int = 0
    interrupted: bool = False
    ended: bool = False

    @property
    def done(self) -> int:
        """Completions to report — cached or not (see :attr:`done_digests`)."""
        return len(self.done_digests)

    @property
    def total_jobs(self) -> int:
        return int(self.spec.get("total_jobs", 0))


def summarize(path: Union[str, Path], run_id: str = "") -> JournalSummary:
    """Build a :class:`JournalSummary`, validating every record."""
    path = Path(path)
    records = read_journal(path)
    summary = JournalSummary(run_id=run_id or path.stem, path=path)
    last_seq = -1
    for index, record in enumerate(records):
        try:
            validate_record(record)
        except JournalError as error:
            raise JournalError(f"{path}: record {index}: {error}") from error
        seq = record["seq"]
        if seq <= last_seq:
            raise JournalError(
                f"{path}: record {index}: seq {seq} not monotonic "
                f"(previous {last_seq})"
            )
        last_seq = seq
        record_type = record["type"]
        if index == 0 and record_type != "run_start":
            raise JournalError(
                f"{path}: journal must open with run_start, "
                f"got {record_type}"
            )
        if record_type == "run_start":
            if record["schema"] > JOURNAL_SCHEMA_VERSION:
                raise JournalError(
                    f"{path}: journal schema v{record['schema']} is newer "
                    f"than this build's v{JOURNAL_SCHEMA_VERSION}"
                )
            summary.spec = record
            summary.segments += 1
            summary.interrupted = False
            summary.ended = False
        elif record_type == "job_done":
            summary.failed.pop(record["digest"], None)
            summary.done_digests.add(record["digest"])
            if record["cached"]:
                summary.completed[record["digest"]] = record
        elif record_type == "job_failed":
            summary.failed[record["digest"]] = record
            summary.done_digests.discard(record["digest"])
            summary.completed.pop(record["digest"], None)
        elif record_type == "run_interrupted":
            summary.interrupted = True
        elif record_type == "run_end":
            summary.ended = True
    if summary.segments == 0:
        raise JournalError(f"{path}: journal has no run_start record")
    return summary


def load(run_id: str) -> Optional[JournalSummary]:
    """Summary for ``run_id`` from the default journal dir, if present."""
    path = journal_path(run_id)
    if not path.is_file():
        return None
    return summarize(path, run_id)


def list_runs() -> list[str]:
    """Run ids with a journal on disk, most recently modified first."""
    directory = journal_dir()
    if not directory.is_dir():
        return []
    files = sorted(
        directory.glob("*.jsonl"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return [f.stem for f in files]


__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalSummary",
    "RECORD_TYPES",
    "RunJournal",
    "journal_dir",
    "journal_path",
    "list_runs",
    "load",
    "read_journal",
    "summarize",
    "validate_record",
]
