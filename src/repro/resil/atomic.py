"""Atomic, durable, torn-write-detecting file persistence.

Every persistent artefact the harness writes — result-cache entries,
trace memos, run journals, ``BENCH_*.json`` reports — goes through this
module, so one crash-safety discipline covers them all:

* **Atomicity** — payloads are written to a same-directory temp file and
  published with ``os.replace``; readers never observe a half-written
  file under the final name.
* **Durability** — the temp file is flushed and ``fsync``'d before the
  rename, and the containing directory is fsync'd after it (best
  effort), so a completed write survives power loss.
* **Torn-write detection** — :func:`frame_payload` prepends a magic tag
  and a SHA-256 checksum; :func:`unframe_payload` raises
  :class:`TornPayloadError` when the body does not match, letting cache
  readers treat a corrupt entry as a *miss* instead of a crash.

The custom lint rule REP007 forbids raw ``os.replace`` /
``tempfile.mkstemp`` elsewhere in the package, making this the single
blessed implementation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Union

#: Leading tag of a checksummed payload.  Readers use it to distinguish
#: framed entries from legacy raw pickles (which can never start with
#: these bytes: pickle opcodes never produce ``HPEF``).
MAGIC = b"HPEF1\n"

#: Length of the hex checksum line following :data:`MAGIC`.
_DIGEST_LEN = 64

_HEADER_LEN = len(MAGIC) + _DIGEST_LEN + 1  # trailing newline


class TornPayloadError(ValueError):
    """A framed payload failed its checksum (torn or corrupted write)."""


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` with the magic tag and its SHA-256 checksum."""
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + payload


def is_framed(data: bytes) -> bool:
    """Does ``data`` start with the checksum frame header?"""
    return data.startswith(MAGIC)


def unframe_payload(data: bytes) -> bytes:
    """Verify and strip the checksum frame of :func:`frame_payload`.

    Raises :class:`TornPayloadError` if the header is truncated or the
    body's checksum does not match — i.e. the write was torn or the file
    was corrupted in place.
    """
    if not data.startswith(MAGIC):
        raise TornPayloadError("payload is not checksum-framed")
    if len(data) < _HEADER_LEN or data[_HEADER_LEN - 1:_HEADER_LEN] != b"\n":
        raise TornPayloadError("framed payload header is truncated")
    recorded = data[len(MAGIC):len(MAGIC) + _DIGEST_LEN]
    body = data[_HEADER_LEN:]
    actual = hashlib.sha256(body).hexdigest().encode("ascii")
    if recorded != actual:
        raise TornPayloadError(
            "payload checksum mismatch (torn or corrupted write)"
        )
    return body


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path], payload: bytes, *, fsync: bool = True
) -> None:
    """Write ``payload`` to ``path`` atomically (temp + fsync + replace).

    Safe under concurrent writers: each writer renames its own temp file
    and the last rename wins, so readers always see a complete payload.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(payload)
            if fsync:
                stream.flush()
                os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(path.parent)


def atomic_write_text(
    path: Union[str, Path], text: str, *, fsync: bool = True
) -> None:
    """Atomic UTF-8 text write (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: Union[str, Path], payload: object, *,
    indent: int = 2, fsync: bool = True,
) -> None:
    """Atomic pretty-printed JSON write (``BENCH_*.json`` and friends)."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent) + "\n", fsync=fsync
    )


def replace_into(tmp: Union[str, Path], path: Union[str, Path]) -> None:
    """Atomically publish an already-written temp file at ``path``.

    For writers that must produce the temp file themselves (e.g. a
    gzip trace written by ``save_trace``); the temp file must live on
    the same filesystem as ``path``.
    """
    os.replace(tmp, path)
    _fsync_directory(Path(path).parent)
