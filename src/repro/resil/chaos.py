"""Deterministic fault injection (``REPRO_CHAOS`` / ``--chaos``).

The chaos harness makes the resilience layer testable: it injects the
exact failures a long oversubscription sweep will eventually see —
worker crashes, hangs, transient exceptions, torn cache writes, and a
mid-run SIGTERM — from a compact, *seeded* spec, so every chaotic run is
reproducible and CI can assert precise retry counts and final state.

Spec grammar
------------
A comma-separated list of ``kind=value`` (``kind:value`` also accepted)::

    REPRO_CHAOS="seed=42,crash=0.2,hang=0.1,flaky=0.3,torn=0.5,sigterm=4"

========  ===========================================================
``seed``  integer folded into every decision hash (default 0)
``crash``  probability a worker attempt dies without returning
           (``os._exit``; serial mode raises :class:`ChaosCrashError`)
``hang``   probability a worker attempt sleeps past its wall-clock
           timeout (serial mode raises :class:`ChaosHangError`)
``flaky``  probability a worker attempt raises a transient
           :class:`ChaosTransientError`
``torn``   probability a result-cache write is torn (truncated) —
           detected later by the checksum frame and treated as a miss
``sigterm`` interrupt the supervising process after this many job
            completions (0 = never)
========  ===========================================================

Every decision is a pure function of ``(seed, kind, job key, attempt)``
via SHA-256 — no RNG state, no ordering sensitivity — so a retried
attempt rolls a fresh, but reproducible, die.  Probabilities of exactly
``1.0`` therefore exhaust retries deterministically (the graceful-
degradation test mode) while small probabilities model recoverable
faults.

Worker processes receive the spec *textually* (spawn-safe) and
re-activate it; the cache layer consults the process-local active spec
through :func:`maybe_corrupt`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

#: Environment variable carrying the chaos spec (empty/off by default).
ENV_CHAOS = "REPRO_CHAOS"

#: Exit status used by injected worker crashes (distinct from real ones).
CHAOS_CRASH_EXIT = 73

#: Worker actions, in evaluation (precedence) order.
_ACTIONS = ("crash", "hang", "flaky")


class ChaosSpecError(ValueError):
    """The chaos spec text does not follow the grammar."""


class ChaosTransientError(RuntimeError):
    """Injected transient failure — succeeds on a (re-rolled) retry."""


class ChaosCrashError(RuntimeError):
    """Serial-mode stand-in for a worker process crash."""


class ChaosHangError(RuntimeError):
    """Serial-mode stand-in for a hung worker hitting its timeout."""


def _roll(seed: int, kind: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one decision."""
    blob = f"{seed}|{kind}|{key}|{attempt}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed, immutable fault-injection configuration."""

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    flaky: float = 0.0
    torn: float = 0.0
    sigterm: int = 0
    #: The original spec text (travels to worker processes verbatim).
    text: str = ""

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse the ``kind=value`` grammar; raises :class:`ChaosSpecError`."""
        values: dict[str, object] = {}
        for raw_part in text.split(","):
            part = raw_part.strip()
            if not part:
                continue
            sep = "=" if "=" in part else ":"
            if sep not in part:
                raise ChaosSpecError(
                    f"chaos spec item {part!r} is not kind=value "
                    "(kinds: seed, crash, hang, flaky, torn, sigterm)"
                )
            kind, _, value_text = part.partition(sep)
            kind = kind.strip().lower()
            value_text = value_text.strip()
            if kind in ("seed", "sigterm"):
                try:
                    values[kind] = int(value_text)
                except ValueError as error:
                    raise ChaosSpecError(
                        f"chaos {kind} must be an integer, got {value_text!r}"
                    ) from error
            elif kind in ("crash", "hang", "flaky", "torn"):
                try:
                    probability = float(value_text)
                except ValueError as error:
                    raise ChaosSpecError(
                        f"chaos {kind} must be a probability, "
                        f"got {value_text!r}"
                    ) from error
                if not 0.0 <= probability <= 1.0:
                    raise ChaosSpecError(
                        f"chaos {kind} probability {probability} "
                        "outside [0, 1]"
                    )
                values[kind] = probability
            else:
                raise ChaosSpecError(
                    f"unknown chaos kind {kind!r} "
                    "(known: seed, crash, hang, flaky, torn, sigterm)"
                )
        sigterm = values.get("sigterm", 0)
        if isinstance(sigterm, int) and sigterm < 0:
            raise ChaosSpecError("chaos sigterm count must be >= 0")
        return cls(text=text, **values)  # type: ignore[arg-type]

    def active(self) -> bool:
        """Does this spec inject anything at all?"""
        return bool(
            self.crash or self.hang or self.flaky or self.torn or self.sigterm
        )

    def worker_action(self, key: str, attempt: int) -> Optional[str]:
        """Injected action for one (job, attempt): crash/hang/flaky/None.

        Kinds are evaluated in fixed precedence order with independent
        deterministic rolls, so the outcome is a pure function of the
        spec, the job key, and the attempt number.
        """
        for kind in _ACTIONS:
            probability: float = getattr(self, kind)
            if probability and _roll(self.seed, kind, key, attempt) < probability:
                return kind
        return None

    def should_tear(self, digest: str) -> bool:
        """Should the cache write for ``digest`` be torn (first write only)?"""
        return bool(self.torn) and _roll(self.seed, "torn", digest, 0) < self.torn

    def should_interrupt(self, completions: int) -> bool:
        """Simulate a SIGTERM once ``completions`` jobs have finished?"""
        return bool(self.sigterm) and completions >= self.sigterm


#: Process-local active spec consulted by the cache-write hook, plus the
#: set of digests already torn (each entry is torn at most once per
#: process so a retried recompute can heal the cache).
_ACTIVE: Optional[ChaosSpec] = None
_TORN_DIGESTS: set[str] = set()


def activate(spec: Optional[ChaosSpec]) -> None:
    """Install ``spec`` as this process's active chaos configuration."""
    global _ACTIVE
    # Per-process by design: every worker installs its own chaos spec
    # from the job payload; the parent's value is never read back.
    _ACTIVE = spec  # noqa: REP011
    _TORN_DIGESTS.clear()


def deactivate() -> None:
    """Remove any active chaos configuration (test teardown)."""
    activate(None)


def active_spec() -> Optional[ChaosSpec]:
    """The process-local active spec, if any."""
    return _ACTIVE


def from_env() -> Optional[ChaosSpec]:
    """Parse ``REPRO_CHAOS`` (``None`` when unset/empty/inactive)."""
    raw = os.environ.get(ENV_CHAOS, "").strip()
    if not raw:
        return None
    spec = ChaosSpec.parse(raw)
    return spec if spec.active() else None


def resolve(spec: "Optional[ChaosSpec | str]") -> Optional[ChaosSpec]:
    """Normalise a chaos argument: spec object, spec text, or env."""
    if spec is None:
        return from_env()
    if isinstance(spec, str):
        parsed = ChaosSpec.parse(spec)
        return parsed if parsed.active() else None
    return spec if spec.active() else None


def maybe_corrupt(digest: str, payload: bytes) -> bytes:
    """Cache-write hook: return a torn payload when chaos says so.

    Called by :meth:`repro.sim.cache.ResultCache.put` with the framed
    payload about to hit disk.  Tearing truncates the body so the
    checksum frame no longer verifies — exactly what an interrupted
    write produces.  Each digest is torn at most once per process.
    """
    spec = _ACTIVE
    if spec is None or digest in _TORN_DIGESTS:
        return payload
    if not spec.should_tear(digest):
        return payload
    _TORN_DIGESTS.add(digest)
    return payload[:max(1, len(payload) // 2)]
