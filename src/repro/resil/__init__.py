"""Resilient experiment execution: supervision, journaling, fault injection.

The package has four pillars, each in its own module:

* :mod:`repro.resil.atomic` — atomic/durable file writes and checksum
  framing (torn-write detection);
* :mod:`repro.resil.chaos` — the deterministic fault-injection harness
  behind ``REPRO_CHAOS`` / ``--chaos``;
* :mod:`repro.resil.journal` — the append-only checkpoint/resume run
  manifest;
* :mod:`repro.resil.supervisor` — the supervised worker pool with
  timeouts, retries, and crash isolation;
* :mod:`repro.resil.settings` — the one typed resolver for every
  ``REPRO_*`` resilience/serving knob (``hpe-repro serve
  --print-config`` dumps it).

The experiment runner (:mod:`repro.experiments.runner`) threads them
together; :class:`MatrixInterrupted` and :data:`EXIT_INTERRUPTED` are
the contract between an interrupted ``run_matrix`` and the CLI.
"""

from __future__ import annotations

import os

from repro.resil.atomic import (
    TornPayloadError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    frame_payload,
    is_framed,
    replace_into,
    unframe_payload,
)
from repro.resil.chaos import (
    CHAOS_CRASH_EXIT,
    ENV_CHAOS,
    ChaosCrashError,
    ChaosHangError,
    ChaosSpec,
    ChaosSpecError,
    ChaosTransientError,
)
from repro.resil.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    JournalSummary,
    RunJournal,
)
from repro.resil.settings import KNOBS, ResilSettings
from repro.resil.settings import resolve as resolve_settings
from repro.resil.supervisor import (
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    ENV_BACKOFF,
    ENV_RETRIES,
    ENV_TIMEOUT,
    ENV_WORKER_TIMEOUT,
    JobFailure,
    JobOutcome,
    SupervisorInterrupted,
    WorkerSupervisor,
    compact_tail,
    resolve_backoff,
    resolve_retries,
    resolve_timeout,
)

#: Exit status of a matrix run stopped by SIGTERM/``KeyboardInterrupt``
#: after a clean shutdown (journal flushed, pool terminated).  75 is
#: ``EX_TEMPFAIL`` — "try again later", which ``hpe-repro resume`` does.
EXIT_INTERRUPTED = 75

#: Set to ``0`` to disable run journaling even when the cache is on.
ENV_JOURNAL = "REPRO_JOURNAL"


class MatrixInterrupted(RuntimeError):
    """A matrix run was interrupted after a clean shutdown.

    Carries the ``run_id`` whose journal records the completed jobs, so
    the CLI can print a resume hint and exit :data:`EXIT_INTERRUPTED`.
    """

    def __init__(self, run_id: str, completed: int, remaining: int) -> None:
        super().__init__(
            f"matrix run {run_id} interrupted: {completed} job(s) "
            f"completed, {remaining} remaining"
        )
        self.run_id = run_id
        self.completed = completed
        self.remaining = remaining


def journal_enabled() -> bool:
    """Is run journaling on?  Default yes; ``REPRO_JOURNAL=0`` disables."""
    return os.environ.get(ENV_JOURNAL, "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


__all__ = [
    "CHAOS_CRASH_EXIT",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT_S",
    "ENV_BACKOFF",
    "ENV_CHAOS",
    "ENV_JOURNAL",
    "ENV_RETRIES",
    "ENV_TIMEOUT",
    "ENV_WORKER_TIMEOUT",
    "EXIT_INTERRUPTED",
    "KNOBS",
    "ResilSettings",
    "ChaosCrashError",
    "ChaosHangError",
    "ChaosSpec",
    "ChaosSpecError",
    "ChaosTransientError",
    "JOURNAL_SCHEMA_VERSION",
    "JobFailure",
    "JobOutcome",
    "JournalError",
    "JournalSummary",
    "MatrixInterrupted",
    "RunJournal",
    "SupervisorInterrupted",
    "TornPayloadError",
    "WorkerSupervisor",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "compact_tail",
    "frame_payload",
    "is_framed",
    "journal_enabled",
    "replace_into",
    "resolve_backoff",
    "resolve_retries",
    "resolve_settings",
    "resolve_timeout",
    "unframe_payload",
]
