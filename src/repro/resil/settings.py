"""One typed resolver for every ``REPRO_*`` resilience/serving knob.

Before this module existed the resilience knobs were scattered:
``repro.resil.supervisor`` parsed ``REPRO_TIMEOUT`` / ``REPRO_RETRIES``
/ ``REPRO_BACKOFF`` with three ad-hoc helpers, and the serving layer
would have grown its own parsing for rate limits and deadlines.  Every
knob now lives in one table (:data:`KNOBS`) with its type, default,
validation rule, and documentation, and resolves through
:func:`resolve` into a frozen :class:`ResilSettings`.  ``hpe-repro
serve --print-config`` dumps the resolved values with their sources so
an operator can see exactly what a running service will do.

Knob semantics
--------------
``worker_timeout``
    Per-job wall-clock budget in seconds.  ``REPRO_WORKER_TIMEOUT``
    (preferred) or the legacy ``REPRO_TIMEOUT``.  **``0`` disables
    enforcement** — the documented escape hatch for debugging a
    genuinely slow cell — on both the supervised and the serial path.
    (The legacy variable keeps its historical "non-positive means
    default" reading; only ``REPRO_WORKER_TIMEOUT`` can express 0.)
``retries`` / ``backoff``
    Extra attempts per failed job and the base of the exponential
    backoff between them (deterministically jittered; see
    :func:`repro.resil.supervisor.backoff_delay`).
``rate_limit`` / ``rate_burst``
    Token-bucket admission for the evaluation service: sustained
    requests/second and the burst capacity.  ``rate_limit=0`` disables
    rate limiting.
``max_queue`` / ``max_concurrent``
    Queue-depth admission control: at most ``max_concurrent`` requests
    evaluate at once and at most ``max_queue`` requests may be queued
    or running before new submissions are shed with 503.
``request_deadline``
    Default per-request deadline in seconds (a request may ask for a
    shorter one).  ``0`` disables deadlines.
``breaker_threshold`` / ``breaker_cooldown``
    Circuit breaker: after ``breaker_threshold`` consecutive
    crash/timeout-degraded evaluations of the *same* spec, further
    submissions of that spec are quarantined for ``breaker_cooldown``
    seconds (poison-request protection).  ``threshold=0`` disables.
``drain_grace``
    Seconds a draining server waits for in-flight requests after
    SIGTERM/SIGINT before exiting with status 75 (``EX_TEMPFAIL``).
``serve_jobs``
    Worker processes per request evaluation.  Clamped to >= 2 so the
    service always takes the supervised (timeout-enforced) pool path.
``read_timeout``
    Seconds the HTTP layer waits for a slow client's request before
    answering 408 and closing (abandoned-connection protection).
``stderr_tail_bytes``
    Bound on the worker-stderr tail attached to a
    :class:`~repro.resil.supervisor.JobFailure` (after consecutive
    duplicate lines are collapsed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Callable, Optional, Union

Number = Union[int, float]

#: Legacy alias for ``worker_timeout`` (kept working forever).
ENV_LEGACY_TIMEOUT = "REPRO_TIMEOUT"


@dataclass(frozen=True)
class Knob:
    """One configuration knob: identity, parsing, and documentation."""

    name: str
    env: str
    default: Number
    kind: str  # "float" or "int"
    #: Is an explicit 0 meaningful (disables the feature) or invalid?
    zero_ok: bool
    description: str

    def parse(self, raw: str) -> Optional[Number]:
        """Parse an environment string; ``None`` when invalid."""
        try:
            value: Number = (
                int(raw) if self.kind == "int" else float(raw)
            )
        except ValueError:
            return None
        if value < 0 or (value == 0 and not self.zero_ok):
            return None
        return value


#: Every knob, in ``--print-config`` display order.
KNOBS: tuple[Knob, ...] = (
    Knob("worker_timeout", "REPRO_WORKER_TIMEOUT", 600.0, "float", True,
         "per-job wall-clock timeout in seconds (0 disables; legacy "
         "alias REPRO_TIMEOUT, which cannot express 0)"),
    Knob("retries", "REPRO_RETRIES", 2, "int", True,
         "extra attempts after a job's first failure"),
    Knob("backoff", "REPRO_BACKOFF", 0.25, "float", True,
         "base retry backoff in seconds, doubled per attempt with "
         "deterministic jitter"),
    Knob("rate_limit", "REPRO_RATE_LIMIT", 50.0, "float", True,
         "sustained request admission rate in requests/second "
         "(0 disables rate limiting)"),
    Knob("rate_burst", "REPRO_RATE_BURST", 100.0, "float", False,
         "token-bucket burst capacity in requests"),
    Knob("max_queue", "REPRO_MAX_QUEUE", 32, "int", True,
         "max requests queued or running before 503 load shedding "
         "(0 admits only what can start immediately)"),
    Knob("max_concurrent", "REPRO_MAX_CONCURRENT", 4, "int", False,
         "request evaluations running at once"),
    Knob("request_deadline", "REPRO_DEADLINE", 300.0, "float", True,
         "default per-request deadline in seconds (0 disables)"),
    Knob("breaker_threshold", "REPRO_BREAKER_THRESHOLD", 3, "int", True,
         "consecutive crash-degraded evaluations of one spec before "
         "its circuit breaker opens (0 disables)"),
    Knob("breaker_cooldown", "REPRO_BREAKER_COOLDOWN", 30.0, "float", True,
         "seconds a tripped spec stays quarantined before one probe "
         "is allowed through"),
    Knob("drain_grace", "REPRO_DRAIN_GRACE", 10.0, "float", True,
         "seconds a draining server waits for in-flight requests "
         "after SIGTERM/SIGINT"),
    Knob("serve_jobs", "REPRO_SERVE_JOBS", 2, "int", False,
         "worker processes per request evaluation (clamped to >= 2 so "
         "the supervised, timeout-enforced pool path is always taken)"),
    Knob("read_timeout", "REPRO_READ_TIMEOUT", 10.0, "float", False,
         "seconds the HTTP layer waits for a slow client request "
         "before answering 408"),
    Knob("stderr_tail_bytes", "REPRO_STDERR_TAIL", 4096, "int", False,
         "bound on the deduplicated worker-stderr tail attached to "
         "job failures"),
)

_KNOBS_BY_NAME: dict[str, Knob] = {knob.name: knob for knob in KNOBS}


@dataclass(frozen=True)
class ResilSettings:
    """Resolved values of every knob (see the module doc for semantics)."""

    worker_timeout: float = 600.0
    retries: int = 2
    backoff: float = 0.25
    rate_limit: float = 50.0
    rate_burst: float = 100.0
    max_queue: int = 32
    max_concurrent: int = 4
    request_deadline: float = 300.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    drain_grace: float = 10.0
    serve_jobs: int = 2
    read_timeout: float = 10.0
    stderr_tail_bytes: int = 4096

    def describe(self) -> list[dict[str, object]]:
        """One row per knob: value, source, env name, documentation."""
        rows: list[dict[str, object]] = []
        for knob in KNOBS:
            value = getattr(self, knob.name)
            rows.append({
                "name": knob.name,
                "value": value,
                "env": knob.env,
                "default": knob.default,
                "source": _source_of(knob, value),
                "description": knob.description,
            })
        return rows

    def lines(self) -> list[str]:
        """Human-readable ``--print-config`` dump."""
        width = max(len(knob.name) for knob in KNOBS)
        out = []
        for row in self.describe():
            out.append(
                f"{str(row['name']):<{width}s} = {row['value']!r:<8} "
                f"[{row['source']}]  ({row['env']}) {row['description']}"
            )
        return out


def _source_of(knob: Knob, value: Number) -> str:
    """Best-effort provenance label for one resolved value."""
    env_value = _from_env(knob)
    if env_value is not None and env_value == value:
        return "env"
    if value == knob.default:
        return "default"
    return "override"


def _from_env(knob: Knob) -> Optional[Number]:
    """The knob's environment value, if set and valid."""
    raw = os.environ.get(knob.env, "").strip()
    if raw:
        parsed = knob.parse(raw)
        if parsed is not None:
            return parsed
    if knob.name == "worker_timeout":
        legacy = os.environ.get(ENV_LEGACY_TIMEOUT, "").strip()
        if legacy:
            parsed = knob.parse(legacy)
            # The legacy variable keeps its historical semantics:
            # non-positive values fall back to the default.
            if parsed is not None and parsed > 0:
                return parsed
    return None


def resolve(**overrides: Optional[Number]) -> ResilSettings:
    """Resolve every knob: explicit override, then env, then default.

    ``None`` overrides are ignored (so call sites can pass optional CLI
    arguments straight through).  Unknown names raise ``TypeError``
    rather than silently configuring nothing.
    """
    unknown = sorted(set(overrides) - set(_KNOBS_BY_NAME))
    if unknown:
        raise TypeError(
            f"unknown settings override(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_KNOBS_BY_NAME))}"
        )
    values: dict[str, Number] = {}
    for knob in KNOBS:
        override = overrides.get(knob.name)
        if override is not None and override >= 0 and not (
            override == 0 and not knob.zero_ok
        ):
            value = override
        else:
            env_value = _from_env(knob)
            value = env_value if env_value is not None else knob.default
        values[knob.name] = int(value) if knob.kind == "int" else float(value)
    return ResilSettings(**values)  # type: ignore[arg-type]


def field_names() -> tuple[str, ...]:
    """Every settings field, in declaration order (tests, docs)."""
    return tuple(f.name for f in fields(ResilSettings))
