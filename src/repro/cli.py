"""Command-line interface: ``hpe-repro`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show the 23 applications with their pattern types.
``run``
    Run one (application × policy × rate) simulation and print metrics.
``figure``
    Regenerate one of the paper's figures (3, 7-15).
``table``
    Regenerate one of the paper's tables (1-3).
``sensitivity``
    Run a Section V-A/B sensitivity study.
``overhead``
    Run a Section V-C overhead analysis.
``ablation``
    Run the design-choice ablations (DESIGN.md).
``trace``
    With ``--app/--out``: dump an application's page-touch trace to a
    file.  With positionals (``trace STN hpe 0.75``): run one observed
    simulation and record a JSONL *event* trace.
``stats``
    Dump the observability metrics registry (optionally after one run).
``analyze``
    Reuse-distance / pattern analysis of an application or trace file.
``cache``
    Inspect or clear the persistent result/trace cache.
``check``
    Correctness tooling: ``check invariants APP [POLICY] [RATE]`` runs
    one simulation under the runtime sanitizer; ``check determinism``
    replays it twice and diffs the metric digests; ``check journal
    [RUN_ID]`` validates run-journal files against their schema.
``scenarios``
    The named scenario registry: ``scenarios list`` shows every
    registered experiment, ``scenarios show NAME`` prints its spec and
    hashes, ``scenarios run NAME`` executes it through the journaled
    matrix engine, and ``scenarios verify`` checks every registered
    spec hash against the committed manifest (run in CI).
``resume``
    Resume an interrupted matrix run from its journal (or list the
    runs on disk when no id is given).
``lint``
    Run the repo-specific AST lint pass (REP001–REP013, including the
    whole-program flow rules and the stale-noqa audit;
    ``--statistics`` prints per-rule counts).
``flow``
    The whole-program flow analyzer: ``flow graph`` prints the
    fault-path closure, ``flow staleness`` fails when the closure
    changed without a re-pin (REP009), ``flow pin`` rewrites the
    checked-in manifest after a reviewed change.
``typecheck``
    Run the strict typing gate (mypy when installed, plus the AST
    annotation-completeness check).
``all``
    Regenerate everything (used to refresh EXPERIMENTS.md data).
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from typing import Optional, Sequence

from repro.experiments.ablation import ablation
from repro.experiments.figures import FIGURES
from repro.experiments.overhead import OVERHEADS
from repro.experiments.runner import (
    ENV_JOBS,
    POLICY_NAMES,
    clear_trace_cache,
    run_application,
)
from repro.experiments.sensitivity import SENSITIVITIES
from repro.experiments.tables import TABLES
from repro import obs as obs_module
from repro.sim import cache as sim_cache
from repro.workloads.suite import all_applications, get_application
from repro.workloads.trace_io import load_trace, save_trace


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7,
                        help="trace generation seed (default 7)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="footprint scale factor (default 1.0)")
    parser.add_argument("--apps", type=str, default=None,
                        help="comma-separated subset of applications")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for matrix runs "
                             "(default: REPRO_JOBS or serial; "
                             "0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result/trace cache "
                             "for this invocation")
    parser.add_argument("--obs", action="store_true",
                        help="enable the observability layer (metrics "
                             "registry + interval time-series; same as "
                             "REPRO_OBS=1)")
    parser.add_argument("--sanitize", action="store_true",
                        help="validate simulator invariants while running "
                             "(same as REPRO_SANITIZE=1)")
    parser.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                        help="deterministic fault injection, e.g. "
                             "'seed=42,crash=0.2,flaky=0.3,torn=0.5' "
                             "(same as REPRO_CHAOS)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock timeout for matrix "
                             "workers (same as REPRO_TIMEOUT)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="extra attempts per failed matrix job "
                             "(same as REPRO_RETRIES)")
    parser.add_argument("--fastpath", type=int, default=None,
                        choices=(0, 1, 2), metavar="LEVEL",
                        help="simulator inner-loop tier: 0=reference, "
                             "1=flattened, 2=vectorized batch kernel "
                             "(same as REPRO_SIM_FASTPATH; default 2). "
                             "The relaxed tier 3 is never ambient: request "
                             "it per spec via run_spec/ScenarioSpec or "
                             "'hpe-repro diff --relaxed' (DESIGN §13)")


def _apps_arg(value: Optional[str]) -> Optional[list[str]]:
    if value is None:
        return None
    return [item.strip().upper() for item in value.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hpe-repro",
        description="Reproduction harness for 'HPE: Hierarchical Page "
                    "Eviction Policy for Unified Memory in GPUs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the evaluated applications")

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--app", required=True, help="application abbreviation")
    run_p.add_argument("--policy", default="hpe", choices=POLICY_NAMES)
    run_p.add_argument("--rate", type=float, default=0.75,
                       help="oversubscription rate (default 0.75)")
    _add_common(run_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("id", choices=sorted(FIGURES, key=int),
                       help="figure number")
    _add_common(fig_p)

    tab_p = sub.add_parser("table", help="regenerate a paper table")
    tab_p.add_argument("id", choices=sorted(TABLES))
    _add_common(tab_p)

    sens_p = sub.add_parser("sensitivity", help="run a sensitivity study")
    sens_p.add_argument("id", choices=sorted(SENSITIVITIES))
    _add_common(sens_p)

    ovh_p = sub.add_parser("overhead", help="run an overhead analysis")
    ovh_p.add_argument("id", choices=sorted(OVERHEADS))
    _add_common(ovh_p)

    abl_p = sub.add_parser("ablation", help="run the design-choice ablations")
    abl_p.add_argument("--rate", type=float, default=0.75)
    abl_p.add_argument("--variants", type=str, default=None,
                       help="comma-separated variant subset")
    _add_common(abl_p)

    trace_p = sub.add_parser(
        "trace",
        help="dump an application page trace (--app/--out) or record a "
             "JSONL event trace (trace APP [POLICY] [RATE])",
    )
    trace_p.add_argument("app_pos", nargs="?", metavar="APP", default=None,
                         help="application abbreviation (event-trace mode)")
    trace_p.add_argument("policy_pos", nargs="?", metavar="POLICY",
                         default="hpe",
                         help="policy for the event trace (default hpe)")
    trace_p.add_argument("rate_pos", nargs="?", metavar="RATE", type=float,
                         default=0.75,
                         help="oversubscription rate (default 0.75)")
    trace_p.add_argument("--app", default=None,
                         help="application for page-trace dump mode")
    trace_p.add_argument("--out", default=None,
                         help="output path (.gz ok for page traces; "
                              "default APP-POLICY-RATE.events.jsonl in "
                              "event-trace mode)")
    _add_common(trace_p)

    stats_p = sub.add_parser(
        "stats", help="dump the observability metrics registry"
    )
    stats_p.add_argument("app_pos", nargs="?", metavar="APP", default=None,
                         help="run this application observed, then dump")
    stats_p.add_argument("policy_pos", nargs="?", metavar="POLICY",
                         default="hpe",
                         help="policy (default hpe)")
    stats_p.add_argument("rate_pos", nargs="?", metavar="RATE", type=float,
                         default=0.75,
                         help="oversubscription rate (default 0.75)")
    _add_common(stats_p)

    ana_p = sub.add_parser("analyze", help="analyse a trace or application")
    group = ana_p.add_mutually_exclusive_group(required=True)
    group.add_argument("--app", help="application abbreviation")
    group.add_argument("--file", help="trace file written by `trace`")
    ana_p.add_argument("--capacities", type=str, default=None,
                       help="comma-separated capacities for miss curves")
    _add_common(ana_p)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent result/trace cache"
    )
    cache_p.add_argument("action", choices=["info", "clear"],
                         help="info: show location and entry counts; "
                              "clear: delete every cached result and trace")

    check_p = sub.add_parser(
        "check",
        help="run a correctness check (sanitized run or determinism diff)",
    )
    check_p.add_argument("mode", choices=["invariants", "determinism",
                                          "journal"],
                         help="invariants: one sanitized simulation; "
                              "determinism: run twice and diff digests; "
                              "journal: validate run-journal files")
    check_p.add_argument("app_pos", nargs="?", metavar="APP",
                         help="application abbreviation (or run id for "
                              "`check journal`; default: every journal)")
    check_p.add_argument("policy_pos", nargs="?", metavar="POLICY",
                         default="hpe", help="policy (default hpe)")
    check_p.add_argument("rate_pos", nargs="?", metavar="RATE", type=float,
                         default=0.75,
                         help="oversubscription rate (default 0.75)")
    check_p.add_argument("--fast", action="store_true",
                         help="smoke mode: sanitize only the first "
                              "2000 faults")
    _add_common(check_p)

    diff_p = sub.add_parser(
        "diff",
        help="differential check: replay synthetic traces through all "
             "simulator tiers and diff every observable",
    )
    diff_p.add_argument("--seeds", type=str, default="11,23,47",
                        metavar="S1,S2,...",
                        help="comma-separated trace seeds (default "
                             "11,23,47)")
    diff_p.add_argument("--length", type=int, default=2048,
                        help="episodes per synthetic trace (default 2048)")
    diff_p.add_argument("--policies", type=str, default=None,
                        help="comma-separated subset of policies "
                             "(default: all)")
    diff_p.add_argument("--generators", type=str, default=None,
                        help="comma-separated subset of trace generators "
                             "(default: all)")
    diff_p.add_argument("--relaxed", action="store_true",
                        help="also gate the relaxed tier 3 kernel against "
                             "tier 1 under the DESIGN §13 tolerance table")
    _add_common(diff_p)

    gold_p = sub.add_parser(
        "golden",
        help="check the golden key-metrics snapshots "
             "(--update regenerates them)",
    )
    gold_p.add_argument("--update", action="store_true",
                        help="rewrite the snapshots from the current "
                             "simulator instead of checking")
    gold_p.add_argument("--dir", type=str, default=None, metavar="DIR",
                        help="snapshot directory (default: "
                             "tests/diff/golden in the source checkout)")
    gold_p.add_argument("--trend-dir", type=str, default=None, metavar="DIR",
                        help="relaxed-tier trend snapshot directory "
                             "(default: tests/diff/golden_trends)")
    gold_p.add_argument("--skip-trends", action="store_true",
                        help="exact snapshots only; skip the relaxed-tier "
                             "trend matrix")

    scen_p = sub.add_parser(
        "scenarios",
        help="named scenario registry: list, show NAME, run NAME, "
             "verify (spec hashes vs the committed manifest)",
    )
    scen_p.add_argument("action", choices=["list", "show", "run", "verify"],
                        help="list: every registered scenario; show: one "
                             "spec with its hashes; run: execute through "
                             "the matrix engine; verify: compare spec "
                             "hashes against the manifest")
    scen_p.add_argument("name", nargs="?", metavar="NAME", default=None,
                        help="scenario name (required for show/run)")
    _add_common(scen_p)

    lint_p = sub.add_parser(
        "lint", help="run the repo-specific AST lint pass (REP001-REP013)"
    )
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories (default: the installed "
                             "repro package)")
    lint_p.add_argument("--statistics", action="store_true",
                        help="print per-rule finding and suppression "
                             "counts after the findings")

    flow_p = sub.add_parser(
        "flow",
        help="whole-program flow analyzer: fault-path closure "
             "fingerprints (REP009) and the pinned manifest",
    )
    flow_p.add_argument(
        "action", choices=["graph", "staleness", "pin"],
        help="graph: print the fault-path closure and call-graph "
             "stats; staleness: fail if the closure changed since the "
             "pinned manifest; pin: rewrite the manifest from the "
             "current tree",
    )

    sub.add_parser(
        "typecheck",
        help="strict typing gate (mypy if installed + AST annotation "
             "completeness)",
    )

    resume_p = sub.add_parser(
        "resume",
        help="resume an interrupted matrix run from its journal "
             "(no id: list the runs on disk)",
    )
    resume_p.add_argument("run_id", nargs="?", metavar="RUN_ID", default=None,
                          help="run id printed at interruption "
                               "(e.g. run-0123abcd4567)")
    _add_common(resume_p)

    serve_p = sub.add_parser(
        "serve",
        help="run the evaluation service: an asyncio HTTP/JSON server "
             "with admission control, request dedupe, deadlines, and "
             "graceful degradation",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8135,
                         help="bind port (default 8135; 0 = ephemeral)")
    serve_p.add_argument("--print-config", action="store_true",
                         help="dump every resolved REPRO_* resilience/"
                              "serving knob with its source, then exit")
    serve_p.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                         help="inject worker faults into every served "
                              "evaluation (same grammar as --chaos "
                              "elsewhere; e.g. 'seed=7,crash=0.3')")
    serve_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes per evaluation (same as "
                              "REPRO_SERVE_JOBS; clamped to >= 2)")
    serve_p.add_argument("--rate-limit", type=float, default=None,
                         metavar="RPS",
                         help="admission rate in requests/second "
                              "(same as REPRO_RATE_LIMIT; 0 disables)")
    serve_p.add_argument("--max-queue", type=int, default=None, metavar="N",
                         help="queued requests before 503 load shedding "
                              "(same as REPRO_MAX_QUEUE)")
    serve_p.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-request deadline "
                              "(same as REPRO_DEADLINE; 0 disables)")
    serve_p.add_argument("--drain-grace", type=float, default=None,
                         metavar="SECONDS",
                         help="grace for in-flight requests on SIGTERM "
                              "(same as REPRO_DRAIN_GRACE)")

    submit_p = sub.add_parser(
        "submit",
        help="submit an evaluation to a running server "
             "(exit 0 ok, 2 degraded result, 1 rejected/error)",
    )
    submit_p.add_argument("scenario", nargs="?", metavar="SCENARIO",
                          default=None,
                          help="named scenario (see 'scenarios list')")
    submit_p.add_argument("--spec-json", default=None, metavar="JSON",
                          help="inline MatrixSpec JSON instead of a name")
    submit_p.add_argument("--host", default="127.0.0.1")
    submit_p.add_argument("--port", type=int, default=8135)
    submit_p.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                          help="per-request worker fault injection")
    submit_p.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="request deadline (queue wait included)")
    submit_p.add_argument("--no-wait", action="store_true",
                          help="print the job id and return immediately "
                               "instead of watching to completion")

    watch_p = sub.add_parser(
        "watch", help="watch a submitted job until it reaches a "
                      "terminal state",
    )
    watch_p.add_argument("job_id", metavar="JOB_ID")
    watch_p.add_argument("--host", default="127.0.0.1")
    watch_p.add_argument("--port", type=int, default=8135)
    watch_p.add_argument("--timeout", type=float, default=600.0,
                         metavar="SECONDS",
                         help="give up waiting after this long "
                              "(default 600)")

    all_p = sub.add_parser("all", help="regenerate every table and figure")
    _add_common(all_p)

    return parser


def _apply_runtime_flags(args: argparse.Namespace) -> None:
    """Honour the global ``--jobs`` / ``--no-cache`` / ``--obs`` switches."""
    if args.command in ("serve", "submit", "watch"):
        # The service subcommands reuse flag names (--jobs, --chaos,
        # --timeout) with service-local semantics; they resolve their
        # own settings instead of mutating the process environment.
        return
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        os.environ[ENV_JOBS] = str(jobs)
    if getattr(args, "no_cache", False):
        sim_cache.configure(enabled=False)
    if getattr(args, "obs", False):
        obs_module.configure(enabled=True)
    if getattr(args, "sanitize", False):
        from repro import check as check_module

        check_module.configure(enabled=True)
        # A sanitized run must never be served from (or poison) the
        # result cache of unsanitized runs while being debugged.
        sim_cache.configure(enabled=False)
    if getattr(args, "chaos", None):
        from repro.resil import chaos as resil_chaos

        resil_chaos.ChaosSpec.parse(args.chaos)  # fail fast on bad specs
        os.environ[resil_chaos.ENV_CHAOS] = args.chaos
    timeout = getattr(args, "timeout", None)
    if timeout is not None:
        from repro.resil import supervisor as resil_supervisor

        os.environ[resil_supervisor.ENV_TIMEOUT] = str(timeout)
    retries = getattr(args, "retries", None)
    if retries is not None:
        from repro.resil import supervisor as resil_supervisor

        os.environ[resil_supervisor.ENV_RETRIES] = str(retries)
    fastpath = getattr(args, "fastpath", None)
    if fastpath is not None:
        from repro.sim.config import FASTPATH_ENV

        os.environ[FASTPATH_ENV] = str(fastpath)


def _common_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed, "scale": args.scale}
    apps = _apps_arg(args.apps)
    if apps is not None:
        kwargs["apps"] = apps
    return kwargs


def _event_trace(args: argparse.Namespace) -> int:
    """``trace APP [POLICY] [RATE]``: one observed run, JSONL events out."""
    from repro.obs import (
        JSONLEventTrace,
        Observation,
        read_events,
        summarize_events,
        validate_file,
    )

    app = args.app_pos.upper()
    policy = args.policy_pos
    rate = args.rate_pos
    out = args.out or f"{app}-{policy}-{int(rate * 100)}.events.jsonl"
    sink = JSONLEventTrace(out, validate=True)
    with Observation(trace=sink) as observation:
        result = run_application(
            app, policy, rate,
            seed=args.seed, scale=args.scale, obs=observation,
        )
    count = validate_file(out)
    summary = summarize_events(read_events(out))
    print(f"wrote {count} schema-valid events to {out}")
    print(f"workload         : {result.workload_name}")
    print(f"policy           : {result.policy_name}")
    print(f"faults           : {result.faults}")
    print(f"evictions        : {result.evictions}")
    print("events by type   :")
    for event_type, event_count in sorted(summary["by_type"].items()):
        print(f"  {event_type:16s} {event_count}")
    if summary["strategy_switches"]:
        print("strategy switches:")
        for fault_number, from_strategy, to_strategy in \
                summary["strategy_switches"]:
            print(f"  fault {fault_number}: "
                  f"{from_strategy} -> {to_strategy}")
    return 0


def _dump_stats(args: argparse.Namespace) -> int:
    """``stats [APP [POLICY] [RATE]]``: dump a metrics registry."""
    from repro.obs import Observation

    if args.app_pos is None:
        print(f"observability    : "
              f"{'enabled' if obs_module.enabled() else 'disabled'} "
              f"(REPRO_OBS / --obs)")
        registry = obs_module.MetricsRegistry()
        sim_cache.result_cache().stats.observe_into(registry)
        for line in registry.lines():
            print(line)
        return 0
    with Observation() as observation:
        run_application(
            args.app_pos.upper(), args.policy_pos, args.rate_pos,
            seed=args.seed, scale=args.scale, obs=observation,
        )
    for line in observation.registry.lines():
        print(line)
    return 0


def _check_journal(args: argparse.Namespace) -> int:
    """``check journal [RUN_ID]``: validate run-journal invariants."""
    from repro.resil import journal as resil_journal

    run_ids = [args.app_pos] if args.app_pos else resil_journal.list_runs()
    if not run_ids:
        print(f"no run journals under {resil_journal.journal_dir()}")
        return 0
    invalid = 0
    for run_id in run_ids:
        try:
            summary = resil_journal.load(run_id)
        except resil_journal.JournalError as error:
            print(f"{run_id}: INVALID — {error}")
            invalid += 1
            continue
        if summary is None:
            print(f"{run_id}: no journal on disk")
            invalid += 1
            continue
        state = ("ended" if summary.ended
                 else "interrupted" if summary.interrupted else "open")
        print(f"{run_id}: ok — {summary.done}/"
              f"{summary.total_jobs} completed, {len(summary.failed)} "
              f"failed, {summary.segments} segment(s), {state}")
    if invalid:
        print(f"{invalid} invalid journal(s)")
        return 1
    return 0


def _resume(args: argparse.Namespace) -> int:
    """``resume [RUN_ID]``: continue an interrupted matrix run.

    The journal's ``run_start`` record carries the matrix's full spec
    hash.  Resume rebuilds a :class:`~repro.scenarios.spec.MatrixSpec`
    from the recorded fields and *proves* it is the same experiment by
    recomputing the hash — a mismatch (custom GPU/HPE config the journal
    cannot carry, or a schema bump since the run) refuses instead of
    silently re-running something else.
    """
    from repro.experiments.runner import run_scenario
    from repro.resil import journal as resil_journal
    from repro.scenarios.spec import PAPER_FAMILY, MatrixSpec, ScenarioError

    if args.run_id is None:
        runs = resil_journal.list_runs()
        if not runs:
            print(f"no run journals under {resil_journal.journal_dir()}")
            return 0
        for run_id in runs:
            try:
                summary = resil_journal.load(run_id)
            except resil_journal.JournalError as error:
                print(f"{run_id}: invalid journal ({error})")
                continue
            assert summary is not None
            state = ("ended" if summary.ended
                     else "interrupted" if summary.interrupted else "open")
            print(f"{run_id}: {summary.done}/"
                  f"{summary.total_jobs} completed, {state}")
        return 0
    summary = resil_journal.load(args.run_id)
    if summary is None:
        print(f"no journal for {args.run_id!r} under "
              f"{resil_journal.journal_dir()}", file=sys.stderr)
        return 1
    spec = summary.spec
    recorded_hash = spec.get("spec_hash")
    if not recorded_hash:
        print("this journal predates spec-hash recording (schema v1) and "
              "its run id cannot be re-derived — re-run the original "
              "command; the result cache still serves its completed jobs",
              file=sys.stderr)
        return 1
    try:
        matrix_spec = MatrixSpec(
            policies=tuple(spec["policies"]),
            rates=tuple(spec["rates"]),
            apps=tuple(spec["apps"]),
            seed=spec["seed"],
            scale=spec["scale"],
            family=spec.get("family", PAPER_FAMILY),
            prefetch_degree=spec.get("prefetch", 0),
        )
    except (KeyError, ScenarioError) as error:
        print(f"journal spec cannot be reconstructed: {error!r}",
              file=sys.stderr)
        return 1
    if matrix_spec.spec_hash() != recorded_hash:
        print("recorded spec hash does not match the reconstructed matrix "
              "— the run used settings the journal cannot carry (custom "
              "GPU/HPE configuration) or predates a schema bump; re-run "
              "the original command; the result cache still serves its "
              "completed jobs", file=sys.stderr)
        return 1
    print(f"resuming {args.run_id}: {summary.done}/"
          f"{summary.total_jobs} job(s) already completed", file=sys.stderr)
    matrix = run_scenario(matrix_spec, progress=True)
    print(f"run {matrix.run_id}: {len(matrix.results)} cell(s) complete, "
          f"{len(matrix.failures)} failed")
    for line in matrix.failure_lines():
        print(f"  FAILED {line}")
    return 1 if matrix.degraded else 0


def _run_scenarios(args: argparse.Namespace) -> int:
    """``scenarios {list,show,run,verify} [NAME]``: the named registry."""
    from repro.experiments.runner import run_scenario
    from repro.scenarios import (
        ScenarioError,
        all_scenarios,
        get_scenario,
        verify_manifest,
    )

    if args.action == "list":
        entries = all_scenarios()
        width = max((len(entry.name) for entry in entries), default=4)
        for entry in entries:
            cells = len(entry.spec.cells())
            print(f"{entry.name:<{width}s}  {cells:>4d} cells  "
                  f"{entry.spec.run_id()}  {entry.description}")
        return 0

    if args.action == "verify":
        problems = verify_manifest()
        for problem in problems:
            print(f"  SCENARIO {problem}")
        if problems:
            print(f"scenarios: {len(problems)} manifest mismatch(es)")
            return 1
        print(f"scenarios: all {len(all_scenarios())} spec hashes match "
              "the manifest")
        return 0

    if args.name is None:
        print(f"scenarios {args.action}: NAME is required", file=sys.stderr)
        return 2
    try:
        entry = get_scenario(args.name)
    except ScenarioError as error:
        print(f"scenarios: {error}", file=sys.stderr)
        return 2

    if args.action == "show":
        print(f"name        : {entry.name}")
        print(f"description : {entry.description}")
        for field, value in entry.spec.describe().items():
            print(f"{field:12s}: {value}")
        return 0

    # run — the spec is the identity authority: the sweep flags that
    # would change it are rejected rather than silently ignored.
    overridden = [
        flag for flag, given in (
            ("--seed", args.seed != 7),
            ("--scale", not math.isclose(args.scale, 1.0)),
            ("--apps", args.apps is not None),
        ) if given
    ]
    if overridden:
        print(f"scenarios run: {', '.join(overridden)} would change the "
              "experiment identity; registered specs are immutable — "
              "use the matrix flags via figures/tables, or register a "
              "new scenario", file=sys.stderr)
        return 2
    start = time.time()
    matrix = run_scenario(entry.spec, progress=True)
    elapsed = time.time() - start
    print(f"run {matrix.run_id}: {len(matrix.results)} cell(s) complete, "
          f"{len(matrix.failures)} failed ({elapsed:.1f}s)")
    for line in matrix.failure_lines():
        print(f"  FAILED {line}")
    return 1 if matrix.degraded else 0


def _expected_tier(requested: int, policy: str, sanitize: bool) -> int:
    """The tier a diff cell should actually execute at.

    Mirrors the engine's eligibility fallback chain so ``diff`` can
    tell a *legitimate* fallback (offline policy, sanitized run) from a
    silent one (kernel eligibility regressed and the matrix quietly
    compared a tier against itself).
    """
    if requested <= 1:
        return requested
    if sanitize or policy == "ideal":
        return 1  # needs live per-event state / future trace positions
    return requested


def _run_diff(args: argparse.Namespace) -> int:
    """``diff``: the differential matrix over all simulator tiers."""
    from repro.check.diffrun import compare_levels, compare_relaxed
    from repro.check.difftraces import GENERATORS, build
    from repro.experiments.runner import POLICY_NAMES

    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    if not seeds:
        print("diff: --seeds is empty", file=sys.stderr)
        return 2
    policies = (
        [part.strip().lower() for part in args.policies.split(",")
         if part.strip()]
        if args.policies else list(POLICY_NAMES)
    )
    kinds = (
        [part.strip() for part in args.generators.split(",") if part.strip()]
        if args.generators else list(GENERATORS)
    )
    for kind in kinds:
        if kind not in GENERATORS:
            print(f"diff: unknown generator {kind!r} "
                  f"(known: {', '.join(GENERATORS)})", file=sys.stderr)
            return 2
    sanitize = bool(getattr(args, "sanitize", False))
    relaxed = bool(getattr(args, "relaxed", False))
    if relaxed and sanitize:
        print("diff: --relaxed needs the batch kernels; drop --sanitize",
              file=sys.stderr)
        return 2
    start = time.time()
    cells = 0
    failures: list[str] = []
    fallbacks: list[str] = []
    for seed in seeds:
        for kind in kinds:
            trace = build(kind, seed, args.length)
            bad = 0
            executed_counts: dict[str, int] = {}
            for policy in policies:
                for rate in (0.75, 0.5):
                    capacity = max(8, int(trace.footprint_pages * rate))
                    cell = f"seed {seed} {kind} {policy} @ {rate:.0%}"
                    report = compare_levels(
                        trace.pages, policy, capacity,
                        sanitize=sanitize, workload_name=trace.name,
                    )
                    cells += 1
                    # Per-cell executed-tier audit: a run that silently
                    # fell back compares a tier against itself and
                    # proves nothing — that must be loud, not exit 0.
                    for run in report.runs:
                        executed = run.executed_tier
                        if executed is None:
                            continue
                        key = f"{run.level}->{executed}"
                        executed_counts[key] = \
                            executed_counts.get(key, 0) + 1
                        expected = _expected_tier(
                            run.level, policy, sanitize
                        )
                        if executed != expected:
                            fallbacks.append(
                                f"{cell}: requested tier {run.level} "
                                f"executed {executed} "
                                f"(expected {expected})"
                            )
                    if not report.ok:
                        bad += 1
                        failures.extend(
                            f"{cell}: {line}"
                            for line in report.mismatches
                        )
                    if relaxed and policy != "ideal":
                        relaxed_report = compare_relaxed(
                            trace.pages, policy, capacity,
                            workload_name=trace.name,
                        )
                        cells += 1
                        if not relaxed_report.ok:
                            bad += 1
                            failures.extend(
                                f"{cell}: {line}"
                                for line in relaxed_report.mismatches
                            )
            tiers = ", ".join(
                f"{key}x{count}"
                for key, count in sorted(executed_counts.items())
            )
            status = "ok" if not bad else f"{bad} MISMATCHED cell(s)"
            print(f"seed {seed:>6d} {kind:<14s} "
                  f"{len(policies) * 2:>3d} cells: {status} "
                  f"[tiers {tiers}]")
    elapsed = time.time() - start
    for line in fallbacks:
        print(f"  FALLBACK {line}")
    for line in failures:
        print(f"  MISMATCH {line}")
    mode = "tolerance-gated + bit-identical" if relaxed else "bit-identical"
    verdict = mode if not (failures or fallbacks) else \
        f"{len(failures)} mismatch(es), {len(fallbacks)} silent fallback(s)"
    print(f"diff: {cells} cells in {elapsed:.1f}s: {verdict}")
    return 1 if failures or fallbacks else 0


def _run_golden(args: argparse.Namespace) -> int:
    """``golden [--update]``: key-metrics snapshot check/regeneration."""
    from pathlib import Path

    from repro.check import golden

    directory = Path(args.dir) if args.dir else None
    trend_dir = Path(args.trend_dir) if args.trend_dir else None
    trends = not args.skip_trends
    if args.update:
        for path in golden.write_golden(directory):
            print(f"wrote {path}")
        if trends:
            for path in golden.write_golden_trends(trend_dir):
                print(f"wrote {path}")
        return 0
    problems = golden.check_golden(directory)
    if trends:
        problems += golden.check_golden_trends(trend_dir)
    if problems:
        for problem in problems:
            print(f"  GOLDEN {problem}")
        print(f"golden: {len(problems)} mismatch(es) "
              "(intentional change? regenerate with: "
              "hpe-repro golden --update)")
        return 1
    print("golden: all snapshots match"
          + (" (exact + relaxed trends)" if trends else ""))
    return 0


def _run_flow(args: argparse.Namespace) -> int:
    """``flow {graph,staleness,pin}``: the REP009 closure gate."""
    from repro.check import flow

    analysis = flow.analyze()
    if args.action == "graph":
        by_module: dict[str, int] = {}
        for qualname in analysis.closure:
            module = analysis.program.functions[qualname].module
            by_module[module] = by_module.get(module, 0) + 1
        print(f"fault-path closure: {len(analysis.closure)} functions "
              f"in {len(by_module)} modules")
        for module in sorted(by_module):
            print(f"  {by_module[module]:4d}  {module}")
        unresolved = analysis.graph.unresolved.most_common(10)
        if unresolved:
            print("unresolved attribute calls (top 10):")
            for name, count in unresolved:
                print(f"  {count:4d}  .{name}()")
        return 0
    if args.action == "pin":
        manifest = flow.pin_manifest(analysis)
        print(f"pinned {len(manifest.functions)} fingerprints "
              f"(schema v{manifest.cache_schema_version}, digest "
              f"{manifest.closure_digest[:16]}…) to "
              f"{flow.default_manifest_path()}")
        return 0
    report = flow.check_staleness(analysis)
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def _run_check(args: argparse.Namespace) -> int:
    """``check {invariants,determinism,journal} APP [POLICY] [RATE]``."""
    from repro import check as check_module
    from repro.check import InvariantViolation

    if args.mode == "journal":
        return _check_journal(args)
    if args.app_pos is None:
        print("check: APP is required for invariants/determinism",
              file=sys.stderr)
        return 2
    app = args.app_pos.upper()
    policy = args.policy_pos
    rate = args.rate_pos
    if args.mode == "determinism":
        from repro.check.determinism import check_determinism

        report = check_determinism(
            app, policy, rate, seed=args.seed, scale=args.scale
        )
        print(report.render())
        return 0 if report.deterministic else 1

    check_module.configure(enabled=True, fast=args.fast)
    start = time.time()
    try:
        result = run_application(
            app, policy, rate,
            seed=args.seed, scale=args.scale, use_cache=False,
        )
    except InvariantViolation as violation:
        print(violation.render())
        print(f"{app} / {policy} @ {rate:.0%}: INVARIANT VIOLATION")
        return 1
    finally:
        check_module.configure(enabled=False, fast=False)
    elapsed = time.time() - start
    stats = result.extras.get("sanitizer")
    print(f"{app} / {policy} @ {rate:.0%}: all invariants hold "
          f"({elapsed:.2f}s)")
    if stats is not None:
        print(f"faults sanitized : {stats.faults_seen}"
              f"{' (fast mode cap hit)' if stats.capped else ''}")
        print(f"sweeps           : {stats.sweeps} "
              f"({stats.interval_sweeps} at interval boundaries)")
        print(f"invariant checks : {stats.invariants_checked}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.resil import EXIT_INTERRUPTED, ChaosSpecError, MatrixInterrupted

    try:
        _apply_runtime_flags(args)
    except ChaosSpecError as error:
        parser.error(str(error))
    try:
        return _dispatch(parser, args)
    except MatrixInterrupted as interrupted:
        # Clean shutdown already happened inside run_matrix (pool
        # terminated, journal flushed); tell the user how to pick up.
        print(f"\ninterrupted: {interrupted}", file=sys.stderr)
        print(f"resume with: hpe-repro resume {interrupted.run_id}",
              file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


def _run_serve(parser: argparse.ArgumentParser,
               args: argparse.Namespace) -> int:
    from repro.resil import ChaosSpecError
    from repro.resil.settings import resolve as resolve_resil_settings

    settings = resolve_resil_settings(
        serve_jobs=args.jobs,
        rate_limit=args.rate_limit,
        max_queue=args.max_queue,
        request_deadline=args.deadline,
        drain_grace=args.drain_grace,
    )
    if args.print_config:
        for line in settings.lines():
            print(line)
        return 0
    from repro.serve import EvaluationService, serve_forever

    try:
        service = EvaluationService(settings, chaos=args.chaos)
    except ChaosSpecError as error:
        parser.error(str(error))
    return serve_forever(service, host=args.host, port=args.port)


def _print_job_view(view: dict) -> int:
    """Render one job snapshot; the exit code mirrors its state."""
    status = view.get("status", "unknown")
    print(f"job     : {view.get('job_id')}")
    print(f"status  : {status}")
    print(f"run id  : {view.get('run_id')}")
    print(f"elapsed : {view.get('elapsed')}s")
    error = view.get("error")
    if error:
        print(f"error   : {error.get('error')}: {error.get('message')}")
        if error.get("resume"):
            print(f"resume  : {error['resume']}")
        return 1
    result = view.get("result")
    if result is not None:
        print(f"cells   : {result['cells_total']} "
              f"({result['cells_degraded']} degraded)")
        for cell in result["cells"]:
            label = f"{cell['app']}/{cell['policy']}@{cell['rate']}"
            if cell["status"] == "DEGRADED":
                failure = cell["failure"]
                print(f"  {label:24s} DEGRADED "
                      f"{failure['error_type']}: {failure['message']}")
            else:
                print(f"  {label:24s} ipc={cell['metrics']['ipc']:.4f} "
                      f"faults={cell['metrics']['faults']}")
        return 2 if result["degraded"] else 0
    return 0 if status in ("queued", "running", "done") else 1


def _run_submit(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServiceClient, ServiceUnreachable

    if bool(args.scenario) == bool(args.spec_json):
        parser.error("submit needs exactly one of SCENARIO or --spec-json")
    payload: dict = (
        {"scenario": args.scenario}
        if args.scenario
        else {"spec": json.loads(args.spec_json)}
    )
    if args.chaos:
        payload["chaos"] = args.chaos
    if args.deadline is not None:
        payload["deadline"] = args.deadline
    client = ServiceClient(args.host, args.port)
    try:
        response = client.submit(payload)
        if response.status != 202:
            print(f"rejected ({response.status}): "
                  f"{response.body.get('error')}: "
                  f"{response.body.get('message')}", file=sys.stderr)
            if response.retry_after is not None:
                print(f"retry after {response.retry_after:.0f}s",
                      file=sys.stderr)
            return 1
        job_id = response.body["job_id"]
        if response.body.get("deduped"):
            print(f"deduplicated onto in-flight job {job_id}")
        else:
            print(f"submitted as {job_id}")
        if args.no_wait:
            print(f"watch with: hpe-repro watch {job_id} "
                  f"--host {args.host} --port {args.port}")
            return 0
        final = client.watch(job_id)
        if not final.ok:
            print(f"lost the job ({final.status}): "
                  f"{final.body.get('message')}", file=sys.stderr)
            return 1
        return _print_job_view(final.body)
    except ServiceUnreachable as error:
        print(str(error), file=sys.stderr)
        print("is 'hpe-repro serve' running?", file=sys.stderr)
        return 1


def _run_watch(args: argparse.Namespace) -> int:
    from repro.serve import ServiceClient, ServiceUnreachable

    client = ServiceClient(args.host, args.port)
    try:
        final = client.watch(args.job_id, timeout=args.timeout)
    except ServiceUnreachable as error:
        print(str(error), file=sys.stderr)
        return 1
    if not final.ok:
        print(f"{final.status}: {final.body.get('message')}",
              file=sys.stderr)
        return 1
    return _print_job_view(final.body)


def _dispatch(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> int:
    if args.command == "serve":
        return _run_serve(parser, args)

    if args.command == "submit":
        return _run_submit(parser, args)

    if args.command == "watch":
        return _run_watch(args)

    if args.command == "resume":
        return _resume(args)

    if args.command == "scenarios":
        return _run_scenarios(args)

    if args.command == "cache":
        if args.action == "clear":
            info = sim_cache.describe()
            sim_cache.clear_all()
            clear_trace_cache()
            print(f"cleared {info['results']} cached results and "
                  f"{info['traces']} cached traces "
                  f"under {info['directory']}")
            return 0
        info = sim_cache.describe()
        print(f"directory     : {info['directory']}")
        print(f"enabled       : {info['enabled']}")
        print(f"schema        : v{info['schema_version']}")
        print(f"cached results: {info['results']} "
              f"({info['result_bytes'] / 1024:.1f} KiB)")
        print(f"cached traces : {info['traces']} "
              f"({info['trace_bytes'] / 1024:.1f} KiB)")
        return 0

    if args.command == "check":
        return _run_check(args)

    if args.command == "diff":
        return _run_diff(args)

    if args.command == "golden":
        return _run_golden(args)

    if args.command == "lint":
        from pathlib import Path

        from repro.check.lint import run_lint_report

        report = run_lint_report([Path(p) for p in args.paths] or None)
        for finding in report.findings:
            print(finding.render())
        if args.statistics:
            for line in report.render_statistics():
                print(line)
        if report.findings:
            print(f"{len(report.findings)} problem(s) found")
            return 1
        if not args.statistics:
            print("repro lint: clean")
        return 0

    if args.command == "flow":
        return _run_flow(args)

    if args.command == "typecheck":
        from repro.check.typegate import run_typegate

        return run_typegate()

    if args.command == "list":
        print(f"{'abbr':5s} {'type':4s} {'suite':10s} application")
        for spec in all_applications():
            print(f"{spec.abbr:5s} {spec.pattern_type.roman:4s} "
                  f"{spec.suite:10s} {spec.name}")
        return 0

    if args.command == "run":
        start = time.time()
        result = run_application(
            args.app, args.policy, args.rate,
            seed=args.seed, scale=args.scale,
        )
        elapsed = time.time() - start
        print(f"workload         : {result.workload_name}")
        print(f"policy           : {result.policy_name}")
        print(f"oversubscription : {result.oversubscription_rate:.0%}")
        print(f"footprint        : {result.footprint_pages} pages")
        print(f"capacity         : {result.capacity_pages} pages")
        print(f"trace length     : {result.trace_length} episodes")
        print(f"faults           : {result.faults} "
              f"({result.driver.compulsory_faults} compulsory)")
        print(f"evictions        : {result.evictions}")
        print(f"cycles           : {result.cycles}")
        print(f"IPC              : {result.ipc:.4f}")
        timeseries = result.extras.get("timeseries")
        if timeseries is not None:
            print(f"intervals obs.   : {len(timeseries)} snapshots")
        print(f"(simulated in {elapsed:.2f}s)")
        return 0

    if args.command == "figure":
        print(FIGURES[args.id](**_common_kwargs(args)).render())
        return 0

    if args.command == "table":
        kwargs = _common_kwargs(args)
        if args.id == "1":
            kwargs = {}
        print(TABLES[args.id](**kwargs).render())
        return 0

    if args.command == "sensitivity":
        print(SENSITIVITIES[args.id](**_common_kwargs(args)).render())
        return 0

    if args.command == "overhead":
        kwargs = _common_kwargs(args)
        if args.id in ("classification", "search"):
            kwargs = {}
        print(OVERHEADS[args.id](**kwargs).render())
        return 0

    if args.command == "ablation":
        kwargs = _common_kwargs(args)
        kwargs["rate"] = args.rate
        if args.variants:
            kwargs["variants"] = [v.strip() for v in args.variants.split(",")]
        print(ablation(**kwargs).render())
        return 0

    if args.command == "trace":
        if args.app_pos is not None:
            return _event_trace(args)
        if not args.app or not args.out:
            parser.error(
                "trace needs either positional APP [POLICY] [RATE] "
                "(event-trace mode) or --app and --out (page-trace dump)"
            )
        trace = get_application(args.app).build(seed=args.seed,
                                                scale=args.scale)
        save_trace(trace, args.out)
        print(f"wrote {len(trace)} episodes ({trace.footprint_pages} pages) "
              f"to {args.out}")
        return 0

    if args.command == "stats":
        return _dump_stats(args)

    if args.command == "analyze":
        from repro.analysis import infer_pattern, lru_miss_curve, profile
        from repro.analysis.reuse import belady_miss_curve
        if args.app:
            trace = get_application(args.app).build(seed=args.seed,
                                                    scale=args.scale)
        else:
            trace = load_trace(args.file)
        reuse = profile(trace.pages)
        guessed = infer_pattern(trace.pages)
        print(f"trace            : {trace.name}")
        print(f"episodes         : {reuse.trace_length}")
        print(f"footprint        : {reuse.footprint} pages")
        print(f"reuse fraction   : {reuse.reuse_fraction:.1%}")
        print(f"mean reuse dist. : {reuse.mean_reuse_distance:.1f} pages")
        print(f"declared pattern : {trace.pattern_type.roman}")
        print(f"inferred pattern : {guessed.roman}")
        histogram = reuse.distance_histogram([64, 512, 2048])
        print("reuse-distance histogram (warm refs):")
        for bucket, count in histogram.items():
            print(f"  {bucket:>8s}: {count}")
        if args.capacities:
            capacities = [int(c) for c in args.capacities.split(",")]
            lru = lru_miss_curve(trace.pages, capacities)
            belady = belady_miss_curve(trace.pages, capacities)
            print("miss curves (capacity: LRU faults / MIN faults):")
            for capacity in capacities:
                print(f"  {capacity:>8d}: {lru[capacity]} / "
                      f"{belady[capacity]}")
        return 0

    if args.command == "all":
        kwargs = _common_kwargs(args)
        for table_id in sorted(TABLES):
            table_kwargs = {} if table_id == "1" else kwargs
            print(TABLES[table_id](**table_kwargs).render())
            print()
        for figure_id in sorted(FIGURES, key=int):
            print(FIGURES[figure_id](**kwargs).render())
            print()
        for sens_id in sorted(SENSITIVITIES):
            print(SENSITIVITIES[sens_id](**kwargs).render())
            print()
        for ovh_id in sorted(OVERHEADS):
            ovh_kwargs = {} if ovh_id in ("classification", "search") else kwargs
            print(OVERHEADS[ovh_id](**ovh_kwargs).render())
            print()
        return 0

    return 1


if __name__ == "__main__":
    sys.exit(main())
