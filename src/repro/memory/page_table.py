"""Single-level GPU page table.

The paper simplifies simulation with "a single-level page table and a fixed
page walk latency (eight cycles)".  We mirror that: the table maps virtual
page numbers to physical frames with a valid bit, and the walker charges a
fixed latency per walk (see :mod:`repro.tlb.walker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class PageTableEntry:
    """A PTE: frame number plus bookkeeping bits."""

    frame: int
    valid: bool = True
    #: Global fault sequence number when the page was (last) migrated in.
    faulted_at: int = 0
    #: Number of page-walk lookups that hit this PTE since migration.
    walk_hits: int = 0


class PageTable:
    """Virtual-page → PTE mapping with valid-bit semantics.

    Invalidation keeps the entry around (marked invalid) so re-migration can
    observe prior history; :meth:`lookup` only returns valid entries.
    """

    def __init__(self) -> None:
        self._entries: dict[int, PageTableEntry] = {}

    def lookup(self, page: int) -> Optional[PageTableEntry]:
        """Return the valid PTE for ``page`` or ``None`` (page fault)."""
        entry = self._entries.get(page)
        if entry is not None and entry.valid:
            return entry
        return None

    def install(self, page: int, frame: int, fault_number: int = 0) -> PageTableEntry:
        """(Re)install a valid mapping after a migration."""
        entry = PageTableEntry(frame=frame, faulted_at=fault_number)
        self._entries[page] = entry
        return entry

    def invalidate(self, page: int) -> None:
        """Mark ``page``'s PTE invalid (the page was evicted to the host)."""
        entry = self._entries.get(page)
        if entry is None or not entry.valid:
            raise KeyError(f"page {page:#x} has no valid mapping")
        entry.valid = False

    def is_mapped(self, page: int) -> bool:
        """Return ``True`` when ``page`` has a valid mapping."""
        entry = self._entries.get(page)
        return entry is not None and entry.valid

    def valid_pages(self) -> list[int]:
        """Return the list of pages with valid mappings."""
        return [page for page, entry in self._entries.items() if entry.valid]

    def __len__(self) -> int:
        """Number of valid mappings."""
        return sum(1 for entry in self._entries.values() if entry.valid)

    def __contains__(self, page: int) -> bool:
        return self.is_mapped(page)
