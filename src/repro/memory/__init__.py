"""Memory substrate: address math, physical frames, and the page table."""

from repro.memory.addressing import (
    DEFAULT_PAGE_SET_SIZE,
    PAGE_SIZE_BYTES,
    AddressRegion,
    PageSetGeometry,
    is_power_of_two,
    page_of_address,
    pages_for_bytes,
)
from repro.memory.frames import CapacityError, FramePool
from repro.memory.page_table import PageTable, PageTableEntry

__all__ = [
    "AddressRegion",
    "CapacityError",
    "DEFAULT_PAGE_SET_SIZE",
    "FramePool",
    "PAGE_SIZE_BYTES",
    "PageSetGeometry",
    "PageTable",
    "PageTableEntry",
    "is_power_of_two",
    "page_of_address",
    "pages_for_bytes",
]
