"""Virtual-address arithmetic shared by the whole simulator.

The paper works at three granularities:

* **page** — a 4 KB OS page, the unit of migration and eviction;
* **page set** — a group of ``page_set_size`` virtually-contiguous pages
  (16 by default, like a Pascal "chunk"), the unit HPE's chain manages;
* **offset** — a page's index inside its page set.

Throughout the library a *page number* is the virtual address right-shifted
by the page-size bits, i.e. consecutive integers denote consecutive 4 KB
pages.  A *page-set tag* is the page number right-shifted by
``log2(page_set_size)`` bits, exactly as Section IV-C of the paper computes
it ("the tag is calculated by shifting the page address right by 4 bits").
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default OS page size in bytes (Section III: "We choose 4-KB OS pages").
PAGE_SIZE_BYTES = 4096

#: Default number of pages per page set (Section V-A sensitivity study).
DEFAULT_PAGE_SET_SIZE = 16


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class PageSetGeometry:
    """Immutable helper mapping pages to page sets and offsets.

    Parameters
    ----------
    page_set_size:
        Number of consecutive pages per page set.  Must be a power of two
        so tags can be computed with shifts, mirroring the paper's
        "simplifying calculation" assumption.
    """

    page_set_size: int = DEFAULT_PAGE_SET_SIZE

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_set_size):
            raise ValueError(
                f"page_set_size must be a power of two, got {self.page_set_size}"
            )
        # split()/tag_of() run once per fault and per walk hit; caching
        # the derived constants keeps them at two integer ops per call
        # (a property call per access shows up in simulation profiles).
        object.__setattr__(self, "shift", self.page_set_size.bit_length() - 1)
        object.__setattr__(self, "offset_mask", self.page_set_size - 1)

    def tag_of(self, page: int) -> int:
        """Return the page-set tag that ``page`` belongs to."""
        return page >> self.shift

    def offset_of(self, page: int) -> int:
        """Return ``page``'s index inside its page set."""
        return page & self.offset_mask

    def split(self, page: int) -> tuple[int, int]:
        """Return ``(tag, offset)`` for ``page`` in one call."""
        return page >> self.shift, page & self.offset_mask

    def first_page_of(self, tag: int) -> int:
        """Return the lowest page number contained in page set ``tag``."""
        return tag << self.shift

    def pages_of(self, tag: int) -> range:
        """Return the range of page numbers covered by page set ``tag``."""
        first = tag << self.shift
        return range(first, first + self.page_set_size)


def page_of_address(address: int, page_size: int = PAGE_SIZE_BYTES) -> int:
    """Convert a byte address into a page number."""
    if address < 0:
        raise ValueError(f"address must be non-negative, got {address}")
    if not is_power_of_two(page_size):
        raise ValueError(f"page_size must be a power of two, got {page_size}")
    return address >> (page_size.bit_length() - 1)


def pages_for_bytes(num_bytes: int, page_size: int = PAGE_SIZE_BYTES) -> int:
    """Return how many pages are needed to hold ``num_bytes``."""
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    return -(-num_bytes // page_size)


@dataclass(frozen=True)
class AddressRegion:
    """A half-open range of page numbers ``[start, stop)``.

    Used by workload generators to carve an application footprint into the
    address regions of the paper's type VI ("region moving") pattern.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid region [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, page: int) -> bool:
        return self.start <= page < self.stop

    def pages(self) -> range:
        """Return the range of page numbers in the region."""
        return range(self.start, self.stop)

    def split(self, parts: int) -> list["AddressRegion"]:
        """Split the region into ``parts`` near-equal contiguous regions."""
        if parts <= 0:
            raise ValueError(f"parts must be positive, got {parts}")
        size = len(self)
        bounds = [self.start + (size * i) // parts for i in range(parts + 1)]
        return [
            AddressRegion(bounds[i], bounds[i + 1])
            for i in range(parts)
            if bounds[i + 1] > bounds[i]
        ]
