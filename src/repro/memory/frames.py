"""Physical GPU frame pool.

Models the device memory that demand paging fills: a fixed number of 4 KB
frames, a free list, and the virtual-page → frame residency map.  The pool
is deliberately policy-agnostic — eviction candidates are chosen by an
:class:`repro.policies.base.EvictionPolicy`; the pool only tracks which
virtual pages are resident and enforces capacity.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.soa import Bitmap


class CapacityError(RuntimeError):
    """Raised when a page is mapped into an already-full frame pool."""


class FramePool:
    """Fixed-capacity pool of physical frames with a residency map.

    Parameters
    ----------
    capacity:
        Number of physical frames (pages) the GPU memory can hold.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._frame_of_page: dict[int, int] = {}
        self._page_of_frame: dict[int, int] = {}
        #: Flat residency view (one bool per page) kept in lockstep with
        #: ``_frame_of_page`` — by :meth:`map_page`/:meth:`unmap_page`
        #: here and by the batch kernels' inlined fault paths.  Vector
        #: consumers index it directly; the invariant sanitizer asserts
        #: it always mirrors the dict.
        self.residency = Bitmap()

    @property
    def capacity(self) -> int:
        """Total number of frames."""
        return self._capacity

    @property
    def used(self) -> int:
        """Number of frames currently holding a page."""
        return len(self._frame_of_page)

    @property
    def free(self) -> int:
        """Number of unoccupied frames."""
        return self._capacity - len(self._frame_of_page)

    def is_full(self) -> bool:
        """Return ``True`` when no free frame remains."""
        return not self._free

    def is_resident(self, page: int) -> bool:
        """Return ``True`` when virtual ``page`` occupies a frame."""
        return page in self._frame_of_page

    def frame_of(self, page: int) -> Optional[int]:
        """Return the frame holding ``page``, or ``None`` if not resident."""
        return self._frame_of_page.get(page)

    def map_page(self, page: int) -> int:
        """Place ``page`` into a free frame and return the frame number.

        Raises
        ------
        CapacityError
            If the pool is full; callers must evict first.
        ValueError
            If ``page`` is already resident.
        """
        if page in self._frame_of_page:
            raise ValueError(f"page {page:#x} is already resident")
        if not self._free:
            raise CapacityError("frame pool is full; evict a page first")
        frame = self._free.pop()
        self._frame_of_page[page] = frame
        self._page_of_frame[frame] = page
        self.residency.add(page)
        return frame

    def unmap_page(self, page: int) -> int:
        """Evict ``page``, free its frame, and return the frame number."""
        try:
            frame = self._frame_of_page.pop(page)
        except KeyError:
            raise KeyError(f"page {page:#x} is not resident") from None
        del self._page_of_frame[frame]
        self._free.append(frame)
        self.residency.discard(page)
        return frame

    def resident_pages(self) -> Iterator[int]:
        """Iterate over the virtual pages currently resident."""
        return iter(self._frame_of_page)

    def __len__(self) -> int:
        return len(self._frame_of_page)

    def __contains__(self, page: int) -> bool:
        return page in self._frame_of_page
