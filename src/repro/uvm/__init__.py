"""Unified-memory substrate: the GPU driver fault path and PCIe model."""

from repro.uvm.driver import DriverStats, FaultOutcome, UVMDriver
from repro.uvm.pcie import PCIeLink

__all__ = ["DriverStats", "FaultOutcome", "PCIeLink", "UVMDriver"]
