"""CPU–GPU interconnect cost model.

Table I: a 16 GB/s PCIe link with a 20 µs page-fault service time.  Page
fault handling "requires several PCIe round trips and interaction with the
host CPU"; the paper (like Zheng et al. [10]) folds all of that into a
fixed 20 µs service latency, to which we add the pure bandwidth cost of
the bytes actually moved (evicted page, migrated page, HIR payload).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PCIeLink:
    """Fixed-latency, fixed-bandwidth interconnect model."""

    bandwidth_gbs: float = 16.0
    fault_service_us: float = 20.0
    clock_ghz: float = 1.4

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth_gbs must be positive")
        if self.fault_service_us < 0:
            raise ValueError("fault_service_us must be non-negative")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")

    @property
    def fault_service_cycles(self) -> int:
        """The 20 µs fault penalty expressed in GPU core cycles."""
        return round(self.fault_service_us * 1000.0 * self.clock_ghz)

    def transfer_cycles(self, num_bytes: int) -> int:
        """GPU cycles to move ``num_bytes`` across the link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        seconds = num_bytes / (self.bandwidth_gbs * 1e9)
        return round(seconds * self.clock_ghz * 1e9)

    def transfer_us(self, num_bytes: int) -> float:
        """Microseconds to move ``num_bytes`` across the link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / (self.bandwidth_gbs * 1e9) * 1e6
