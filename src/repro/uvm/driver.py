"""The GPU driver's demand-paging fault handler (Section II).

GPUs cannot run OS service routines, so page faults are handled by a
software runtime on the host CPU: the faulting SM's translation stalls, a
request crosses PCIe, the host resolves it, and — when GPU memory is full
— the driver first selects an eviction candidate, pages it out, then
migrates the faulted page in.  This class reproduces that control flow
against a pluggable :class:`~repro.policies.base.EvictionPolicy`.

The replayable far-fault mechanism [Zheng et al., HPCA 2016] means only
the faulting *warp* blocks; the timing engine models that — the driver
here is purely functional (what moved where), returning byte counts for
the engine to convert into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.soa import Bitmap
from repro.memory.addressing import PAGE_SIZE_BYTES
from repro.memory.frames import FramePool
from repro.memory.page_table import PageTable
from repro.policies.base import EvictionPolicy
from repro.tlb.hierarchy import TLBHierarchy

if TYPE_CHECKING:
    from repro.check.invariants import InvariantChecker
    from repro.obs import Observation
    from repro.obs.registry import MetricsRegistry


@dataclass
class DriverStats:
    """Fault/eviction accounting for one run."""

    faults: int = 0
    compulsory_faults: int = 0
    capacity_faults: int = 0
    evictions: int = 0
    bytes_migrated_in: int = 0
    bytes_evicted_out: int = 0
    #: Pages migrated speculatively by fault-around prefetching.
    prefetches: int = 0

    @property
    def refaults(self) -> int:
        """Faults on pages that were previously resident (thrashing)."""
        return self.capacity_faults

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Fold the whole-run tallies into a ``MetricsRegistry``."""
        registry.inc("driver.faults", self.faults)
        registry.inc("driver.compulsory_faults", self.compulsory_faults)
        registry.inc("driver.capacity_faults", self.capacity_faults)
        registry.inc("driver.evictions", self.evictions)
        registry.inc("driver.bytes_migrated_in", self.bytes_migrated_in)
        registry.inc("driver.bytes_evicted_out", self.bytes_evicted_out)
        registry.inc("driver.prefetches", self.prefetches)


@dataclass
class FaultOutcome:
    """What one fault handling did."""

    page: int
    frame: int
    evicted_page: Optional[int]
    #: Bytes moved over PCIe for this fault (page in + page out).
    bytes_transferred: int


class UVMDriver:
    """Host-side fault handler orchestrating eviction and migration."""

    def __init__(
        self,
        frame_pool: FramePool,
        page_table: PageTable,
        policy: EvictionPolicy,
        tlb_hierarchy: Optional[TLBHierarchy] = None,
        page_size_bytes: int = PAGE_SIZE_BYTES,
        prefetch_degree: int = 0,
        obs: Optional["Observation"] = None,
    ) -> None:
        if prefetch_degree < 0:
            raise ValueError("prefetch_degree must be non-negative")
        self.frame_pool = frame_pool
        self.page_table = page_table
        self.policy = policy
        self.tlb_hierarchy = tlb_hierarchy
        self.page_size_bytes = page_size_bytes
        #: Fault-around prefetching: on a fault for page *p*, also migrate
        #: the next ``prefetch_degree`` non-resident pages after *p* (real
        #: UVM runtimes migrate whole 64 KB chunks around the fault).
        self.prefetch_degree = prefetch_degree
        #: Optional :class:`repro.obs.Observation`; ``None`` (the default)
        #: keeps the fault path observation-free.
        self.obs = obs
        #: Optional :class:`repro.check.InvariantChecker` installed by the
        #: engine when sanitizing (``REPRO_SANITIZE=1``); ``None`` keeps
        #: the fault path at one pointer check.
        self.checker: Optional["InvariantChecker"] = None
        self.stats = DriverStats()
        #: First-touch set — a flat :class:`~repro.core.soa.Bitmap`
        #: (one byte per page) instead of a hash set since the SoA
        #: refactor; behaviour is set-identical.
        self._ever_touched: Bitmap = Bitmap()

    def fastpath_state(self) -> tuple[Bitmap, int]:
        """Internals for the batch kernels (:mod:`repro.sim.fastpath2`,
        :mod:`repro.sim.fastpath3`).

        Returns ``(ever_touched, page_size_bytes)``.  The caller may
        replay faults itself — with exactly the :meth:`service_fault`
        update rules for an obs-free, checker-free, prefetch-free driver
        — provided it folds the fault/eviction/byte counters back into
        :attr:`stats` afterwards and keeps ``ever_touched`` current.
        """
        return self._ever_touched, self.page_size_bytes

    def _evict_one(self) -> int:
        victim = self.policy.select_victim()
        self.page_table.invalidate(victim)
        self.frame_pool.unmap_page(victim)
        if self.tlb_hierarchy is not None:
            self.tlb_hierarchy.shootdown(victim)
        self.stats.evictions += 1
        self.stats.bytes_evicted_out += self.page_size_bytes
        if self.obs is not None:
            self.obs.emit(
                "eviction", page=victim, fault_number=self.stats.faults
            )
        return victim

    def _migrate_in(self, page: int) -> tuple[int, Optional[int]]:
        """Map ``page`` in (evicting first if needed); return (frame, victim)."""
        evicted = self._evict_one() if self.frame_pool.is_full() else None
        frame = self.frame_pool.map_page(page)
        self.page_table.install(page, frame, fault_number=self.stats.faults)
        self.stats.bytes_migrated_in += self.page_size_bytes
        self.policy.on_page_in(page, self.stats.faults)
        return frame, evicted

    def service_fault(self, page: int) -> tuple[int, Optional[int], int]:
        """Service a page fault; return ``(frame, evicted_page, bytes)``.

        The allocation-free core of :meth:`handle_fault` — the timing
        engine's hot path calls this directly so no :class:`FaultOutcome`
        is built per fault.  With ``prefetch_degree > 0`` the next
        sequential non-resident pages ride along on the same service.
        """
        stats = self.stats
        page_size = self.page_size_bytes
        policy = self.policy
        frame_pool = self.frame_pool
        page_table = self.page_table
        stats.faults += 1
        if page in self._ever_touched:
            stats.capacity_faults += 1
            compulsory = False
        else:
            self._ever_touched.add(page)
            stats.compulsory_faults += 1
            compulsory = True

        # Fault-around neighbours migrate BEFORE the faulting page.  A
        # prefetch eviction is free to pick any resident page — were the
        # demand page already mapped, an MRU-leaning policy (HPE's MRU-C)
        # could evict it mid-service, leaving the returned frame dangling
        # and the engine's TLB refill pointing at a non-resident page.
        bytes_moved = 0
        for ahead in range(1, self.prefetch_degree + 1):
            neighbour = page + ahead
            if frame_pool.is_resident(neighbour):
                continue
            _, prefetch_victim = self._migrate_in(neighbour)
            self._ever_touched.add(neighbour)
            stats.prefetches += 1
            bytes_moved += page_size
            if prefetch_victim is not None:
                bytes_moved += page_size

        policy.on_fault_pending(page)
        # Inlined _migrate_in/_evict_one: one fault means up to four
        # method calls through here, and this path dominates every
        # oversubscribed run.
        evicted = None
        if frame_pool.is_full():
            evicted = policy.select_victim()
            page_table.invalidate(evicted)
            frame_pool.unmap_page(evicted)
            if self.tlb_hierarchy is not None:
                self.tlb_hierarchy.shootdown(evicted)
            stats.evictions += 1
            stats.bytes_evicted_out += page_size
        frame = frame_pool.map_page(page)
        page_table.install(page, frame, fault_number=stats.faults)
        stats.bytes_migrated_in += page_size
        policy.on_page_in(page, stats.faults)
        bytes_moved += page_size
        if evicted is not None:
            bytes_moved += page_size  # the eviction writeback

        obs = self.obs
        if obs is not None:
            obs.emit(
                "fault",
                page=page,
                fault_number=stats.faults,
                kind="compulsory" if compulsory else "capacity",
            )
            if evicted is not None:
                obs.emit(
                    "eviction", page=evicted, fault_number=stats.faults
                )

        checker = self.checker
        if checker is not None:
            checker.after_fault(page)

        return frame, evicted, bytes_moved

    def handle_fault(self, page: int) -> FaultOutcome:
        """Like :meth:`service_fault`, wrapped in a :class:`FaultOutcome`."""
        frame, evicted, bytes_moved = self.service_fault(page)
        return FaultOutcome(
            page=page,
            frame=frame,
            evicted_page=evicted,
            bytes_transferred=bytes_moved,
        )
