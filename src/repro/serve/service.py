"""The evaluation service core: admission → dedupe → dispatch → degrade.

:class:`EvaluationService` is the transport-free heart of ``hpe-repro
serve``.  It is a plain thread-safe object — the asyncio HTTP layer
(:mod:`repro.serve.http`) calls it from executor threads, and tests
call it directly without opening a socket.

A submission passes through four stages, in order:

1. **Admission** — draining servers refuse outright (503); malformed
   or unknown-field payloads are rejected with a structured 400; specs
   whose circuit breaker is open (a *poison request* that has crashed
   its workers repeatedly) are quarantined with 503 + ``Retry-After``;
   then queue-depth and token-bucket checks shed load with 503/429 +
   ``Retry-After``.  Every rejection is an explicit JSON body — no
   request is ever dropped without a structured answer.
2. **Dedupe (single-flight)** — a submission identical to one already
   queued or running (same spec hash, same chaos injection) attaches
   to the in-flight job instead of evaluating again: N identical
   concurrent submissions compute exactly once.  Dedupe runs *before*
   rate limiting, so duplicates are free.
3. **Dispatch** — cache misses evaluate through
   :func:`repro.experiments.runner.run_scenario` on the supervised
   worker pool (``serve_jobs`` is clamped to >= 2 so the
   timeout-enforced pool path is always taken); the content-addressed
   result cache underneath serves repeat cells without simulation.
4. **Degrade** — a crashed or timed-out worker never kills the
   request: the affected cells come back as explicit DEGRADED entries
   while healthy cells carry results.  Crash/timeout degradation feeds
   the circuit breaker; clean completions reset it.

Deadlines: a request's deadline covers its whole life — queue wait
included.  It is checked when the evaluation would start (an expired
queued job terminates as ``deadline_exceeded`` without running) and
each cell is separately bounded by ``worker_timeout`` while running.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.obs import MetricsRegistry
from repro.resil import MatrixInterrupted
from repro.resil.chaos import ChaosSpec, ChaosSpecError
from repro.resil.settings import ResilSettings
from repro.resil.settings import resolve as resolve_settings
from repro.resil.supervisor import JobFailure
from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.spec import MatrixSpec, ScenarioError, ScenarioSpec
from repro.serve.ratelimit import CircuitBreaker, Clock, TokenBucket

#: Failure types that indicate infrastructure (not simulation) trouble —
#: these feed the circuit breaker; anything else is an honest result.
CRASH_FAILURE_TYPES = frozenset({
    "WorkerCrash", "JobTimeout", "ChaosCrashError", "ChaosHangError",
})

#: ``Retry-After`` quoted on queue-depth sheds (no better estimate than
#: "one typical short evaluation" without profiling the queue).
SHED_RETRY_AFTER_S = 5.0

#: Terminal jobs kept for ``GET /v1/jobs/<id>`` after completion.
MAX_COMPLETED_JOBS = 256

#: Job states.  ``queued`` and ``running`` are live; the rest terminal.
LIVE_STATES = ("queued", "running")
TERMINAL_STATES = (
    "done", "error", "interrupted", "deadline_exceeded", "cancelled",
)


@dataclass(frozen=True)
class Rejection(Exception):
    """An admission refusal — always carried to the client as JSON."""

    status: int
    error: str
    message: str
    retry_after: Optional[float] = None

    def body(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "error": self.error,
            "message": self.message,
        }
        if self.retry_after is not None:
            payload["retry_after"] = round(self.retry_after, 3)
        return payload


@dataclass
class Job:
    """One admitted evaluation request and its lifecycle."""

    job_id: str
    spec: MatrixSpec
    spec_hash: str
    chaos: str
    deadline_at: Optional[float]
    submitted_at: float
    status: str = "queued"
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Submissions that attached to this job via single-flight dedupe.
    dedupe_hits: int = 0
    result: Optional[dict[str, object]] = None
    error: Optional[dict[str, object]] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES


def summarize_matrix(matrix: Any) -> dict[str, object]:
    """JSON-able summary of a :class:`ResultMatrix` with DEGRADED cells."""
    cells: list[dict[str, object]] = []
    for key in matrix._order:
        cell: dict[str, object] = {
            "app": key.app,
            "policy": key.policy,
            "rate": key.rate,
        }
        failure = matrix.failures.get(key)
        if failure is not None:
            cell["status"] = "DEGRADED"
            cell["failure"] = {
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
                "elapsed": round(failure.elapsed, 3),
                "stderr_tail": failure.stderr_tail,
            }
        else:
            result = matrix.results[key]
            cell["status"] = "ok"
            cell["metrics"] = {
                "ipc": result.ipc,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "faults": result.faults,
                "evictions": result.evictions,
                "capacity_pages": result.capacity_pages,
                "footprint_pages": result.footprint_pages,
            }
        cells.append(cell)
    degraded = [c for c in cells if c["status"] == "DEGRADED"]
    return {
        "run_id": matrix.run_id,
        "degraded": bool(degraded),
        "cells_total": len(cells),
        "cells_degraded": len(degraded),
        "cells": cells,
    }


def _crash_degraded(matrix: Any) -> bool:
    """Did any cell degrade for an infrastructure reason (crash/hang)?"""
    return any(
        failure.error_type in CRASH_FAILURE_TYPES
        for failure in matrix.failures.values()
    )


class EvaluationService:
    """Admission-controlled, deduplicating, degradable evaluation core.

    ``runner`` is injectable for tests: it must accept the keyword
    signature of :func:`repro.experiments.runner.run_scenario` and
    return a ``ResultMatrix``-shaped object.  ``clock`` drives the
    token bucket, breaker, deadlines and latency metrics (fake clocks
    make the admission tests deterministic — no sleeping).
    """

    def __init__(
        self,
        settings: Optional[ResilSettings] = None,
        *,
        runner: Optional[Callable[..., Any]] = None,
        clock: Optional[Clock] = None,
        chaos: Optional[str] = None,
    ) -> None:
        self.settings = settings if settings is not None else resolve_settings()
        self._clock: Clock = clock if clock is not None else time.monotonic
        if runner is None:
            from repro.experiments.runner import run_scenario
            runner = run_scenario
        self._runner = runner
        #: Server-side chaos injection applied to every evaluation
        #: (``hpe-repro serve --chaos`` — the chaos harness wired
        #: through the service path).
        self.server_chaos = (chaos or "").strip()
        if self.server_chaos:
            ChaosSpec.parse(self.server_chaos)  # fail fast on bad grammar
        self._lock = threading.Lock()
        self._terminal = threading.Condition(self._lock)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        #: Single-flight index: (spec_hash, chaos) -> live job id.
        self._inflight: dict[tuple[str, str], str] = {}
        self._seq = 0
        self._draining = False
        self.metrics = MetricsRegistry()
        self.bucket = TokenBucket(
            self.settings.rate_limit,
            self.settings.rate_burst,
            clock=self._clock,
        )
        self.breaker = CircuitBreaker(
            self.settings.breaker_threshold,
            self.settings.breaker_cooldown,
            clock=self._clock,
        )
        from concurrent.futures import ThreadPoolExecutor
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.settings.max_concurrent),
            thread_name_prefix="serve-eval",
        )

    # -- request validation -------------------------------------------

    _ALLOWED_KEYS = frozenset({"scenario", "spec", "cell", "chaos", "deadline"})

    def _parse_payload(
        self, payload: object
    ) -> tuple[MatrixSpec, str, Optional[float]]:
        """Validate one submission body → (spec, chaos, deadline)."""
        if not isinstance(payload, Mapping):
            raise Rejection(400, "invalid_request", "body must be a JSON object")
        unknown = sorted(set(payload) - self._ALLOWED_KEYS)
        if unknown:
            raise Rejection(
                400, "invalid_request",
                f"unknown field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(self._ALLOWED_KEYS))}",
            )
        sources = [k for k in ("scenario", "spec", "cell") if k in payload]
        if len(sources) != 1:
            raise Rejection(
                400, "invalid_request",
                "exactly one of 'scenario', 'spec' or 'cell' is required",
            )
        try:
            spec = self._build_spec(sources[0], payload[sources[0]])
        except (ScenarioError, TypeError) as exc:
            raise Rejection(400, "invalid_spec", str(exc)) from exc
        chaos = payload.get("chaos", "")
        if not isinstance(chaos, str):
            raise Rejection(400, "invalid_request", "'chaos' must be a string")
        chaos = chaos.strip()
        if chaos:
            try:
                ChaosSpec.parse(chaos)
            except ChaosSpecError as exc:
                raise Rejection(400, "invalid_chaos", str(exc)) from exc
        deadline = payload.get("deadline")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or isinstance(
                deadline, bool
            ) or deadline <= 0:
                raise Rejection(
                    400, "invalid_request",
                    "'deadline' must be a positive number of seconds",
                )
            deadline = float(deadline)
        return spec, chaos, deadline

    def _build_spec(self, kind: str, value: object) -> MatrixSpec:
        if kind == "scenario":
            if not isinstance(value, str):
                raise ScenarioError("'scenario' must be a string name")
            return get_scenario(value).spec
        if not isinstance(value, Mapping):
            raise ScenarioError(f"'{kind}' must be a JSON object")
        if kind == "spec":
            return MatrixSpec.from_dict(value)
        cell = ScenarioSpec.from_dict(value)
        if cell.params:
            raise ScenarioError(
                "'cell' submissions do not support generator params; "
                "submit a 'spec' grid instead"
            )
        if cell.fastpath is not None and cell.fastpath >= 3:
            # Tiers 0-2 are bit-identical, so normalising them away is
            # observable to nobody; tier 3 is metric-equivalent only and
            # must never be served as if it were exact.
            raise ScenarioError(
                "'cell' submissions cannot request the relaxed fastpath "
                f"tier {cell.fastpath} (the service serves bit-exact "
                "results; run relaxed tiers locally via run_spec)"
            )
        return MatrixSpec(
            policies=(cell.policy,),
            rates=(cell.rate,),
            apps=(cell.workload,),
            seed=cell.seed,
            scale=cell.scale,
            family=cell.family,
            config=cell.config,
            hpe_config=cell.hpe_config,
            prefetch_degree=cell.prefetch_degree,
        )

    # -- admission ----------------------------------------------------

    def _effective_deadline(self, asked: Optional[float]) -> Optional[float]:
        """Absolute deadline: the shorter of asked and the server cap."""
        cap = self.settings.request_deadline
        if asked is None:
            budget = cap if cap > 0 else None
        elif cap > 0:
            budget = min(asked, cap)
        else:
            budget = asked
        return None if budget is None else self._clock() + budget

    def _live_count_locked(self) -> int:
        return sum(1 for job in self._jobs.values() if not job.terminal)

    def submit(self, payload: object) -> tuple[int, dict[str, object]]:
        """One submission → ``(http_status, json_body)``; never raises.

        202 with a job id on admission (``deduped: true`` when attached
        to an in-flight twin), 400/429/503 with a structured error body
        otherwise.
        """
        try:
            return self._submit(payload)
        except Rejection as rejection:
            with self._lock:
                self.metrics.inc(f"serve.rejected.{rejection.error}")
                self.metrics.inc("serve.rejected")
            return rejection.status, rejection.body()

    def _submit(self, payload: object) -> tuple[int, dict[str, object]]:
        if self._draining:
            raise Rejection(
                503, "draining",
                "server is draining; resubmit elsewhere or later",
                retry_after=self.settings.drain_grace,
            )
        spec, chaos, asked_deadline = self._parse_payload(payload)
        spec_hash = spec.spec_hash()
        flight_key = (spec_hash, chaos)
        with self._lock:
            self.metrics.inc("serve.submitted")
            # Single-flight dedupe first: attaching to an in-flight
            # twin costs nothing, so it bypasses rate/queue admission.
            live_id = self._inflight.get(flight_key)
            if live_id is not None:
                job = self._jobs[live_id]
                if not job.terminal:
                    job.dedupe_hits += 1
                    self.metrics.inc("serve.deduped")
                    return 202, {
                        "job_id": job.job_id,
                        "status": job.status,
                        "spec_hash": spec_hash,
                        "run_id": spec.run_id(),
                        "deduped": True,
                    }
            decision = self.breaker.check(spec_hash)
            if not decision.allowed:
                raise Rejection(
                    503, "circuit_open",
                    f"spec {spec_hash[:12]} is quarantined after repeated "
                    f"worker crashes; retry after cooldown",
                    retry_after=decision.retry_after,
                )
            live = self._live_count_locked()
            depth_limit = (
                self.settings.max_concurrent + self.settings.max_queue
            )
            if live >= depth_limit:
                if decision.probe:
                    self.breaker.record_failure(spec_hash)
                self.metrics.inc("serve.shed.queue")
                raise Rejection(
                    503, "queue_full",
                    f"{live} request(s) queued or running "
                    f"(limit {depth_limit})",
                    retry_after=SHED_RETRY_AFTER_S,
                )
            if not self.bucket.try_acquire():
                if decision.probe:
                    # Return the probe slot; the shed wasn't its fault.
                    self.breaker.record_failure(spec_hash)
                self.metrics.inc("serve.shed.rate")
                raise Rejection(
                    429, "rate_limited",
                    "request rate exceeds the admission budget",
                    retry_after=self.bucket.retry_after(),
                )
            self._seq += 1
            job = Job(
                job_id=f"job-{spec_hash[:8]}-{self._seq}",
                spec=spec,
                spec_hash=spec_hash,
                chaos=chaos,
                deadline_at=self._effective_deadline(asked_deadline),
                submitted_at=self._clock(),
            )
            self._jobs[job.job_id] = job
            self._inflight[flight_key] = job.job_id
            self._trim_terminal_locked()
            self._update_gauges_locked()
        self._pool.submit(self._evaluate, job.job_id)
        return 202, {
            "job_id": job.job_id,
            "status": "queued",
            "spec_hash": spec_hash,
            "run_id": spec.run_id(),
            "deduped": False,
        }

    # -- evaluation ---------------------------------------------------

    def _combined_chaos(self, job: Job) -> Optional[str]:
        """Request chaos wins over server chaos (tests may override)."""
        return job.chaos or self.server_chaos or None

    def _evaluate(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            now = self._clock()
            if job.deadline_at is not None and now >= job.deadline_at:
                self._finish_locked(job, "deadline_exceeded", error={
                    "error": "deadline_exceeded",
                    "message": (
                        f"deadline expired after "
                        f"{now - job.submitted_at:.1f}s in queue"
                    ),
                })
                self.metrics.inc("serve.deadline_expired")
                return
            job.status = "running"
            job.started_at = now
            self._update_gauges_locked()
        try:
            matrix = self._runner(
                job.spec,
                progress=False,
                jobs=max(2, self.settings.serve_jobs),
                timeout=self.settings.worker_timeout,
                retries=self.settings.retries,
                backoff=self.settings.backoff,
                chaos=self._combined_chaos(job),
            )
        except MatrixInterrupted as exc:
            with self._lock:
                self.metrics.inc("serve.interrupted")
                self._finish_locked(job, "interrupted", error={
                    "error": "interrupted",
                    "message": str(exc),
                    "run_id": exc.run_id,
                    "resume": f"hpe-repro resume {exc.run_id}",
                })
            return
        except Exception as exc:  # noqa: BLE001 - degrade, never drop
            self.breaker.record_failure(job.spec_hash)
            with self._lock:
                self.metrics.inc("serve.errors")
                self._finish_locked(job, "error", error={
                    "error": type(exc).__name__,
                    "message": str(exc),
                })
            return
        summary = summarize_matrix(matrix)
        if _crash_degraded(matrix):
            self.breaker.record_failure(job.spec_hash)
        else:
            self.breaker.record_success(job.spec_hash)
        with self._lock:
            self.metrics.inc("serve.completed")
            if summary["degraded"]:
                self.metrics.inc("serve.degraded")
                self.metrics.inc(
                    "serve.cells_degraded", summary["cells_degraded"]
                )
            self._finish_locked(job, "done", result=summary)

    def _finish_locked(
        self,
        job: Job,
        status: str,
        *,
        result: Optional[dict[str, object]] = None,
        error: Optional[dict[str, object]] = None,
    ) -> None:
        job.status = status
        job.result = result
        job.error = error
        job.finished_at = self._clock()
        self.metrics.observe(
            "serve.request_latency_ms",
            (job.finished_at - job.submitted_at) * 1000.0,
        )
        flight_key = (job.spec_hash, job.chaos)
        if self._inflight.get(flight_key) == job.job_id:
            del self._inflight[flight_key]
        self._update_gauges_locked()
        self._terminal.notify_all()

    def _trim_terminal_locked(self) -> None:
        terminal = [j for j in self._jobs.values() if j.terminal]
        excess = len(terminal) - MAX_COMPLETED_JOBS
        for job in terminal[:max(0, excess)]:
            del self._jobs[job.job_id]

    def _update_gauges_locked(self) -> None:
        queued = sum(1 for j in self._jobs.values() if j.status == "queued")
        running = sum(1 for j in self._jobs.values() if j.status == "running")
        self.metrics.set_gauge("serve.queue_depth", queued)
        self.metrics.set_gauge("serve.inflight", running)

    # -- inspection ---------------------------------------------------

    def snapshot(
        self, job_id: str, wait: float = 0.0
    ) -> Optional[dict[str, object]]:
        """JSON view of one job; optionally block until terminal.

        ``wait`` seconds is an upper bound — the call returns as soon
        as the job finishes.  ``None`` for unknown ids.
        """
        deadline = time.monotonic() + max(0.0, wait)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            while not job.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._terminal.wait(remaining)
            return self._job_view_locked(job)

    def _job_view_locked(self, job: Job) -> dict[str, object]:
        now = self._clock()
        view: dict[str, object] = {
            "job_id": job.job_id,
            "status": job.status,
            "spec_hash": job.spec_hash,
            "run_id": job.spec.run_id(),
            "chaos": job.chaos,
            "dedupe_hits": job.dedupe_hits,
            "elapsed": round(
                (job.finished_at if job.finished_at is not None else now)
                - job.submitted_at, 3,
            ),
        }
        if job.result is not None:
            view["result"] = job.result
        if job.error is not None:
            view["error"] = job.error
        return view

    def list_jobs(self) -> list[dict[str, object]]:
        """Every known job, oldest first (bounded by the terminal trim)."""
        with self._lock:
            return [self._job_view_locked(job) for job in self._jobs.values()]

    def scenarios(self) -> list[dict[str, object]]:
        """The named scenarios a client may submit."""
        return [
            {
                "name": entry.name,
                "description": entry.description,
                "cells": len(entry.spec.cells()),
                "spec_hash": entry.spec.spec_hash(),
            }
            for entry in all_scenarios()
        ]

    def stats(self) -> dict[str, object]:
        """Counters, gauges, latency summary, breaker and queue state."""
        with self._lock:
            latency = self.metrics.histogram("serve.request_latency_ms")
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.status] = by_state.get(job.status, 0) + 1
            return {
                "draining": self._draining,
                "jobs": by_state,
                "inflight_keys": len(self._inflight),
                "counters": {
                    name: self.metrics.counter(name)
                    for name in (
                        "serve.submitted", "serve.deduped", "serve.rejected",
                        "serve.shed.queue", "serve.shed.rate",
                        "serve.completed", "serve.degraded", "serve.errors",
                        "serve.interrupted", "serve.deadline_expired",
                    )
                },
                "latency_ms": {
                    "count": latency.count,
                    "mean": (
                        latency.total / latency.count if latency.count else 0.0
                    ),
                    "min": latency.min,
                    "max": latency.max,
                },
                "tokens": self.bucket.tokens,
                "breaker_open": self.breaker.open_keys(),
                "breaker_trips": self.breaker.tripped_total,
            }

    def health(self) -> dict[str, object]:
        """Liveness: the process is up and answering."""
        return {"status": "draining" if self._draining else "ok"}

    def ready(self) -> tuple[bool, dict[str, object]]:
        """Readiness: would a submission be admitted right now?"""
        with self._lock:
            live = self._live_count_locked()
            limit = self.settings.max_concurrent + self.settings.max_queue
            ready = not self._draining and live < limit
            return ready, {
                "status": "ok" if ready else "saturated",
                "draining": self._draining,
                "live": live,
                "limit": limit,
            }

    # -- shutdown -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, grace: Optional[float] = None) -> int:
        """Stop admitting, wait up to ``grace`` for in-flight work.

        Returns the number of jobs still live when the grace expired —
        0 means a clean drain (exit 0); anything else maps to exit 75
        (``EX_TEMPFAIL``): the journal has what finished, ``hpe-repro
        resume`` picks up the rest.
        """
        grace = self.settings.drain_grace if grace is None else grace
        deadline = time.monotonic() + max(0.0, grace)
        with self._lock:
            self._draining = True
            while self._live_count_locked() > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._terminal.wait(remaining)
            stranded = self._live_count_locked()
        self._pool.shutdown(wait=(stranded == 0))
        return stranded
