"""Schema validation for ``BENCH_service.json`` (no jsonschema dep).

CI's ``service`` job runs the load benchmark and then validates the
artifact with :func:`validate_bench_service` so a drive-by edit cannot
silently drop a metric the dashboards read.  The checker is a small
hand-rolled walker: required keys, types, and range constraints.
"""

from __future__ import annotations

from typing import Mapping

#: Required numeric fields of one load-test record and their bounds
#: (inclusive lower, or ``None`` for unbounded).
_NUMERIC_FIELDS: dict[str, float] = {
    "clients": 1,
    "requests": 1,
    "duplicates": 0,
    "latency_p50_ms": 0,
    "latency_p99_ms": 0,
    "throughput_rps": 0,
    "shed_rate": 0,
    "dedupe_hit_rate": 0,
    "answered": 0,
    "unanswered": 0,
    "wall_s": 0,
}

#: Fields that are rates in [0, 1].
_RATE_FIELDS = ("shed_rate", "dedupe_hit_rate")


def validate_bench_service(data: object) -> list[str]:
    """Every schema violation in ``data`` (empty list == valid).

    Expected shape::

        {"service_load": {
            "<scenario label>": {
                "clients": N, "requests": N, "duplicates": N,
                "latency_p50_ms": x, "latency_p99_ms": x,
                "throughput_rps": x, "shed_rate": r,
                "dedupe_hit_rate": r, "answered": N, "unanswered": N,
                "wall_s": x, "chaos": "...",
            }, ...
        }}
    """
    problems: list[str] = []
    if not isinstance(data, Mapping):
        return [f"top level must be an object, got {type(data).__name__}"]
    section = data.get("service_load")
    if not isinstance(section, Mapping):
        return ["missing or non-object 'service_load' section"]
    if not section:
        return ["'service_load' has no records"]
    for label, record in section.items():
        prefix = f"service_load[{label!r}]"
        if not isinstance(record, Mapping):
            problems.append(f"{prefix}: record must be an object")
            continue
        for name, lower in _NUMERIC_FIELDS.items():
            value = record.get(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(
                    f"{prefix}.{name}: expected a number, got {value!r}"
                )
                continue
            if value < lower:
                problems.append(
                    f"{prefix}.{name}: {value} below lower bound {lower}"
                )
        for name in _RATE_FIELDS:
            value = record.get(name)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and value > 1:
                problems.append(
                    f"{prefix}.{name}: rate {value} above 1"
                )
        if not isinstance(record.get("chaos", ""), str):
            problems.append(f"{prefix}.chaos: expected a string")
        p50 = record.get("latency_p50_ms")
        p99 = record.get("latency_p99_ms")
        if (
            isinstance(p50, (int, float)) and isinstance(p99, (int, float))
            and not isinstance(p50, bool) and not isinstance(p99, bool)
            and p99 < p50
        ):
            problems.append(
                f"{prefix}: p99 ({p99}) below p50 ({p50})"
            )
        answered = record.get("answered")
        requests = record.get("requests")
        unanswered = record.get("unanswered")
        if (
            isinstance(answered, int) and isinstance(requests, int)
            and isinstance(unanswered, int)
            and answered + unanswered < requests
        ):
            problems.append(
                f"{prefix}: answered ({answered}) + unanswered "
                f"({unanswered}) below requests ({requests}) — "
                f"requests were dropped without a structured response"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI shim: ``python -m repro.serve.bench_schema BENCH_service.json``."""
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="validate a BENCH_service.json artifact"
    )
    parser.add_argument("path", help="path to BENCH_service.json")
    options = parser.parse_args(argv)
    try:
        with open(options.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable artifact: {exc}", file=sys.stderr)
        return 2
    problems = validate_bench_service(data)
    for problem in problems:
        print(f"schema violation: {problem}", file=sys.stderr)
    if not problems:
        print(f"{options.path}: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
