"""Admission-control primitives: token bucket and circuit breaker.

Both take an injectable monotonic ``clock`` so unit tests drive them
with a fake clock — no ``time.sleep``, fully deterministic — and both
quote a ``retry_after`` so the HTTP layer can answer 429/503 with an
honest ``Retry-After`` header instead of a bare rejection.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate <= 0`` disables the limiter (every acquire succeeds) —
    matching the ``REPRO_RATE_LIMIT=0`` knob semantics.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Clock] = None,
    ) -> None:
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._stamp = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Current token count (after refill) — monitoring only."""
        if self.rate <= 0:
            return self.burst
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when they are)."""
        if self.rate <= 0:
            return 0.0
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


@dataclass
class _BreakerEntry:
    consecutive_failures: int = 0
    opened_at: float = 0.0
    open: bool = False
    probing: bool = False


@dataclass(frozen=True)
class BreakerDecision:
    """Outcome of one admission check against a key's breaker state."""

    allowed: bool
    #: Seconds until the next probe would be admitted (0 when allowed).
    retry_after: float = 0.0
    #: True when this admission is the single half-open probe.
    probe: bool = False


class CircuitBreaker:
    """Per-key breaker: ``threshold`` consecutive failures open it.

    The service keys breakers by spec hash, so a *poison request* — one
    whose workers crash every time — gets quarantined instead of
    grinding the pool forever.  An open breaker rejects with a quoted
    ``retry_after`` until ``cooldown`` elapses, then admits exactly one
    half-open probe; the probe's success closes the breaker, its
    failure re-opens it for another cooldown.

    ``threshold <= 0`` disables the breaker.  Tracked keys are bounded
    (LRU) so an adversarial spread of unique specs cannot grow memory.
    """

    #: Bound on tracked keys; closed, quiet entries are evicted first.
    MAX_KEYS = 1024

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        clock: Optional[Clock] = None,
        max_keys: int = MAX_KEYS,
    ) -> None:
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._entries: OrderedDict[str, _BreakerEntry] = OrderedDict()
        self._max_keys = max_keys
        self.tripped_total = 0

    def _entry(self, key: str) -> _BreakerEntry:
        entry = self._entries.get(key)
        if entry is None:
            entry = _BreakerEntry()
            self._entries[key] = entry
            while len(self._entries) > self._max_keys:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        return entry

    def check(self, key: str) -> BreakerDecision:
        """May a request for ``key`` be admitted right now?"""
        if self.threshold <= 0:
            return BreakerDecision(allowed=True)
        entry = self._entry(key)
        if not entry.open:
            return BreakerDecision(allowed=True)
        elapsed = self._clock() - entry.opened_at
        if elapsed < self.cooldown:
            return BreakerDecision(
                allowed=False, retry_after=self.cooldown - elapsed
            )
        if entry.probing:
            # The one half-open probe is already in flight.
            return BreakerDecision(allowed=False, retry_after=self.cooldown)
        entry.probing = True
        return BreakerDecision(allowed=True, probe=True)

    def record_success(self, key: str) -> None:
        """A completed evaluation closed cleanly — reset the key."""
        if self.threshold <= 0:
            return
        entry = self._entry(key)
        entry.consecutive_failures = 0
        entry.open = False
        entry.probing = False

    def record_failure(self, key: str) -> bool:
        """A crash/timeout-degraded evaluation; returns True on trip."""
        if self.threshold <= 0:
            return False
        entry = self._entry(key)
        entry.consecutive_failures += 1
        entry.probing = False
        if entry.open or entry.consecutive_failures >= self.threshold:
            newly = not entry.open
            entry.open = True
            entry.opened_at = self._clock()
            if newly:
                self.tripped_total += 1
            return True
        return False

    def open_keys(self) -> list[str]:
        """Keys currently quarantined (monitoring/stats)."""
        return [key for key, e in self._entries.items() if e.open]
