"""Simulation-as-a-service: the fault-tolerant evaluation server.

ROADMAP item 1.  The package turns the resilient matrix engine
(:func:`repro.experiments.runner.run_scenario` over the supervised
worker pool, result cache and journal) into a long-lived service:

* :mod:`repro.serve.ratelimit` — token bucket + per-spec circuit
  breaker, both fake-clock testable;
* :mod:`repro.serve.service` — the transport-free core: admission →
  single-flight dedupe → dispatch → per-cell graceful degradation;
* :mod:`repro.serve.http` — stdlib-asyncio HTTP/JSON transport with
  read timeouts, graceful SIGTERM/SIGINT drain, and exit-75 semantics;
* :mod:`repro.serve.client` — the ``hpe-repro submit|watch`` client;
* :mod:`repro.serve.chaos_client` — deterministic hostile clients
  (slow / abandoned / malformed / duplicate requests);
* :mod:`repro.serve.bench_schema` — the ``BENCH_service.json``
  validator CI runs against the load benchmark's artifact.

The invariant the whole stack defends: **every request gets a
structured answer** — a result, explicit DEGRADED cells, or a
400/408/413/429/503 JSON body with ``Retry-After`` where meaningful.
Connections are never silently dropped, and a crashing worker never
takes a request (let alone the server) down with it.
"""

from __future__ import annotations

from repro.serve.chaos_client import ChaosClient, ChaosClientReport
from repro.serve.client import ServiceClient, ServiceResponse, ServiceUnreachable
from repro.serve.http import Server, ServerThread, serve_forever
from repro.serve.ratelimit import BreakerDecision, CircuitBreaker, TokenBucket
from repro.serve.service import (
    EvaluationService,
    Job,
    Rejection,
    summarize_matrix,
)

__all__ = [
    "BreakerDecision",
    "ChaosClient",
    "ChaosClientReport",
    "CircuitBreaker",
    "EvaluationService",
    "Job",
    "Rejection",
    "Server",
    "ServerThread",
    "ServiceClient",
    "ServiceResponse",
    "ServiceUnreachable",
    "TokenBucket",
    "serve_forever",
    "summarize_matrix",
]
