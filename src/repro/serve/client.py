"""Stdlib HTTP client for the evaluation service.

``hpe-repro submit`` / ``hpe-repro watch`` wrap this; tests and the
load benchmark drive it directly.  Plain :mod:`http.client`, one
connection per request (the server answers ``Connection: close``).
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Optional


class ServiceUnreachable(ConnectionError):
    """The server could not be reached (connection refused / reset)."""


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP exchange: status, parsed JSON body, Retry-After."""

    status: int
    body: dict[str, object]
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ServiceClient:
    """Talk to one ``hpe-repro serve`` instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8135, timeout: float = 70.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict[str, object]] = None,
    ) -> ServiceResponse:
        """One exchange; raises :class:`ServiceUnreachable` on no-server."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = {"error": "unparseable_body", "raw": repr(raw[:200])}
            if not isinstance(parsed, dict):
                parsed = {"value": parsed}
            return ServiceResponse(
                status=response.status, body=parsed, retry_after=retry_after
            )
        except (ConnectionError, OSError) as exc:
            raise ServiceUnreachable(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    # -- typed endpoints ----------------------------------------------

    def submit(self, payload: dict[str, object]) -> ServiceResponse:
        """POST one evaluation request (see the service for the schema)."""
        return self.request("POST", "/v1/submit", payload)

    def submit_scenario(
        self,
        name: str,
        *,
        chaos: str = "",
        deadline: Optional[float] = None,
    ) -> ServiceResponse:
        payload: dict[str, object] = {"scenario": name}
        if chaos:
            payload["chaos"] = chaos
        if deadline is not None:
            payload["deadline"] = deadline
        return self.submit(payload)

    def job(self, job_id: str, wait: float = 0.0) -> ServiceResponse:
        path = f"/v1/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def watch(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 2.0,
    ) -> ServiceResponse:
        """Block until ``job_id`` is terminal (or ``timeout`` expires).

        Long-polls with server-side ``wait`` so the common case is one
        round-trip; falls back to client-side sleeping between polls if
        the job outlives a single wait window.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self.job(job_id)
            response = self.job(job_id, wait=min(30.0, max(0.1, remaining)))
            if not response.ok:
                return response
            if response.body.get("status") not in ("queued", "running"):
                return response
            time.sleep(min(poll, max(0.0, deadline - time.monotonic())))

    def health(self) -> ServiceResponse:
        return self.request("GET", "/healthz")

    def ready(self) -> ServiceResponse:
        return self.request("GET", "/readyz")

    def stats(self) -> ServiceResponse:
        return self.request("GET", "/v1/stats")

    def scenarios(self) -> ServiceResponse:
        return self.request("GET", "/v1/scenarios")
