"""Asyncio HTTP/JSON transport for the evaluation service.

Stdlib only (``asyncio.start_server`` + a minimal HTTP/1.1 parser) —
the container has no third-party HTTP framework, and the protocol
surface is tiny: five JSON endpoints, ``Connection: close`` on every
response.

Routes
------
``POST /v1/submit``
    Body: ``{"scenario": name}`` | ``{"spec": {...}}`` | ``{"cell":
    {...}}`` plus optional ``chaos`` and ``deadline``.  202 on
    admission, 400/429/503 (with ``Retry-After``) on rejection —
    always a structured JSON body.
``GET /v1/jobs/<id>[?wait=S]``
    Job snapshot; ``wait`` blocks up to S seconds for a terminal state.
``GET /v1/jobs`` / ``GET /v1/scenarios`` / ``GET /v1/stats``
    Listings and service statistics.
``GET /healthz`` / ``GET /readyz``
    Liveness (always 200 while the process runs) and readiness (503
    while draining or saturated).

Robustness: slow clients are cut off after ``read_timeout`` with 408;
bodies over :data:`MAX_BODY_BYTES` get 413; malformed requests get
400.  SIGTERM/SIGINT starts a graceful drain — the listener closes,
in-flight evaluations get ``drain_grace`` seconds to finish, and the
process exits 0 (clean) or 75 (``EX_TEMPFAIL``: journaled work
remains; ``hpe-repro resume`` picks it up).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.resil import EXIT_INTERRUPTED
from repro.serve.service import EvaluationService

#: Request bodies above this answer 413 (a matrix spec is < 2 KiB).
MAX_BODY_BYTES = 1 << 20

#: Upper bound on ``?wait=`` long-polling (keeps executor threads free).
MAX_WAIT_S = 60.0

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _encode_response(status: int, body: dict[str, object]) -> bytes:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    retry_after = body.get("retry_after")
    if isinstance(retry_after, (int, float)) and status in (429, 503):
        headers.append(f"Retry-After: {max(1, round(float(retry_after)))}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + payload


class Server:
    """One listening socket bound to one :class:`EvaluationService`."""

    def __init__(
        self,
        service: EvaluationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_requested = asyncio.Event()

    # -- request handling ---------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        """Parse one request → (method, target, body).  Raises on junk."""
        timeout = self.service.settings.read_timeout
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        parts = head.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line: {head!r}")
        method, target, _version = parts
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise ValueError("malformed Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise _TooLarge(length)
        body = b""
        if length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout
            )
        return method, target, body

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
            except (asyncio.TimeoutError, TimeoutError):
                await self._respond(writer, 408, {
                    "error": "read_timeout",
                    "message": "request not received in time",
                })
                return
            except _TooLarge as exc:
                await self._respond(writer, 413, {
                    "error": "payload_too_large",
                    "message": f"body of {exc.length} bytes exceeds "
                               f"{MAX_BODY_BYTES}",
                })
                return
            except (ValueError, asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError) as exc:
                await self._respond(writer, 400, {
                    "error": "malformed_request",
                    "message": str(exc),
                })
                return
            status, payload = await self._route(method, target, body)
            await self._respond(writer, status, payload)
        except (ConnectionError, BrokenPipeError):
            pass  # abandoned client — nothing left to tell it
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond(writer, 500, {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                })
            except (ConnectionError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, object],
    ) -> None:
        writer.write(_encode_response(status, body))
        await writer.drain()

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        loop = asyncio.get_running_loop()
        if path == "/v1/submit":
            if method != "POST":
                return 405, _method_not_allowed("POST")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {
                    "error": "invalid_json",
                    "message": f"body is not valid JSON: {exc}",
                }
            return await loop.run_in_executor(
                None, self.service.submit, payload
            )
        if method != "GET":
            return 405, _method_not_allowed("GET")
        if path == "/healthz":
            return 200, self.service.health()
        if path == "/readyz":
            ready, view = self.service.ready()
            return (200 if ready else 503), view
        if path == "/v1/stats":
            return 200, self.service.stats()
        if path == "/v1/scenarios":
            return 200, {"scenarios": self.service.scenarios()}
        if path == "/v1/jobs":
            return 200, {"jobs": self.service.list_jobs()}
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            wait = _parse_wait(query)
            view = await loop.run_in_executor(
                None, self.service.snapshot, job_id, wait
            )
            if view is None:
                return 404, {
                    "error": "unknown_job",
                    "message": f"no job {job_id!r} (terminal jobs are "
                               f"kept only for a bounded window)",
                }
            return 200, view
        return 404, {
            "error": "unknown_route",
            "message": f"no route {method} {path}",
        }

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; ``self.port`` is the real port after this."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    def request_drain(self) -> None:
        """Signal-safe trigger for a graceful drain."""
        self._drain_requested.set()

    async def run_until_drained(self) -> int:
        """Serve until a drain is requested; returns the exit status."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._drain_requested.wait()
        # Stop accepting, then give in-flight work its grace period.
        self._server.close()
        await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        stranded = await loop.run_in_executor(None, self.service.drain)
        return EXIT_INTERRUPTED if stranded else 0

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class _TooLarge(Exception):
    def __init__(self, length: int) -> None:
        super().__init__(f"body too large: {length}")
        self.length = length


def _method_not_allowed(allowed: str) -> dict[str, object]:
    return {
        "error": "method_not_allowed",
        "message": f"only {allowed} is accepted here",
        "allowed": allowed,
    }


def _parse_wait(query: dict[str, list[str]]) -> float:
    raw = (query.get("wait") or ["0"])[0]
    try:
        return max(0.0, min(MAX_WAIT_S, float(raw)))
    except ValueError:
        return 0.0


def serve_forever(
    service: EvaluationService,
    host: str = "127.0.0.1",
    port: int = 8135,
    *,
    banner: bool = True,
) -> int:
    """Blocking entry point for ``hpe-repro serve``.

    Installs SIGTERM/SIGINT handlers that trigger a graceful drain and
    returns the process exit status: 0 after a clean drain, 75
    (``EX_TEMPFAIL``) when in-flight requests were stranded — their
    journals survive for ``hpe-repro resume``.
    """

    async def _main() -> int:
        server = Server(service, host=host, port=port)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / exotic loop: Ctrl-C still works
        if banner:
            print(f"hpe-repro serve: listening on {host}:{server.port}")
            print("endpoints: POST /v1/submit  GET /v1/jobs/<id>  "
                  "GET /v1/stats  GET /healthz  GET /readyz")
        try:
            return await server.run_until_drained()
        finally:
            await server.stop()

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        # Signal handler could not be installed; treat ^C as a drain.
        stranded = service.drain()
        return EXIT_INTERRUPTED if stranded else 0


class ServerThread:
    """A live server on a background thread — tests and benchmarks.

    Binds an ephemeral port, runs the asyncio loop off-thread, and
    tears down cleanly::

        with ServerThread(service) as server:
            client = ServiceClient("127.0.0.1", server.port)
            ...
    """

    def __init__(
        self, service: EvaluationService, host: str = "127.0.0.1"
    ) -> None:
        self.service = service
        self.host = host
        self.port = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="serve-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = Server(self.service, host=self.host, port=0)
        self._server = server

        async def _main() -> None:
            await server.start()
            self.port = server.port
            self._started.set()
            await server.run_until_drained()

        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    def close(self) -> None:
        """Drain the service and join the server thread."""
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_drain)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30.0)
