"""Client-side chaos: hostile request patterns against a live server.

The worker-side chaos harness (:mod:`repro.resil.chaos`) kills and
hangs *workers*; this module misbehaves as a *client* — the other half
of the failure surface an evaluation service must survive:

``slow``
    Dribbles the request bytes slower than ``read_timeout`` — the
    server must answer 408 and free the connection.
``abandon``
    Opens a connection, sends half a request, and disconnects — the
    server must not leak the handler task.
``malformed``
    Sends syntactically broken HTTP or invalid JSON — the server must
    answer 400 with a structured body, never crash.
``duplicate``
    Submits the same spec several times concurrently — single-flight
    dedupe must collapse them onto one evaluation.

All misbehaviour is deterministic: each request's faults derive from
``sha256(seed | kind | index)``, the same construction the worker-side
harness uses, so a failing chaos run replays exactly.
"""

from __future__ import annotations

import hashlib
import json
import select
import socket
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.client import ServiceClient, ServiceResponse, ServiceUnreachable

#: The hostile request kinds, in roll order.
CHAOS_KINDS = ("slow", "abandon", "malformed", "duplicate")


def chaos_roll(seed: int, kind: str, index: int) -> float:
    """Deterministic uniform [0, 1) roll for one (kind, request) pair."""
    digest = hashlib.sha256(
        f"{seed}|client-{kind}|{index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class ChaosClientReport:
    """What one chaos-client campaign did and how the server answered."""

    sent: int = 0
    slow: int = 0
    abandoned: int = 0
    malformed: int = 0
    duplicates: int = 0
    #: Structured HTTP answers received (status -> count).
    statuses: dict[int, int] = field(default_factory=dict)
    #: Requests that got no structured answer *excluding* the ones we
    #: abandoned on purpose (those legitimately have no response).
    unanswered: int = 0

    def note(self, response: Optional[ServiceResponse]) -> None:
        self.sent += 1
        if response is None:
            self.unanswered += 1
        else:
            self.statuses[response.status] = (
                self.statuses.get(response.status, 0) + 1
            )


class ChaosClient:
    """Deterministically hostile client for one server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        seed: int = 0,
        slow: float = 0.0,
        abandon: float = 0.0,
        malformed: float = 0.0,
        duplicate: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        self.seed = seed
        self.rates = {
            "slow": slow,
            "abandon": abandon,
            "malformed": malformed,
            "duplicate": duplicate,
        }
        self.client = ServiceClient(host, port)
        self.report = ChaosClientReport()

    def _rolls(self, index: int) -> dict[str, bool]:
        return {
            kind: chaos_roll(self.seed, kind, index) < self.rates[kind]
            for kind in CHAOS_KINDS
        }

    # -- hostile sends ------------------------------------------------

    def _raw_socket(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=30.0)
        sock.settimeout(30.0)
        return sock

    def send_slow(self, body: bytes, trickle_delay: float) -> Optional[ServiceResponse]:
        """Dribble a request slower than the server's read timeout.

        Stops trickling as soon as the server answers (a 408 arrives
        mid-send) — writing into a closed connection would RST away
        the very response under test.
        """
        request = (
            b"POST /v1/submit HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        try:
            with self._raw_socket() as sock:
                for offset in range(0, len(request), 16):
                    readable, _w, _x = select.select([sock], [], [], 0)
                    if readable:
                        break  # the server already answered
                    try:
                        sock.sendall(request[offset:offset + 16])
                    except (ConnectionError, OSError):
                        break
                    time.sleep(trickle_delay)
                return _read_raw_response(sock)
        except (ConnectionError, OSError):
            return None

    def send_abandoned(self) -> None:
        """Half a request, then hang up."""
        try:
            with self._raw_socket() as sock:
                sock.sendall(b"POST /v1/submit HTTP/1.1\r\nContent-Le")
        except (ConnectionError, OSError):
            pass

    def send_malformed(self, index: int) -> Optional[ServiceResponse]:
        """Broken HTTP or broken JSON, alternating deterministically."""
        if index % 2 == 0:
            try:
                return self.client.request(
                    "POST", "/v1/submit", {"scenario": None, "bogus": 1}
                )
            except ServiceUnreachable:
                return None
        raw = b"GARBAGE NOT HTTP\r\n\r\n"
        try:
            with self._raw_socket() as sock:
                sock.sendall(raw)
                return _read_raw_response(sock)
        except (ConnectionError, OSError):
            return None

    # -- campaign -----------------------------------------------------

    def run(
        self,
        payload: dict[str, object],
        count: int,
        *,
        trickle_delay: float = 0.05,
    ) -> ChaosClientReport:
        """Fire ``count`` requests at the server, faults per the rolls.

        Every non-abandoned request's answer (or lack of one) is
        recorded in the report; the contract under test is that only
        deliberately abandoned requests may go unanswered.
        ``trickle_delay`` is the per-16-byte pause of a ``slow`` send —
        size it against the server's ``read_timeout``.
        """
        body = json.dumps(payload).encode("utf-8")
        for index in range(count):
            rolls = self._rolls(index)
            if rolls["abandon"]:
                self.report.sent += 1
                self.report.abandoned += 1
                self.send_abandoned()
                continue
            if rolls["malformed"]:
                self.report.malformed += 1
                self.report.note(self.send_malformed(index))
                continue
            if rolls["slow"]:
                self.report.slow += 1
                self.report.note(self.send_slow(body, trickle_delay))
                continue
            repeats = 2 if rolls["duplicate"] else 1
            self.report.duplicates += repeats - 1
            for _repeat in range(repeats):
                try:
                    self.report.note(self.client.submit(payload))
                except ServiceUnreachable:
                    self.report.note(None)
        return self.report


def _read_raw_response(sock: socket.socket) -> Optional[ServiceResponse]:
    """Parse status + JSON body off a raw socket (best effort)."""
    chunks = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    except (ConnectionError, OSError, socket.timeout):
        pass
    raw = b"".join(chunks)
    if not raw.startswith(b"HTTP/1.1 "):
        return None
    try:
        status = int(raw[9:12])
    except ValueError:
        return None
    _head, _sep, body = raw.partition(b"\r\n\r\n")
    try:
        parsed = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        parsed = {}
    if not isinstance(parsed, dict):
        parsed = {"value": parsed}
    return ServiceResponse(status=status, body=parsed)
