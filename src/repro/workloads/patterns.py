"""Generators for the six access patterns of Fig. 2.

Every generator is deterministic given its ``seed`` and produces a
:class:`~repro.workloads.base.Trace` of page-touch episodes.

Two generation idioms reproduce the paper's observable statistics:

* **Region passes** (:func:`region_passes`) — GPU kernels process a
  *region* of contiguous pages in several sweeps (tiles re-read per
  block, frontiers expanded per level).  Page *i* with episode count
  ``counts[i]`` appears in the first ``counts[i]`` sweeps of its region.
  Because a sweep is longer than the shared L2 TLB reach (512 pages),
  re-references arrive at the page-table walker where eviction policies
  can see them; and because counts are drawn per *locality block* of
  contiguous pages, page-set counters stay divisible by the page-set
  size — the paper's "virtual pages with continuous addresses have good
  spatial locality" observation, which is what makes the Table III
  statistics meaningful.
* **Episode schedules** (:func:`episode_schedule`) — per-page episodes
  scattered on a timeline, used for the genuinely irregular applications
  (KMN, SAD, histogram bins, sparse gathers) whose page-set counters the
  paper reports as indivisible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from repro.workloads.base import PatternType, Trace

#: Default pages per region sweep; must exceed the shared L2 TLB reach
#: (512 pages) so that re-references reach the page-table walker.
DEFAULT_REGION_PAGES = 1024

#: Default spatial-locality block (pages sharing one re-reference count).
DEFAULT_LOCALITY_BLOCK = 16

#: Default distance (in episodes) between scattered re-references.
DEFAULT_REREF_GAP = 600


def _blocked_counts(
    num_pages: int,
    choose_count: Callable[[random.Random], int],
    locality_block: int,
    rng: random.Random,
) -> list[int]:
    """Draw one episode count per locality block and broadcast to pages."""
    if locality_block <= 0:
        raise ValueError(f"locality_block must be positive, got {locality_block}")
    counts: list[int] = []
    for start in range(0, num_pages, locality_block):
        count = choose_count(rng)
        block_len = min(locality_block, num_pages - start)
        counts.extend([count] * block_len)
    return counts


def region_passes(
    counts: Sequence[int],
    region_pages: int = DEFAULT_REGION_PAGES,
    base_pages: Optional[Sequence[int]] = None,
) -> list[int]:
    """Multi-pass region sweeps: page *i* appears in its region's first
    ``counts[i]`` sweeps.

    The footprint is carved into consecutive regions of ``region_pages``
    pages; each region is swept in address order as many times as its
    largest count before moving on.
    """
    if region_pages <= 0:
        raise ValueError(f"region_pages must be positive, got {region_pages}")
    pages: list[int] = []
    for start in range(0, len(counts), region_pages):
        stop = min(start + region_pages, len(counts))
        max_passes = max(counts[start:stop], default=0)
        for sweep in range(max_passes):
            for i in range(start, stop):
                if counts[i] > sweep:
                    pages.append(base_pages[i] if base_pages is not None else i)
    return pages


def episode_schedule(
    counts: Sequence[int],
    reref_gap: float = DEFAULT_REREF_GAP,
    rng: Optional[random.Random] = None,
    base_pages: Optional[Sequence[int]] = None,
) -> list[int]:
    """Scattered episodes: page *i*'s first episode at position *i*, each
    further episode ``reref_gap × U(0.75, 1.25)`` later.

    Re-references of different pages intersect — the paper's "different
    page references usually intersect with each other".
    """
    rng = rng or random.Random(0)
    events: list[tuple[float, int]] = []
    for i, count in enumerate(counts):
        page = base_pages[i] if base_pages is not None else i
        position = float(i)
        events.append((position, page))
        for _ in range(count - 1):
            position += reref_gap * (0.75 + 0.5 * rng.random())
            events.append((position, page))
    events.sort(key=lambda event: event[0])
    return [page for _, page in events]


def streaming(
    num_pages: int,
    name: str = "streaming",
    base_page: int = 0,
) -> Trace:
    """Type I: every page exactly once, in address order."""
    if num_pages <= 0:
        raise ValueError(f"num_pages must be positive, got {num_pages}")
    pages = list(range(base_page, base_page + num_pages))
    return Trace(name=name, pages=pages, pattern_type=PatternType.STREAMING)


def thrashing(
    num_pages: int,
    iterations: int,
    name: str = "thrashing",
    base_page: int = 0,
) -> Trace:
    """Type II: a sweep over ``num_pages`` repeated ``iterations`` times.

    Thrashes whenever ``num_pages`` exceeds the memory size (the paper's
    ``k > memory size, N ≥ 2`` condition).
    """
    if num_pages <= 0 or iterations < 2:
        raise ValueError("need num_pages > 0 and iterations >= 2")
    sweep = list(range(base_page, base_page + num_pages))
    return Trace(
        name=name,
        pages=sweep * iterations,
        pattern_type=PatternType.THRASHING,
        metadata={"iterations": iterations},
    )


def part_repetitive(
    num_pages: int,
    repeat_probability: float = 0.3,
    repeats: int = 2,
    seed: int = 1,
    locality_block: int = DEFAULT_LOCALITY_BLOCK,
    region_pages: int = 64,
    name: str = "part-repetitive",
) -> Trace:
    """Type III: some locality blocks re-swept ``repeats`` times (prob. ε).

    The default region of 64 pages keeps the re-sweep *inside* the TLB
    reach and inside HPE's two-interval recency window: the repeats are
    absorbed before they can disturb the driver,
    so the page-set counters stay small-and-regular — the Fig. 9
    statistics for PAT/DWT/BKP.  ``locality_block=1`` draws counts per
    page instead, producing the irregular counters of the paper's
    KMN/SAD outliers (their traces come out of
    :func:`episode_schedule`-style scattering; see
    :mod:`repro.workloads.suite`).
    """
    if not 0.0 <= repeat_probability <= 1.0:
        raise ValueError("repeat_probability must be within [0, 1]")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rng = random.Random(seed)

    def choose(r: random.Random) -> int:
        return repeats if r.random() < repeat_probability else 1

    counts = _blocked_counts(num_pages, choose, locality_block, rng)
    pages = region_passes(counts, region_pages)
    return Trace(name=name, pages=pages, pattern_type=PatternType.PART_REPETITIVE)


def most_repetitive(
    num_pages: int,
    repeats_range: tuple[int, int] = (3, 4),
    seed: int = 2,
    locality_block: int = DEFAULT_LOCALITY_BLOCK,
    region_pages: int = DEFAULT_REGION_PAGES,
    name: str = "most-repetitive",
) -> Trace:
    """Type IV: most pages referenced multiple times."""
    low, high = repeats_range
    if low < 1 or high < low:
        raise ValueError("repeats_range must satisfy 1 <= low <= high")
    rng = random.Random(seed)

    def choose(r: random.Random) -> int:
        return r.randint(low, high)

    counts = _blocked_counts(num_pages, choose, locality_block, rng)
    pages = region_passes(counts, region_pages)
    return Trace(name=name, pages=pages, pattern_type=PatternType.MOST_REPETITIVE)


def repetitive_thrashing(
    num_pages: int,
    iterations: int = 2,
    repeats_range: tuple[int, int] = (2, 3),
    seed: int = 3,
    locality_block: int = DEFAULT_LOCALITY_BLOCK,
    region_pages: int = DEFAULT_REGION_PAGES,
    name: str = "repetitive-thrashing",
) -> Trace:
    """Type V: a type-IV sequence repeated ``iterations`` times.

    ``region_pages`` controls whether the intra-iteration repeats are
    visible to the driver (> 512: walk hits reach the walker, counters
    grow large) or absorbed by the TLBs (≤ 512: counters stay small, the
    paper's SGM outlier).
    """
    if iterations < 2:
        raise ValueError("iterations must be >= 2 for a thrashing pattern")
    rng = random.Random(seed)
    low, high = repeats_range

    def choose(r: random.Random) -> int:
        return r.randint(low, high)

    pages: list[int] = []
    for _ in range(iterations):
        counts = _blocked_counts(num_pages, choose, locality_block, rng)
        pages.extend(region_passes(counts, region_pages))
    return Trace(
        name=name,
        pages=pages,
        pattern_type=PatternType.REPETITIVE_THRASHING,
        metadata={"iterations": iterations},
    )


def region_moving(
    num_pages: int,
    num_regions: int = 4,
    repeats_range: tuple[int, int] = (3, 5),
    seed: int = 4,
    locality_block: int = DEFAULT_LOCALITY_BLOCK,
    name: str = "region-moving",
) -> Trace:
    """Type VI: the footprint is worked on one address region at a time.

    Each region is swept repeatedly (per-block counts), then the workload
    moves on and never returns — the recency-friendly pattern LRU handles
    well and frequency-based policies mispredict.  Regions are sized
    ``num_pages / num_regions``; keep that above the L2 TLB reach so the
    within-region re-references stay visible to the driver.
    """
    if num_regions <= 0 or num_pages < num_regions:
        raise ValueError("need at least one page per region")
    rng = random.Random(seed)
    low, high = repeats_range

    def choose(r: random.Random) -> int:
        return r.randint(low, high)

    counts = _blocked_counts(num_pages, choose, locality_block, rng)
    region_pages = -(-num_pages // num_regions)
    pages = region_passes(counts, region_pages)
    return Trace(
        name=name,
        pages=pages,
        pattern_type=PatternType.REGION_MOVING,
        metadata={"regions": num_regions},
    )
