"""Workload substrate: access-pattern generators and the Table II suite."""

from repro.workloads.base import PatternType, Trace, concatenate, interleave
from repro.workloads.patterns import (
    episode_schedule,
    most_repetitive,
    part_repetitive,
    region_moving,
    repetitive_thrashing,
    streaming,
    thrashing,
)
from repro.workloads.trace_io import TraceFormatError, load_trace, save_trace
from repro.workloads.suite import (
    APPLICATION_ORDER,
    APPLICATIONS,
    ApplicationSpec,
    all_applications,
    applications_of_type,
    get_application,
)

__all__ = [
    "APPLICATIONS",
    "APPLICATION_ORDER",
    "ApplicationSpec",
    "PatternType",
    "Trace",
    "TraceFormatError",
    "all_applications",
    "applications_of_type",
    "concatenate",
    "episode_schedule",
    "get_application",
    "interleave",
    "load_trace",
    "most_repetitive",
    "part_repetitive",
    "region_moving",
    "save_trace",
    "repetitive_thrashing",
    "streaming",
    "thrashing",
]
