"""Workload traces and the access-pattern taxonomy of Fig. 2.

A :class:`Trace` is a sequence of *page-touch episodes*: one event per
access episode of a 4 KB page.  Intra-episode re-references (consecutive
accesses to the same page by the same warp) are absorbed by the L1 data
cache and TLBs on a real GPU and carry no information for the driver, so
they are not materialised.  A page the paper writes as :math:`a_i^{N_i}`
therefore contributes :math:`N_i` episodes.

The six pattern types are the paper's own taxonomy (Section III-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence


class PatternType(enum.Enum):
    """The six representative access patterns of Fig. 2."""

    STREAMING = "I"
    THRASHING = "II"
    PART_REPETITIVE = "III"
    MOST_REPETITIVE = "IV"
    REPETITIVE_THRASHING = "V"
    REGION_MOVING = "VI"

    @property
    def roman(self) -> str:
        """Roman-numeral label used by the paper's tables and figures."""
        return self.value


@dataclass
class Trace:
    """A named page-touch trace with its pattern classification."""

    name: str
    pages: list[int]
    pattern_type: PatternType
    metadata: dict = field(default_factory=dict)
    _footprint: Optional[int] = field(default=None, repr=False)

    @property
    def footprint_pages(self) -> int:
        """Number of distinct pages the trace touches."""
        if self._footprint is None:
            self._footprint = len(set(self.pages))
        return self._footprint

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self):
        return iter(self.pages)

    def capacity_for(self, oversubscription_rate: float) -> int:
        """GPU frames so that ``rate`` of the footprint fits (Section V).

        An oversubscription rate of 0.75 means "only 75% of the
        application footprint fits in the GPU memory".
        """
        if not 0.0 < oversubscription_rate <= 1.0:
            raise ValueError(
                "oversubscription_rate must be in (0, 1], got "
                f"{oversubscription_rate}"
            )
        return max(1, int(self.footprint_pages * oversubscription_rate))


def concatenate(name: str, traces: Sequence[Trace], pattern_type: PatternType) -> Trace:
    """Join traces back-to-back (phased workloads, e.g. NW's even/odd)."""
    pages: list[int] = []
    for trace in traces:
        pages.extend(trace.pages)
    return Trace(name=name, pages=pages, pattern_type=pattern_type)


def interleave(
    name: str,
    traces: Sequence[Trace],
    pattern_type: PatternType,
    weights: Optional[Sequence[int]] = None,
) -> Trace:
    """Round-robin merge of traces (streams running concurrently).

    ``weights[i]`` events are taken from trace *i* per round; exhausted
    traces simply drop out.
    """
    if weights is None:
        weights = [1] * len(traces)
    if len(weights) != len(traces):
        raise ValueError("weights must match traces")
    iters = [iter(t.pages) for t in traces]
    active = set(range(len(traces)))
    pages: list[int] = []
    while active:
        for i in list(active):
            for _ in range(weights[i]):
                try:
                    pages.append(next(iters[i]))
                except StopIteration:
                    active.discard(i)
                    break
    return Trace(name=name, pages=pages, pattern_type=pattern_type)
