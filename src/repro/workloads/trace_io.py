"""Reading and writing page-touch traces.

A dependency-free interchange format so traces can be captured once and
replayed across machines (or fed in from real instrumentation):

* optionally gzip-compressed text;
* a ``# repro-trace v1`` magic line;
* ``# key=value`` metadata lines (``name`` and ``pattern`` are understood);
* one decimal page number per line.

Example::

    # repro-trace v1
    # name=HSD
    # pattern=II
    0
    1
    ...
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Union

from repro.workloads.base import PatternType, Trace

MAGIC = "# repro-trace v1"

_PATTERN_BY_ROMAN = {pattern.roman: pattern for pattern in PatternType}


class TraceFormatError(ValueError):
    """Raised when a trace file does not follow the v1 format."""


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip-compressed when it ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as stream:
        stream.write(MAGIC + "\n")
        stream.write(f"# name={trace.name}\n")
        stream.write(f"# pattern={trace.pattern_type.roman}\n")
        for key, value in sorted(trace.metadata.items()):
            if key in ("name", "pattern"):
                continue
            stream.write(f"# {key}={value}\n")
        for page in trace.pages:
            stream.write(f"{page}\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a v1 trace file written by :func:`save_trace`."""
    path = Path(path)
    pages: list[int] = []
    metadata: dict[str, str] = {}
    name = path.stem
    pattern = PatternType.STREAMING
    with _open_text(path, "r") as stream:
        first = stream.readline().rstrip("\n")
        if first != MAGIC:
            raise TraceFormatError(
                f"{path} is not a repro trace (expected {MAGIC!r}, "
                f"got {first!r})"
            )
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("#").strip()
                if "=" not in body:
                    continue
                key, value = body.split("=", 1)
                key, value = key.strip(), value.strip()
                if key == "name":
                    name = value
                elif key == "pattern":
                    try:
                        pattern = _PATTERN_BY_ROMAN[value]
                    except KeyError:
                        raise TraceFormatError(
                            f"{path}:{line_number}: unknown pattern {value!r}"
                        ) from None
                else:
                    metadata[key] = value
                continue
            try:
                page = int(line)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected a page number, "
                    f"got {line!r}"
                ) from None
            if page < 0:
                raise TraceFormatError(
                    f"{path}:{line_number}: negative page number {page}"
                )
            pages.append(page)
    if not pages:
        raise TraceFormatError(f"{path} contains no page references")
    return Trace(name=name, pages=pages, pattern_type=pattern,
                 metadata=metadata)
