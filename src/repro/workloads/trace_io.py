"""Reading and writing page-touch traces.

A dependency-free interchange format so traces can be captured once and
replayed across machines (or fed in from real instrumentation):

* optionally gzip-compressed text;
* a ``# repro-trace v1`` magic line;
* ``# key=value`` metadata lines (``name`` and ``pattern`` are understood);
* one decimal page number per line.

Example::

    # repro-trace v1
    # name=HSD
    # pattern=II
    0
    1
    ...
"""

from __future__ import annotations

import array
import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.workloads.base import PatternType, Trace

MAGIC = "# repro-trace v1"

_PATTERN_BY_ROMAN = {pattern.roman: pattern for pattern in PatternType}


class TraceFormatError(ValueError):
    """Raised when a trace file does not follow the v1 format."""


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip-compressed when it ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as stream:
        stream.write(MAGIC + "\n")
        stream.write(f"# name={trace.name}\n")
        stream.write(f"# pattern={trace.pattern_type.roman}\n")
        for key, value in sorted(trace.metadata.items()):
            if key in ("name", "pattern"):
                continue
            stream.write(f"# {key}={value}\n")
        for page in trace.pages:
            stream.write(f"{page}\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a v1 trace file written by :func:`save_trace`."""
    path = Path(path)
    pages: list[int] = []
    metadata: dict[str, str] = {}
    name = path.stem
    pattern = PatternType.STREAMING
    with _open_text(path, "r") as stream:
        first = stream.readline().rstrip("\n")
        if first != MAGIC:
            raise TraceFormatError(
                f"{path} is not a repro trace (expected {MAGIC!r}, "
                f"got {first!r})"
            )
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("#").strip()
                if "=" not in body:
                    continue
                key, value = body.split("=", 1)
                key, value = key.strip(), value.strip()
                if key == "name":
                    name = value
                elif key == "pattern":
                    try:
                        pattern = _PATTERN_BY_ROMAN[value]
                    except KeyError:
                        raise TraceFormatError(
                            f"{path}:{line_number}: unknown pattern {value!r}"
                        ) from None
                else:
                    metadata[key] = value
                continue
            try:
                page = int(line)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: expected a page number, "
                    f"got {line!r}"
                ) from None
            if page < 0:
                raise TraceFormatError(
                    f"{path}:{line_number}: negative page number {page}"
                )
            pages.append(page)
    if not pages:
        raise TraceFormatError(f"{path} contains no page references")
    return Trace(name=name, pages=pages, pattern_type=pattern,
                 metadata=metadata)

# --- shared-memory trace store ------------------------------------------
#
# ``run_matrix`` workers all replay the same handful of traces.  Without
# sharing, every worker process regenerates (or disk-loads and parses)
# its own private copy of each trace.  The store below packs the built
# traces once, in the parent, into a single read-only POSIX shared-memory
# segment of little-endian int64 page numbers; workers map that one
# buffer and materialise a trace at most once per process.  Everything
# here is optional: any failure to create or attach a segment simply
# falls back to the per-worker build path.


@dataclass(frozen=True)
class StoredTraceMeta:
    """Index entry for one trace inside a shared segment (picklable)."""

    abbr: str
    seed: int
    scale: float
    offset: int  # element offset into the int64 buffer
    count: int
    name: str
    pattern_roman: str
    metadata: tuple  # ((key, value), ...) — kept hashable/picklable
    footprint: int


@dataclass(frozen=True)
class TraceStoreHandle:
    """Everything a worker needs to attach: segment name + index."""

    shm_name: str
    entries: tuple  # tuple[StoredTraceMeta, ...]


class TraceStore:
    """A read-only shared-memory segment holding packed traces.

    The parent calls :meth:`publish` (building the segment and keeping
    ownership for :meth:`unlink`); workers call :meth:`attach` with the
    pickled :class:`TraceStoreHandle` and read traces zero-copy — the
    only per-worker allocation is the ``list[int]`` materialisation,
    which :class:`repro.experiments.runner.TraceCache` performs at most
    once per (app, seed, scale).
    """

    def __init__(self, shm: object, handle: TraceStoreHandle,
                 owner: bool) -> None:
        self._shm = shm
        self._handle = handle
        self._owner = owner
        self._index = {
            (meta.abbr, meta.seed, meta.scale): meta
            for meta in handle.entries
        }

    # -- construction ----------------------------------------------------

    @classmethod
    def publish(
        cls, traces: "dict[tuple[str, int, float], Trace]"
    ) -> "Optional[TraceStore]":
        """Pack ``traces`` into a fresh segment; ``None`` when unavailable.

        Keys are ``(abbr, seed, scale)`` exactly as the runner's trace
        cache uses them.  Returns ``None`` (never raises) when shared
        memory cannot be created — missing module, unwritable /dev/shm,
        or an empty input.
        """
        if not traces:
            return None
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - stdlib, but stay gated
            return None
        total = sum(len(trace.pages) for trace in traces.values())
        if not total:
            return None
        try:
            shm = shared_memory.SharedMemory(create=True, size=total * 8)
        except (OSError, ValueError):
            return None
        entries = []
        offset = 0
        for (abbr, seed, scale), trace in traces.items():
            count = len(trace.pages)
            packed = array.array("q", trace.pages)
            shm.buf[offset * 8:(offset + count) * 8] = packed.tobytes()
            entries.append(StoredTraceMeta(
                abbr=abbr.upper(), seed=seed, scale=scale,
                offset=offset, count=count,
                name=trace.name,
                pattern_roman=trace.pattern_type.roman,
                metadata=tuple(sorted(
                    (str(k), str(v)) for k, v in trace.metadata.items()
                )),
                footprint=trace.footprint_pages,
            ))
            offset += count
        handle = TraceStoreHandle(shm_name=shm.name, entries=tuple(entries))
        return cls(shm, handle, owner=True)

    @classmethod
    def attach(cls, handle: TraceStoreHandle) -> "Optional[TraceStore]":
        """Map an existing segment; ``None`` when it cannot be attached."""
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - stdlib, but stay gated
            return None
        try:
            shm = shared_memory.SharedMemory(name=handle.shm_name)
        except (OSError, ValueError):
            return None
        return cls(shm, handle, owner=False)

    # -- access ----------------------------------------------------------

    @property
    def handle(self) -> TraceStoreHandle:
        return self._handle

    def keys(self) -> "list[tuple[str, int, float]]":
        return list(self._index)

    def get(self, abbr: str, seed: int, scale: float) -> "Optional[Trace]":
        """Rebuild the stored trace, or ``None`` if it is not in the store."""
        meta = self._index.get((abbr.upper(), seed, scale))
        if meta is None:
            return None
        view = memoryview(self._shm.buf).cast("q")  # type: ignore[attr-defined]
        pages = list(view[meta.offset:meta.offset + meta.count])
        del view
        return Trace(
            name=meta.name,
            pages=pages,
            pattern_type=_PATTERN_BY_ROMAN[meta.pattern_roman],
            metadata=dict(meta.metadata),
            _footprint=meta.footprint,
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        try:
            self._shm.close()  # type: ignore[attr-defined]
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; safe if already gone)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()  # type: ignore[attr-defined]
        except (OSError, FileNotFoundError):
            pass
