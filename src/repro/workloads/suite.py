"""The 23 evaluated applications (Table II), as synthetic trace models.

The paper evaluates applications from Rodinia, Parboil and Polybench whose
binaries and inputs we cannot run here; instead each application is
modelled by a generator parameterised to reproduce the *observable*
behaviour the paper documents for it:

* its access-pattern type (Table II);
* its classification statistics at first-full (Fig. 9, Table III),
  including the outliers the paper calls out (KMN/SAD have irregular
  counters despite being type III; SGM is regular despite being type V);
* its documented quirks — NW touches even then odd pages (driving HPE's
  page-set division), MVT uses an address stride of 4, BFS hides a
  thrashing phase that defeats LRU and triggers dynamic adjustment.

Footprints are scaled down (≈ 0.7–5.8k pages ≈ 3–22.5 MB) from the paper's
3–130 MB so pure-Python simulation stays fast; oversubscription rates are
relative, so the eviction dynamics are unchanged.  The ``scale`` argument
shrinks or grows every footprint for quick tests and stress runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.workloads.base import PatternType, Trace, concatenate, interleave
from repro.workloads.patterns import (
    episode_schedule,
    most_repetitive,
    part_repetitive,
    region_moving,
    region_passes,
    repetitive_thrashing,
    streaming,
    thrashing,
)

Builder = Callable[[int, float], Trace]


@dataclass(frozen=True)
class ApplicationSpec:
    """One evaluated application."""

    abbr: str
    name: str
    suite: str
    pattern_type: PatternType
    builder: Builder
    notes: str = ""

    def build(self, seed: int = 0, scale: float = 1.0) -> Trace:
        """Materialise the application trace."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        trace = self.builder(seed, scale)
        trace.name = self.abbr
        trace.metadata.setdefault("suite", self.suite)
        trace.metadata.setdefault("application", self.name)
        trace.metadata.setdefault("pattern_type", self.pattern_type.roman)
        return trace

    @property
    def is_thrashing_type(self) -> bool:
        """Type II — selects RRIP's distant-insertion configuration."""
        return self.pattern_type is PatternType.THRASHING


def _pages(base: int, scale: float) -> int:
    """Scale a footprint, keeping it page-set aligned and non-trivial."""
    return max(64, int(base * scale) // 16 * 16)


# ----------------------------------------------------------------------
# Special-case builders
# ----------------------------------------------------------------------


def _build_gem(seed: int, scale: float) -> Trace:
    """GEMM: stream A/C rows while re-sweeping the B matrix.

    The repeated B sweep interleaved 1:1 with single-use stream pages
    defeats LRU (the paper's type-I outlier in Fig. 3): between two
    touches of a B page, more distinct pages pass than fit in memory.
    """
    stream_pages = _pages(512, scale)
    b_pages = _pages(1856, scale)
    passes = 3
    stream = streaming(stream_pages, name="gem-stream")
    sweep = Trace(
        name="gem-b",
        pages=list(range(stream_pages, stream_pages + b_pages)) * passes,
        pattern_type=PatternType.THRASHING,
    )
    weight_b = max(1, round(len(sweep.pages) / len(stream.pages)))
    return interleave(
        "GEM", [stream, sweep], PatternType.STREAMING, weights=[1, weight_b]
    )


def _build_kmn(seed: int, scale: float) -> Trace:
    """K-means: per-page scattered re-references → irregular counters.

    Fig. 9 outlier: type III but classified irregular#2.  Also the
    largest footprint in the suite (the paper uses it to bound the
    classification overhead in §V-C).
    """
    footprint = _pages(4096, scale)
    rng = random.Random(seed)
    counts = [3 if rng.random() < 0.45 else 1 for _ in range(footprint)]
    return Trace(
        "KMN",
        episode_schedule(counts, 1500.0, rng),
        PatternType.PART_REPETITIVE,
    )


def _build_sad(seed: int, scale: float) -> Trace:
    """SAD: scattered re-references on 2-page blocks → irregular counters."""
    footprint = _pages(2560, scale)
    rng = random.Random(seed + 1)
    counts: list[int] = []
    while len(counts) < footprint:
        count = 3 if rng.random() < 0.4 else 1
        counts.extend([count, count])
    counts = counts[:footprint]
    return Trace(
        "SAD",
        episode_schedule(counts, 900.0, rng),
        PatternType.PART_REPETITIVE,
    )


def _build_srd(seed: int, scale: float) -> Trace:
    """SRAD v2: repeated stencil sweeps with a wide hot window.

    Each iteration sweeps the footprint with every page touched three
    times across a ~200-fault window (neighbouring stencil rows share
    pages).  The window extends past HPE's old-partition boundary, so
    MRU-C's eviction from the MRU end of the old partition hits pages
    that are still hot — the paper's "instant thrashing" for SRD, which
    the dynamic adjustment repairs by jumping the search point (§IV-E).
    """
    footprint = _pages(3072, scale)
    rng = random.Random(seed)
    pages: list[int] = []
    for _ in range(3):
        pages.extend(episode_schedule([3] * footprint, 100.0, rng))
    return Trace(
        "SRD", pages, PatternType.THRASHING, metadata={"iterations": 3}
    )


def _build_stn(seed: int, scale: float) -> Trace:
    """Stencil: repeated sweeps over a small footprint.

    Small enough that the old partition holds fewer than 4 × page-set-size
    sets when memory first fills, so HPE's jump adjustment is gated off
    (Section IV-E: jumping hurts small-footprint applications).
    """
    footprint = _pages(768, scale)
    return thrashing(footprint, iterations=8, name="STN")


def _build_nw(seed: int, scale: float) -> Trace:
    """Needleman–Wunsch: growing even-page wavefront, then the odd pages.

    Section IV-C's division example.  Each wave re-sweeps all previously
    touched pages and faults in one more strip, so page-walk hits keep
    flowing through HIR while faults keep triggering transfers; page-set
    counters saturate at 64 with only the even bits populated — exactly
    the condition that divides a page set into primary and secondary.
    """
    footprint = _pages(3840, scale)
    even = list(range(0, footprint, 2))
    odd = list(range(1, footprint, 2))
    waves = 15

    def wavefront(pages: list[int]) -> list[int]:
        strip = max(1, len(pages) // waves)
        out: list[int] = []
        for wave in range(1, waves + 1):
            out.extend(pages[: min(wave * strip, len(pages))])
        return out

    return Trace(
        "NW",
        wavefront(even) + wavefront(odd),
        PatternType.MOST_REPETITIVE,
        metadata={"waves": waves},
    )


def _build_bfs(seed: int, scale: float) -> Trace:
    """BFS: frontier passes followed by two marginal re-visit loops.

    The frontier phase saturates page-set counters with regular values,
    so BFS classifies irregular#1 and starts with LRU — the paper's
    canonical misclassification (Section IV-E).  The loops then sweep
    slightly more pages than fit in memory at the 50% and 75%
    oversubscription rates respectively; LRU thrashes with a refault gap
    inside the wrong-eviction FIFO, and the dynamic adjustment switches
    to MRU-C under both rates (Fig. 13).
    """
    footprint = _pages(5760, scale)
    frontier = most_repetitive(
        footprint, repeats_range=(3, 3), seed=seed, name="bfs-frontier"
    )
    loop_50 = thrashing(
        max(64, int(footprint * 0.50) + int(80 * scale)),
        iterations=3,
        name="bfs-loop50",
    )
    loop_75 = thrashing(
        max(64, int(footprint * 0.75) + int(80 * scale)),
        iterations=3,
        name="bfs-loop75",
    )
    return concatenate(
        "BFS", [frontier, loop_50, loop_75], PatternType.MOST_REPETITIVE
    )


def _build_mvt(seed: int, scale: float) -> Trace:
    """MVT: stride-4 matrix rows with the vector re-read per row strip.

    The stride leaves only 4 touched pages per page set: counters of 12
    are indivisible by 16, classifying MVT as irregular#2, and HIR
    entries record only a quarter of their counter vector (the §V-B
    "wasted entry space" effect).  The vector pages are re-swept against
    every strip of matrix rows (y = A·x reads x per row), which keeps
    them recent in the chain.
    """
    row_span = _pages(6144, scale)
    vector_pages = max(64, _pages(192, scale))
    rows = list(range(0, row_span, 4))
    vector = list(range(row_span, row_span + vector_pages))
    strip = 512
    pages: list[int] = []
    for start in range(0, len(rows), strip):
        chunk = rows[start:start + strip]
        pages.extend(
            region_passes([3] * len(chunk), region_pages=strip, base_pages=chunk)
        )
        pages.extend(vector)
    return Trace(
        "MVT",
        pages,
        PatternType.MOST_REPETITIVE,
        metadata={"stride": 4},
    )


def _build_his(seed: int, scale: float) -> Trace:
    """Histogram: streamed input, irregular hot bins, marginal loops.

    The per-page bin counts classify HIS as irregular#2 (start LRU); the
    trailing loops — sized just above the 50% and 75% memory capacities —
    make LRU thrash detectably, so HIS switches strategy under both
    oversubscription rates (Fig. 13).
    """
    input_pages = _pages(1536, scale)
    bin_pages = max(64, _pages(512, scale))
    footprint = input_pages + bin_pages
    rng = random.Random(seed)
    stream = streaming(input_pages, name="his-input")
    bins = list(range(input_pages, input_pages + bin_pages))
    counts = [rng.randint(1, 6) for _ in bins]
    hot = Trace(
        "his-bins",
        episode_schedule(counts, 1200.0, rng, base_pages=bins),
        PatternType.MOST_REPETITIVE,
    )
    fill = interleave(
        "his-fill", [stream, hot], PatternType.REPETITIVE_THRASHING,
        weights=[2, 3],
    )
    loop_50 = thrashing(
        max(64, int(footprint * 0.50) + int(80 * scale)),
        iterations=3,
        name="his-loop50",
    )
    loop_75 = thrashing(
        max(64, int(footprint * 0.75) + int(80 * scale)),
        iterations=3,
        name="his-loop75",
    )
    return concatenate(
        "HIS", [fill, loop_50, loop_75], PatternType.REPETITIVE_THRASHING
    )


def _build_spv(seed: int, scale: float) -> Trace:
    """SpMV: region sweeps with per-page-irregular gather counts."""
    footprint = _pages(2304, scale)
    rng = random.Random(seed)
    counts = [rng.choice((1, 1, 2, 3, 5)) for _ in range(footprint)]
    return Trace(
        "SPV",
        region_passes(counts),
        PatternType.REPETITIVE_THRASHING,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def _spec(
    abbr: str,
    name: str,
    suite: str,
    pattern: PatternType,
    builder: Builder,
    notes: str = "",
) -> ApplicationSpec:
    return ApplicationSpec(
        abbr=abbr,
        name=name,
        suite=suite,
        pattern_type=pattern,
        builder=builder,
        notes=notes,
    )


APPLICATIONS: dict[str, ApplicationSpec] = {
    spec.abbr: spec
    for spec in [
        # ---- Type I: streaming --------------------------------------
        _spec(
            "HOT", "hotspot", "Rodinia", PatternType.STREAMING,
            lambda s, k: streaming(_pages(2048, k), name="HOT"),
        ),
        _spec(
            "LEU", "leukocyte", "Rodinia", PatternType.STREAMING,
            lambda s, k: streaming(_pages(1536, k), name="LEU"),
        ),
        _spec(
            "CUT", "cutcp", "Parboil", PatternType.STREAMING,
            lambda s, k: streaming(_pages(1792, k), name="CUT"),
        ),
        _spec(
            "2DC", "2DCONV", "Polybench", PatternType.STREAMING,
            lambda s, k: streaming(_pages(2304, k), name="2DC"),
        ),
        _spec(
            "GEM", "GEMM", "Polybench", PatternType.STREAMING,
            _build_gem,
            notes="type-I outlier: repeated B sweep defeats LRU (Fig. 3)",
        ),
        # ---- Type II: thrashing -------------------------------------
        _spec(
            "SRD", "srad_v2", "Rodinia", PatternType.THRASHING,
            _build_srd,
            notes="MRU-C instant thrashing; adjusts search point (Fig. 13)",
        ),
        _spec(
            "HSD", "hotspot3D", "Rodinia", PatternType.THRASHING,
            lambda s, k: thrashing(_pages(1536, k), iterations=12, name="HSD"),
            notes="paper's best case: 2.81x over LRU at 75%",
        ),
        _spec(
            "MRQ", "mri-q", "Parboil", PatternType.THRASHING,
            lambda s, k: thrashing(_pages(2560, k), iterations=4, name="MRQ"),
        ),
        _spec(
            "STN", "stencil", "Parboil", PatternType.THRASHING,
            _build_stn,
            notes="small footprint: jump adjustment is gated off (§IV-E)",
        ),
        # ---- Type III: part repetitive ------------------------------
        _spec(
            "PAT", "pathfinder", "Rodinia", PatternType.PART_REPETITIVE,
            lambda s, k: part_repetitive(_pages(2048, k), 0.30, 2, seed=s, name="PAT"),
        ),
        _spec(
            "DWT", "dwt2d", "Rodinia", PatternType.PART_REPETITIVE,
            lambda s, k: part_repetitive(_pages(1792, k), 0.35, 2, seed=s + 1, name="DWT"),
        ),
        _spec(
            "BKP", "backprop", "Rodinia", PatternType.PART_REPETITIVE,
            lambda s, k: part_repetitive(_pages(2304, k), 0.25, 2, seed=s + 2, name="BKP"),
        ),
        _spec(
            "KMN", "kmeans", "Rodinia", PatternType.PART_REPETITIVE,
            _build_kmn,
            notes="Fig. 9 outlier: irregular counters -> irregular#2",
        ),
        _spec(
            "SAD", "sad", "Parboil", PatternType.PART_REPETITIVE,
            _build_sad,
            notes="Fig. 9 outlier: irregular counters -> irregular#2",
        ),
        # ---- Type IV: most repetitive -------------------------------
        _spec(
            "NW", "nw", "Rodinia", PatternType.MOST_REPETITIVE,
            _build_nw,
            notes="even/odd phases drive page-set division (§IV-C)",
        ),
        _spec(
            "BFS", "bfs", "Rodinia", PatternType.MOST_REPETITIVE,
            _build_bfs,
            notes="misclassified; dynamic adjustment switches to MRU-C",
        ),
        _spec(
            "MVT", "MVT", "Polybench", PatternType.MOST_REPETITIVE,
            _build_mvt,
            notes="stride-4 pages waste HIR entries (§V-B)",
        ),
        # ---- Type V: repetitive thrashing ---------------------------
        _spec(
            "HWL", "heartwall", "Rodinia", PatternType.REPETITIVE_THRASHING,
            lambda s, k: repetitive_thrashing(
                _pages(5120, k), iterations=2, repeats_range=(3, 3),
                seed=s + 5, name="HWL",
            ),
        ),
        _spec(
            "SGM", "sgemm", "Parboil", PatternType.REPETITIVE_THRASHING,
            lambda s, k: repetitive_thrashing(
                _pages(1792, k), iterations=3, repeats_range=(2, 2),
                seed=s + 6, region_pages=64, name="SGM",
            ),
            notes="Fig. 9 outlier: small ratio1 -> classified regular",
        ),
        _spec(
            "HIS", "histo", "Parboil", PatternType.REPETITIVE_THRASHING,
            _build_his,
        ),
        _spec(
            "SPV", "spmv", "Parboil", PatternType.REPETITIVE_THRASHING,
            _build_spv,
        ),
        # ---- Type VI: region moving ---------------------------------
        _spec(
            "B+T", "b+tree", "Rodinia", PatternType.REGION_MOVING,
            lambda s, k: region_moving(
                _pages(5120, k), num_regions=5, repeats_range=(3, 4),
                seed=s + 7, name="B+T",
            ),
        ),
        _spec(
            "HYB", "hybridsort", "Rodinia", PatternType.REGION_MOVING,
            lambda s, k: region_moving(
                _pages(5632, k), num_regions=5, repeats_range=(3, 4),
                seed=s + 8, name="HYB",
            ),
        ),
    ]
}

#: Paper presentation order: grouped by pattern type (Table II).
APPLICATION_ORDER: list[str] = [
    "HOT", "LEU", "CUT", "2DC", "GEM",          # I
    "SRD", "HSD", "MRQ", "STN",                 # II
    "PAT", "DWT", "BKP", "KMN", "SAD",          # III
    "NW", "BFS", "MVT",                         # IV
    "HWL", "SGM", "HIS", "SPV",                 # V
    "B+T", "HYB",                               # VI
]


def get_application(abbr: str) -> ApplicationSpec:
    """Look up an application by its Table II abbreviation."""
    try:
        return APPLICATIONS[abbr.upper()]
    except KeyError:
        known = ", ".join(APPLICATION_ORDER)
        raise KeyError(f"unknown application {abbr!r}; known: {known}") from None


def applications_of_type(pattern: PatternType) -> list[ApplicationSpec]:
    """All applications with the given pattern type, in paper order."""
    return [
        APPLICATIONS[abbr]
        for abbr in APPLICATION_ORDER
        if APPLICATIONS[abbr].pattern_type is pattern
    ]


def all_applications() -> list[ApplicationSpec]:
    """Every application in paper (Table II) order."""
    return [APPLICATIONS[abbr] for abbr in APPLICATION_ORDER]


#: Hand-picked eviction strategy per application, used by the Section V-A
#: sensitivity studies ("we turned off dynamic adjustment and selected an
#: appropriate eviction strategy for each application manually").
#: "mru-c" for the applications that end up on MRU-C in Fig. 13, "lru"
#: for the ones that stay on LRU.
MANUAL_STRATEGY: dict[str, str] = {
    "HOT": "mru-c", "LEU": "mru-c", "CUT": "mru-c", "2DC": "mru-c",
    "GEM": "mru-c", "SRD": "mru-c", "HSD": "mru-c", "MRQ": "mru-c",
    "STN": "mru-c", "PAT": "mru-c", "DWT": "mru-c", "BKP": "mru-c",
    "SGM": "mru-c", "BFS": "mru-c",
    "KMN": "lru", "SAD": "lru", "NW": "lru", "MVT": "lru",
    "HWL": "lru", "HIS": "lru", "SPV": "lru", "B+T": "lru", "HYB": "lru",
}
