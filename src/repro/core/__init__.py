"""HPE core: the paper's contribution (Section IV)."""

from repro.core.adjustment import (
    AdjustmentStats,
    DynamicAdjustment,
    EvictionFIFO,
    StrategySegment,
)
from repro.core.chain import PageSetChain
from repro.core.classifier import (
    Category,
    Classification,
    CounterCensus,
    census_counters,
    classify,
)
from repro.core.hir import HIRCache, HIRStats
from repro.core.history import HistoryBuffer
from repro.core.hpe import HPEConfig, HPEPolicy, HPEStats
from repro.core.pageset import (
    COUNTER_CAP,
    PageSetEntry,
    SetPart,
    primary_key,
    secondary_key,
)
from repro.core.strategies import (
    SearchResult,
    StrategyKind,
    select,
    select_lru,
    select_mru_c,
)

__all__ = [
    "AdjustmentStats",
    "COUNTER_CAP",
    "Category",
    "Classification",
    "CounterCensus",
    "DynamicAdjustment",
    "EvictionFIFO",
    "HIRCache",
    "HIRStats",
    "HPEConfig",
    "HPEPolicy",
    "HPEStats",
    "HistoryBuffer",
    "PageSetChain",
    "PageSetEntry",
    "SearchResult",
    "SetPart",
    "StrategyKind",
    "StrategySegment",
    "census_counters",
    "classify",
    "primary_key",
    "secondary_key",
    "select",
    "select_lru",
    "select_mru_c",
]
