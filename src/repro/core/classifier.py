"""Statistics-based application classification (Section IV-D, Table III).

When GPU memory fills to capacity for the first time, HPE traverses the
page set chain, buckets each entry's saturating counter, and computes two
ratios:

* ``ratio1`` — page sets with an *irregular* counter (indivisible by the
  page-set size) over page sets with a *regular* counter;
* ``ratio2`` — page sets with a *large and regular* counter (3× or 4× the
  page-set size) over page sets with a *small and regular* counter (1× or
  2× the page-set size).

Table III then maps the ratios to a category:

==============  ===================  ============
category        ratio1               ratio2
==============  ===================  ============
regular         ≤ threshold (0.3)    < 2
irregular#1     ≤ threshold          ≥ 2
irregular#2     > threshold          (any)
==============  ===================  ============
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable

#: Paper default classification threshold for ratio1 (Section V-A).
DEFAULT_RATIO1_THRESHOLD = 0.3

#: Paper threshold separating regular from irregular#1 via ratio2.
RATIO2_THRESHOLD = 2.0


class Category(enum.Enum):
    """The three application categories of Table III."""

    REGULAR = "regular"
    IRREGULAR_1 = "irregular#1"
    IRREGULAR_2 = "irregular#2"


@dataclass(frozen=True)
class CounterCensus:
    """Bucketed page-set counters at classification time."""

    regular: int
    irregular: int
    small_regular: int
    large_regular: int

    @property
    def total(self) -> int:
        """Total page sets inspected."""
        return self.regular + self.irregular

    @property
    def ratio1(self) -> float:
        """irregular / regular (``inf`` when nothing is regular)."""
        if not self.regular:
            return math.inf if self.irregular else 0.0
        return self.irregular / self.regular

    @property
    def ratio2(self) -> float:
        """large&regular / small&regular (``inf`` when none are small)."""
        if not self.small_regular:
            return math.inf if self.large_regular else 0.0
        return self.large_regular / self.small_regular


@dataclass(frozen=True)
class Classification:
    """Outcome of one classification pass."""

    category: Category
    census: CounterCensus
    #: Number of counters traversed (for the overhead analysis, §V-C).
    comparisons: int


def census_counters(counters: Iterable[int], page_set_size: int) -> CounterCensus:
    """Bucket ``counters`` into the four counter types of Section IV-D."""
    if page_set_size <= 0:
        raise ValueError(f"page_set_size must be positive, got {page_set_size}")
    regular = irregular = small = large = 0
    small_values = (page_set_size, 2 * page_set_size)
    large_values = (3 * page_set_size, 4 * page_set_size)
    for counter in counters:
        if counter <= 0:
            continue
        if counter % page_set_size:
            irregular += 1
        else:
            regular += 1
            if counter in small_values:
                small += 1
            elif counter in large_values:
                large += 1
    return CounterCensus(
        regular=regular,
        irregular=irregular,
        small_regular=small,
        large_regular=large,
    )


def classify(
    counters: Iterable[int],
    page_set_size: int,
    ratio1_threshold: float = DEFAULT_RATIO1_THRESHOLD,
) -> Classification:
    """Classify an application from its page-set counters (Table III)."""
    counters = list(counters)
    census = census_counters(counters, page_set_size)
    if census.ratio1 > ratio1_threshold:
        category = Category.IRREGULAR_2
    elif census.ratio2 >= RATIO2_THRESHOLD:
        category = Category.IRREGULAR_1
    else:
        category = Category.REGULAR
    return Classification(
        category=category,
        census=census,
        comparisons=len(counters),
    )
