"""The page set chain: three recency partitions over page-set entries.

Fig. 5 of the paper: the chain is ordered from head (least recent) to tail
(most recent) and split by two pointers into

* **old** partition — page sets not referenced in the last or current
  interval (head … P1);
* **middle** partition — page sets referenced in the last interval
  (P1 … P2);
* **new** partition — page sets referenced in the current interval
  (P2 … tail).

Since PR 9 the chain is realised as a struct-of-arrays index-linked
list (:class:`repro.core.soa.ArrayChain`): one ``key -> slot`` dict,
flat ``prev``/``next`` arrays, and an interval stamp per slot from
which the partition is *derived*.  Advancing the interval
(P1 ← P2, P2 ← tail) is an O(1) pointer splice instead of an
``OrderedDict`` merge, and a lookup is one dict probe instead of up to
three.  The original three-``OrderedDict`` implementation is retained
below as :class:`ReferencePageSetChain` — the oracle for the seeded
metamorphic equivalence tests in ``tests/core/test_soa.py``.

Update rules (Fig. 6 and its notes):

* a touched entry in *old*/*middle* moves to the MRU position of *new*;
* an entry already in *new* is **not** moved again this interval;
* new entries are inserted at the MRU position of *new*;
* a page set whose pages have all been evicted leaves the chain.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.core.pageset import PageSetEntry, SetPart
from repro.core.soa import MIDDLE, NEW, OLD, ArrayChain

SetKey = tuple[int, SetPart]


class PageSetChain:
    """Three-partition recency chain over :class:`PageSetEntry` objects."""

    def __init__(self, page_set_size: int) -> None:
        if page_set_size <= 0:
            raise ValueError(
                f"page_set_size must be positive, got {page_set_size}"
            )
        self.page_set_size = page_set_size
        self._chain = ArrayChain()

    @property
    def intervals(self) -> int:
        """Number of completed intervals (partition advances)."""
        return self._chain.intervals

    @intervals.setter
    def intervals(self, value: int) -> None:
        self._chain.intervals = value

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: SetKey) -> Optional[PageSetEntry]:
        """Return the entry for ``key`` regardless of partition."""
        entry: Optional[PageSetEntry] = self._chain.get(key)
        return entry

    def __contains__(self, key: SetKey) -> bool:
        return key in self._chain

    def __len__(self) -> int:
        return len(self._chain)

    @property
    def old_size(self) -> int:
        """Number of entries in the old partition."""
        return self._chain.partition_sizes()[0]

    @property
    def middle_size(self) -> int:
        """Number of entries in the middle partition."""
        return self._chain.partition_sizes()[1]

    @property
    def new_size(self) -> int:
        """Number of entries in the new partition."""
        return self._chain.partition_sizes()[2]

    def partition_sizes(self) -> tuple[int, int, int]:
        """``(old, middle, new)`` sizes — one observability snapshot."""
        return self._chain.partition_sizes()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, entry: PageSetEntry) -> None:
        """Insert a brand-new entry at the MRU position of *new*."""
        self._chain.insert(entry.key, entry)

    def promote(self, key: SetKey) -> PageSetEntry:
        """Move a touched entry to the MRU position of *new*.

        Entries already in *new* are left in place, implementing the
        "only one movement per interval" rule.
        """
        entry: PageSetEntry = self._chain.promote(key)
        return entry

    def remove(self, key: SetKey) -> PageSetEntry:
        """Remove ``key`` from whichever partition holds it."""
        entry: PageSetEntry = self._chain.remove(key)
        return entry

    def advance_interval(self) -> None:
        """Advance the partition pointers: P1 ← P2, P2 ← tail."""
        self._chain.advance_interval()

    # ------------------------------------------------------------------
    # Iteration (for strategies and classification)
    # ------------------------------------------------------------------

    def iter_old_mru_first(self) -> Iterator[PageSetEntry]:
        """Old-partition entries from the MRU end toward the head."""
        return self._chain.iter_partition_reversed(OLD)

    def iter_old_lru_first(self) -> Iterator[PageSetEntry]:
        """Old-partition entries from the head (LRU end) toward P1."""
        return self._chain.iter_partition(OLD)

    def iter_lru_order(self) -> Iterator[PageSetEntry]:
        """All entries, least recent first: old, then middle, then new."""
        return self._chain.iter_payloads_lru()

    def iter_entries(self) -> Iterator[PageSetEntry]:
        """All entries in chain order (same as :meth:`iter_lru_order`)."""
        return self.iter_lru_order()

    def partition_items(
        self, partition: int
    ) -> Iterator[tuple[SetKey, PageSetEntry]]:
        """``(key, entry)`` pairs of one partition, least recent first.

        ``partition`` is one of :data:`repro.core.soa.OLD` /
        :data:`~repro.core.soa.MIDDLE` / :data:`~repro.core.soa.NEW`.
        The invariant sanitizer walks these instead of reaching into
        private partition dicts.
        """
        if partition not in (OLD, MIDDLE, NEW):
            raise ValueError(f"unknown partition index {partition}")
        return self._chain.iter_partition_items(partition)

    def lru_entry(self) -> Optional[PageSetEntry]:
        """The least-recent entry, honouring old → middle → new priority."""
        entry: Optional[PageSetEntry] = self._chain.first_payload()
        return entry

    def counters(self) -> list[int]:
        """Every entry's saturating counter (for classification)."""
        return [entry.counter for entry in self.iter_entries()]


class ReferencePageSetChain:
    """The pre-SoA three-``OrderedDict`` chain, kept as a test oracle.

    Behaviourally identical to :class:`PageSetChain`; the seeded
    metamorphic suite in ``tests/core/test_soa.py`` drives randomized
    op sequences through both and asserts every observable agrees.
    Production code must use :class:`PageSetChain`.
    """

    def __init__(self, page_set_size: int) -> None:
        if page_set_size <= 0:
            raise ValueError(
                f"page_set_size must be positive, got {page_set_size}"
            )
        self.page_set_size = page_set_size
        self._old: OrderedDict[SetKey, PageSetEntry] = OrderedDict()
        self._middle: OrderedDict[SetKey, PageSetEntry] = OrderedDict()
        self._new: OrderedDict[SetKey, PageSetEntry] = OrderedDict()
        #: Number of completed intervals (partition advances).
        self.intervals = 0

    def get(self, key: SetKey) -> Optional[PageSetEntry]:
        """Return the entry for ``key`` regardless of partition."""
        for partition in (self._new, self._middle, self._old):
            entry = partition.get(key)
            if entry is not None:
                return entry
        return None

    def __contains__(self, key: SetKey) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self._old) + len(self._middle) + len(self._new)

    def partition_sizes(self) -> tuple[int, int, int]:
        """``(old, middle, new)`` sizes."""
        return len(self._old), len(self._middle), len(self._new)

    @property
    def old_size(self) -> int:
        """Number of entries in the old partition."""
        return len(self._old)

    @property
    def middle_size(self) -> int:
        """Number of entries in the middle partition."""
        return len(self._middle)

    @property
    def new_size(self) -> int:
        """Number of entries in the new partition."""
        return len(self._new)

    def insert(self, entry: PageSetEntry) -> None:
        """Insert a brand-new entry at the MRU position of *new*."""
        key = entry.key
        if key in self:
            raise ValueError(f"entry {key} is already in the chain")
        self._new[key] = entry

    def promote(self, key: SetKey) -> PageSetEntry:
        """Move a touched entry to the MRU position of *new*."""
        entry = self._new.get(key)
        if entry is not None:
            return entry
        for partition in (self._middle, self._old):
            entry = partition.pop(key, None)
            if entry is not None:
                self._new[key] = entry
                return entry
        raise KeyError(f"entry {key} is not in the chain")

    def remove(self, key: SetKey) -> PageSetEntry:
        """Remove ``key`` from whichever partition holds it."""
        for partition in (self._new, self._middle, self._old):
            entry = partition.pop(key, None)
            if entry is not None:
                return entry
        raise KeyError(f"entry {key} is not in the chain")

    def advance_interval(self) -> None:
        """Advance the partition pointers: P1 ← P2, P2 ← tail."""
        self._old.update(self._middle)
        self._middle = self._new
        self._new = OrderedDict()
        self.intervals += 1

    def iter_old_mru_first(self) -> Iterator[PageSetEntry]:
        """Old-partition entries from the MRU end toward the head."""
        for key in reversed(self._old):
            yield self._old[key]

    def iter_old_lru_first(self) -> Iterator[PageSetEntry]:
        """Old-partition entries from the head (LRU end) toward P1."""
        return iter(self._old.values())

    def iter_lru_order(self) -> Iterator[PageSetEntry]:
        """All entries, least recent first: old, then middle, then new."""
        for partition in (self._old, self._middle, self._new):
            yield from partition.values()

    def iter_entries(self) -> Iterator[PageSetEntry]:
        """All entries in chain order (same as :meth:`iter_lru_order`)."""
        return self.iter_lru_order()

    def partition_items(
        self, partition: int
    ) -> Iterator[tuple[SetKey, PageSetEntry]]:
        """``(key, entry)`` pairs of one partition, least recent first."""
        mapping = (self._old, self._middle, self._new)[partition]
        return iter(mapping.items())

    def lru_entry(self) -> Optional[PageSetEntry]:
        """The least-recent entry, honouring old → middle → new priority."""
        for partition in (self._old, self._middle, self._new):
            for entry in partition.values():
                return entry
        return None

    def counters(self) -> list[int]:
        """Every entry's saturating counter (for classification)."""
        return [entry.counter for entry in self.iter_entries()]
