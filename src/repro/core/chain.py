"""The page set chain: three recency partitions over page-set entries.

Fig. 5 of the paper: the chain is ordered from head (least recent) to tail
(most recent) and split by two pointers into

* **old** partition — page sets not referenced in the last or current
  interval (head … P1);
* **middle** partition — page sets referenced in the last interval
  (P1 … P2);
* **new** partition — page sets referenced in the current interval
  (P2 … tail).

We realise the pointers as three ordered dictionaries; advancing the
interval (P1 ← P2, P2 ← tail) merges *middle* into *old* and renames *new*
to *middle*.

Update rules (Fig. 6 and its notes):

* a touched entry in *old*/*middle* moves to the MRU position of *new*;
* an entry already in *new* is **not** moved again this interval;
* new entries are inserted at the MRU position of *new*;
* a page set whose pages have all been evicted leaves the chain.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.core.pageset import PageSetEntry, SetPart

SetKey = tuple[int, SetPart]


class PageSetChain:
    """Three-partition recency chain over :class:`PageSetEntry` objects."""

    def __init__(self, page_set_size: int) -> None:
        if page_set_size <= 0:
            raise ValueError(
                f"page_set_size must be positive, got {page_set_size}"
            )
        self.page_set_size = page_set_size
        self._old: OrderedDict[SetKey, PageSetEntry] = OrderedDict()
        self._middle: OrderedDict[SetKey, PageSetEntry] = OrderedDict()
        self._new: OrderedDict[SetKey, PageSetEntry] = OrderedDict()
        #: Number of completed intervals (partition advances).
        self.intervals = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: SetKey) -> Optional[PageSetEntry]:
        """Return the entry for ``key`` regardless of partition."""
        for partition in (self._new, self._middle, self._old):
            entry = partition.get(key)
            if entry is not None:
                return entry
        return None

    def __contains__(self, key: SetKey) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self._old) + len(self._middle) + len(self._new)

    @property
    def old_size(self) -> int:
        """Number of entries in the old partition."""
        return len(self._old)

    @property
    def middle_size(self) -> int:
        """Number of entries in the middle partition."""
        return len(self._middle)

    @property
    def new_size(self) -> int:
        """Number of entries in the new partition."""
        return len(self._new)

    def partition_sizes(self) -> tuple[int, int, int]:
        """``(old, middle, new)`` sizes — one observability snapshot."""
        return len(self._old), len(self._middle), len(self._new)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, entry: PageSetEntry) -> None:
        """Insert a brand-new entry at the MRU position of *new*."""
        key = entry.key
        if key in self:
            raise ValueError(f"entry {key} is already in the chain")
        self._new[key] = entry

    def promote(self, key: SetKey) -> PageSetEntry:
        """Move a touched entry to the MRU position of *new*.

        Entries already in *new* are left in place, implementing the
        "only one movement per interval" rule.
        """
        entry = self._new.get(key)
        if entry is not None:
            return entry
        for partition in (self._middle, self._old):
            entry = partition.pop(key, None)
            if entry is not None:
                self._new[key] = entry
                return entry
        raise KeyError(f"entry {key} is not in the chain")

    def remove(self, key: SetKey) -> PageSetEntry:
        """Remove ``key`` from whichever partition holds it."""
        for partition in (self._new, self._middle, self._old):
            entry = partition.pop(key, None)
            if entry is not None:
                return entry
        raise KeyError(f"entry {key} is not in the chain")

    def advance_interval(self) -> None:
        """Advance the partition pointers: P1 ← P2, P2 ← tail."""
        self._old.update(self._middle)
        self._middle = self._new
        self._new = OrderedDict()
        self.intervals += 1

    # ------------------------------------------------------------------
    # Iteration (for strategies and classification)
    # ------------------------------------------------------------------

    def iter_old_mru_first(self) -> Iterator[PageSetEntry]:
        """Old-partition entries from the MRU end toward the head."""
        for key in reversed(self._old):
            yield self._old[key]

    def iter_old_lru_first(self) -> Iterator[PageSetEntry]:
        """Old-partition entries from the head (LRU end) toward P1."""
        return iter(self._old.values())

    def iter_lru_order(self) -> Iterator[PageSetEntry]:
        """All entries, least recent first: old, then middle, then new."""
        for partition in (self._old, self._middle, self._new):
            yield from partition.values()

    def iter_entries(self) -> Iterator[PageSetEntry]:
        """All entries in chain order (same as :meth:`iter_lru_order`)."""
        return self.iter_lru_order()

    def lru_entry(self) -> Optional[PageSetEntry]:
        """The least-recent entry, honouring old → middle → new priority."""
        for partition in (self._old, self._middle, self._new):
            for entry in partition.values():
                return entry
        return None

    def counters(self) -> list[int]:
        """Every entry's saturating counter (for classification)."""
        return [entry.counter for entry in self.iter_entries()]
