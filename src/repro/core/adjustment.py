"""Dynamic strategy adjustment (Section IV-E, Algorithm 1).

Classification can be wrong (the paper's example: *BFS* is classified
irregular, yet LRU thrashes on a thrashing phase hidden in its page-walk
trace), and access behaviour can change at runtime.  HPE therefore tracks
*wrong evictions* — pages that fault again shortly after being evicted —
with one FIFO buffer per strategy holding the page addresses evicted in
the last two intervals (depth 128 = 2 × interval length by default).

When the active strategy's wrong-eviction counter reaches the page-set
size (16) within one interval, HPE adjusts:

* **regular** applications keep MRU-C but jump the search point forward
  by 16 page sets — *only* when the old partition held at least
  4 × page-set-size sets when memory first filled (small-footprint apps
  are left alone, as jumping hurts them);
* **irregular** applications switch between LRU and MRU-C, choosing "the
  strategy that is used for a longer time" (``longer_interval`` in
  Algorithm 1).  We realise that as: switch to the untried strategy
  first; afterwards, compare how many intervals each strategy *lasted*
  in its most recent stint before triggering — if the other strategy's
  last stint outlived the current one, switch, otherwise stay and reset
  the counter.  This makes a strategy that survives long stretches
  sticky (BFS settles on MRU-C) while a quickly-refuted experiment rolls
  back (HIS returns to LRU).  Algorithm 1 writes the loop for
  irregular#2; the BFS narrative and the Fig. 13 breakdown show
  irregular#1 applications switching too, so both irregular categories
  run it (configurable).

The per-strategy wrong-eviction counters reset at the end of every
interval, which filters one-off bursts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.classifier import Category
from repro.core.strategies import StrategyKind

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry


class EvictionFIFO:
    """Bounded FIFO of recently evicted page addresses with O(1) lookup."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.depth = depth
        self._pages: OrderedDict[int, None] = OrderedDict()

    def push(self, page: int) -> None:
        """Record an eviction, displacing the oldest record when full."""
        if page in self._pages:
            self._pages.move_to_end(page)
            return
        if len(self._pages) >= self.depth:
            self._pages.popitem(last=False)
        self._pages[page] = None

    def take(self, page: int) -> bool:
        """Return ``True`` (and consume the record) if ``page`` is held."""
        if page in self._pages:
            del self._pages[page]
            return True
        return False

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)


@dataclass
class StrategySegment:
    """One contiguous stretch of execution under a single strategy."""

    strategy: StrategyKind
    start_fault: int
    end_fault: int = -1  # -1 = still active
    #: Search-point jump in force during this segment (MRU-C only).
    jump: int = 0


@dataclass
class AdjustmentStats:
    """Counters summarising adjustment activity (feeds Fig. 13)."""

    wrong_evictions_total: int = 0
    strategy_switches: int = 0
    jump_adjustments: int = 0
    segments: list[StrategySegment] = field(default_factory=list)

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Fold the whole-run tallies into a ``MetricsRegistry``."""
        registry.inc("adjustment.wrong_evictions", self.wrong_evictions_total)
        registry.inc("adjustment.strategy_switches", self.strategy_switches)
        registry.inc("adjustment.jump_adjustments", self.jump_adjustments)
        registry.inc("adjustment.segments", len(self.segments))


class DynamicAdjustment:
    """Algorithm 1: per-category strategy selection and switching."""

    def __init__(
        self,
        category: Category,
        page_set_size: int = 16,
        fifo_depth: int = 128,
        jump_distance: int = 16,
        old_sets_at_first_full: int = 0,
        allow_irregular1_switch: bool = True,
        enabled: bool = True,
    ) -> None:
        self.category = category
        self.page_set_size = page_set_size
        self.wrong_eviction_threshold = page_set_size
        self.jump_distance = jump_distance
        self.enabled = enabled
        #: Gate for the regular-category jump adjustment (Section IV-E).
        self.jump_allowed = old_sets_at_first_full >= 4 * page_set_size
        self._switching_allowed = category is Category.IRREGULAR_2 or (
            category is Category.IRREGULAR_1 and allow_irregular1_switch
        )
        if category is Category.REGULAR:
            self._strategy = StrategyKind.MRU_C
        else:
            self._strategy = StrategyKind.LRU
        self.jump = 0
        self._fifos = {
            StrategyKind.LRU: EvictionFIFO(fifo_depth),
            StrategyKind.MRU_C: EvictionFIFO(fifo_depth),
        }
        self._wrong = {StrategyKind.LRU: 0, StrategyKind.MRU_C: 0}
        self._intervals_used = {StrategyKind.LRU: 0, StrategyKind.MRU_C: 0}
        #: Intervals survived by each strategy in its latest completed stint.
        self._last_stint = {StrategyKind.LRU: 0, StrategyKind.MRU_C: 0}
        self._current_stint = 0
        self._tried = {self._strategy}
        self._fault_count = 0
        #: Optional :class:`repro.obs.Observation` receiving switch/jump
        #: events; ``None`` (the default) keeps adjustment silent.
        self.obs = None
        self.stats = AdjustmentStats()
        self.stats.segments.append(
            StrategySegment(self._strategy, start_fault=0, jump=0)
        )

    @property
    def strategy(self) -> StrategyKind:
        """The strategy currently in force."""
        return self._strategy

    def on_eviction(self, page: int) -> None:
        """Record that the active strategy evicted ``page``."""
        self._fifos[self._strategy].push(page)

    def on_fault(self, page: int) -> None:
        """Check ``page`` against the wrong-eviction FIFOs; maybe adjust."""
        self._fault_count += 1
        for kind, fifo in self._fifos.items():
            if fifo.take(page):
                self._wrong[kind] += 1
                self.stats.wrong_evictions_total += 1
                break
        if not self.enabled:
            return
        if self._wrong[self._strategy] >= self.wrong_eviction_threshold:
            self._adjust()

    def on_interval_end(self) -> None:
        """Reset the per-interval wrong-eviction counters (Section IV-E)."""
        self._intervals_used[self._strategy] += 1
        self._current_stint += 1
        for kind in self._wrong:
            self._wrong[kind] = 0

    def _adjust(self) -> None:
        self._wrong[self._strategy] = 0
        if self.category is Category.REGULAR:
            if self.jump_allowed:
                self.jump += self.jump_distance
                self.stats.jump_adjustments += 1
                if self.obs is not None:
                    self.obs.emit(
                        "jump", fault_number=self._fault_count, jump=self.jump
                    )
                self._begin_segment(self._strategy)
            return
        if not self._switching_allowed:
            return
        other = (
            StrategyKind.MRU_C
            if self._strategy is StrategyKind.LRU
            else StrategyKind.LRU
        )
        if other not in self._tried:
            target = other
        elif self._last_stint[other] > self._current_stint:
            target = other
        else:
            target = self._strategy
        if target is not self._strategy:
            previous = self._strategy
            self._last_stint[previous] = self._current_stint
            self._current_stint = 0
            self._strategy = target
            self._tried.add(target)
            self.stats.strategy_switches += 1
            if self.obs is not None:
                self.obs.emit(
                    "strategy_switch",
                    fault_number=self._fault_count,
                    from_strategy=previous.value,
                    to_strategy=target.value,
                )
            self._begin_segment(target)

    def _begin_segment(self, strategy: StrategyKind) -> None:
        current = self.stats.segments[-1]
        current.end_fault = self._fault_count
        self.stats.segments.append(
            StrategySegment(strategy, start_fault=self._fault_count, jump=self.jump)
        )

    def timeline(self, total_faults: int) -> list[StrategySegment]:
        """Return closed segments covering ``[0, total_faults)``.

        A stale/small ``total_faults`` (e.g. a caller passing a count
        captured before the final adjustment) must never yield a segment
        with ``end_fault < start_fault``, so the final segment's end is
        clamped to its own start.
        """
        segments = [
            StrategySegment(s.strategy, s.start_fault, s.end_fault, s.jump)
            for s in self.stats.segments
        ]
        if segments and segments[-1].end_fault < 0:
            last = segments[-1]
            last.end_fault = max(total_faults, last.start_fault)
        return segments
