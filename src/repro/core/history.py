"""History buffer for divided page sets (Section IV-C).

When a *divided* primary page set is removed from the chain, its metadata
(tag and bit vector) is recorded here so later touches can be routed to
the correct half: "pages that have been touched stay in the current page
set (called 'primary') and pages that have not been touched are put into a
new page set (called 'secondary')".

The paper notes that when a page set is divided more than once, "the
result of the first division is used due to better performance" — hence
first-write-wins semantics.
"""

from __future__ import annotations

from typing import Optional


class HistoryBuffer:
    """tag → primary-member bit vector, first write wins."""

    def __init__(self) -> None:
        self._records: dict[int, int] = {}
        self.lookups = 0

    def record(self, tag: int, primary_mask: int) -> bool:
        """Remember the first division of ``tag``.

        Returns ``True`` when the record was stored, ``False`` when a
        first division was already recorded (and therefore kept).
        """
        if tag in self._records:
            return False
        self._records[tag] = primary_mask
        return True

    def primary_mask(self, tag: int) -> Optional[int]:
        """Return the first-division primary mask for ``tag``, if any."""
        self.lookups += 1
        return self._records.get(tag)

    def __contains__(self, tag: int) -> bool:
        return tag in self._records

    def __len__(self) -> int:
        return len(self._records)
