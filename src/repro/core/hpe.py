"""HPE — the hierarchical page eviction policy (Section IV).

This module assembles the paper's pieces into one
:class:`repro.policies.base.EvictionPolicy`:

* page-walk hits are recorded GPU-side in the :class:`~repro.core.hir.HIRCache`
  and ingested into the driver-side page set chain every
  ``transfer_interval``-th page fault (16 by default);
* page faults update the chain immediately (set the bit vector, bump the
  saturating counter, move the set to the MRU end of the *new* partition);
* every ``interval_length`` faults (64) the chain partitions advance;
* when GPU memory first fills, the chain's counters classify the
  application (Table III) and fix the starting strategy;
* victims are chosen page-set-first (MRU-C or LRU over the old
  partition), then page-by-page in address order;
* wrong evictions drive the dynamic adjustment of Algorithm 1.

Setting ``use_hir=False`` reproduces the paper's "ideal model where page
walk hit information is transferred to the GPU driver directly without
using HIR" (used in the Section V-A sensitivity studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.adjustment import DynamicAdjustment
from repro.core.chain import PageSetChain
from repro.core.classifier import (
    DEFAULT_RATIO1_THRESHOLD,
    Category,
    Classification,
    classify,
)
from repro.core.hir import HIRCache
from repro.core.history import HistoryBuffer
from repro.core.pageset import (
    PageSetEntry,
    SetPart,
    primary_key,
    secondary_key,
)
from repro.core.strategies import SearchResult, StrategyKind, select
from repro.memory.addressing import PageSetGeometry
from repro.obs import finite_or_none as _finite_or_none

if TYPE_CHECKING:
    from repro.obs import Observation
    from repro.obs.registry import MetricsRegistry
from repro.policies.base import EvictionPolicy, PolicyError


@dataclass(frozen=True)
class HPEConfig:
    """All tunables of HPE, defaulting to the paper's chosen values."""

    page_set_size: int = 16
    interval_length: int = 64
    transfer_interval: int = 16
    ratio1_threshold: float = DEFAULT_RATIO1_THRESHOLD
    fifo_depth: int = 128
    jump_distance: int = 16
    hir_entries: int = 1024
    hir_associativity: int = 8
    #: ``False`` → the ideal hit-information model of Section V-A.
    use_hir: bool = True
    enable_adjustment: bool = True
    enable_division: bool = True
    #: Counter value at which a partially-populated set divides.  The
    #: paper divides at saturation (64) and notes that "if more page sets
    #: are divided by relaxing the division requirement, the performance
    #: of NW can be improved" — lower this to relax the requirement.
    division_threshold: int = 64
    allow_irregular1_switch: bool = True
    #: Override the classified category (sensitivity experiments).
    forced_category: Optional[Category] = None
    #: Pin the strategy, disabling classification-driven choice.
    forced_strategy: Optional[StrategyKind] = None

    def __post_init__(self) -> None:
        if self.page_set_size <= 0:
            raise ValueError("page_set_size must be positive")
        if self.interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if self.transfer_interval <= 0:
            raise ValueError("transfer_interval must be positive")
        if self.fifo_depth <= 0:
            raise ValueError("fifo_depth must be positive")
        if self.division_threshold <= 0:
            raise ValueError("division_threshold must be positive")


@dataclass
class HPEStats:
    """Observable internals used by the Section V evaluation."""

    faults: int = 0
    searches: int = 0
    comparisons_total: int = 0
    comparisons_max: int = 0
    divisions: int = 0
    hir_transfers: int = 0
    hir_bytes_transferred: int = 0

    @property
    def mean_comparisons(self) -> float:
        """Average comparisons per victim search (Fig. 14)."""
        if not self.searches:
            return 0.0
        return self.comparisons_total / self.searches


class HPEPolicy(EvictionPolicy):
    """Hierarchical page eviction, faithful to Section IV."""

    name = "hpe"
    uses_walk_hits = True

    def __init__(self, config: HPEConfig = HPEConfig()) -> None:
        self.config = config
        self.geometry = PageSetGeometry(config.page_set_size)
        self.chain = PageSetChain(config.page_set_size)
        self.hir = HIRCache(
            self.geometry,
            entries=config.hir_entries,
            associativity=config.hir_associativity,
        )
        self.history = HistoryBuffer()
        self.classification: Optional[Classification] = None
        self.adjustment: Optional[DynamicAdjustment] = None
        self.stats = HPEStats()
        self._full_mask = (1 << config.page_set_size) - 1
        self._resident_pages = 0
        self._pending_transfer_bytes = 0
        #: Optional :class:`repro.obs.Observation`; ``None`` keeps every
        #: hook a single pointer check on the fault path.
        self._obs = None
        # Per-fault hot-path copies of frozen config values (a chained
        # dataclass attribute read per fault is measurable on big runs).
        self._use_hir = config.use_hir
        self._transfer_interval = config.transfer_interval
        self._interval_length = config.interval_length

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_observation(self, obs: Observation) -> None:
        """Wire an :class:`repro.obs.Observation` into HPE's internals.

        Interval advances then record time-series snapshots, HIR ingests
        and classification/adjustment actions emit trace events.  Called
        by the engine before replay; never during one.
        """
        self._obs = obs
        if self.adjustment is not None:
            self.adjustment.obs = obs

    def _snapshot_interval(self, obs: Observation) -> None:
        """One per-interval snapshot of the observable internals.

        ``obs`` is the caller's already-``is not None``-checked handle,
        so this helper never re-reads ``self._obs``.
        """
        chain = self.chain
        old, middle, new = chain.partition_sizes()
        adjustment = self.adjustment
        obs.timeseries.record({
            "interval": chain.intervals,
            "fault_number": self.stats.faults,
            "old": old,
            "middle": middle,
            "new": new,
            "chain_length": old + middle + new,
            "resident_pages": self._resident_pages,
            "strategy": (
                adjustment.strategy.value if adjustment is not None else None
            ),
            "jump": adjustment.jump if adjustment is not None else 0,
            "wrong_evictions": (
                adjustment.stats.wrong_evictions_total
                if adjustment is not None else 0
            ),
            "hir_populated": self.hir.populated,
        })
        obs.registry.observe("hpe.chain.length", old + middle + new)
        obs.registry.observe("hpe.chain.old_size", old)
        obs.emit(
            "interval",
            interval=chain.intervals,
            fault_number=self.stats.faults,
            old=old,
            middle=middle,
            new=new,
        )

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Fold HPE / HIR / adjustment whole-run tallies into a registry."""
        stats = self.stats
        registry.inc("hpe.faults", stats.faults)
        registry.inc("hpe.searches", stats.searches)
        registry.inc("hpe.comparisons", stats.comparisons_total)
        registry.inc("hpe.divisions", stats.divisions)
        registry.inc("hpe.hir_ingests", stats.hir_transfers)
        registry.inc("hpe.hir_bytes", stats.hir_bytes_transferred)
        registry.inc("hpe.intervals", self.chain.intervals)
        registry.set_gauge("hpe.resident_pages", self._resident_pages)
        registry.set_gauge(
            "hpe.category",
            self.classification.category.value
            if self.classification is not None else "unclassified",
        )
        self.hir.stats.observe_into(registry)
        if self.adjustment is not None:
            self.adjustment.stats.observe_into(registry)

    # ------------------------------------------------------------------
    # Routing (Fig. 6 steps 1–4)
    # ------------------------------------------------------------------

    def _route(self, tag: int, offset: int) -> tuple[tuple[int, SetPart], int, bool]:
        """Return ``(chain key, member mask for creation, divided flag)``.

        Consults the history buffer first (the page set was previously
        evicted), then any live divided primary, defaulting to the
        undivided primary.
        """
        key, _entry, mask, divided = self._route_entry(tag, offset)
        return key, mask, divided

    def _route_entry(
        self, tag: int, offset: int
    ) -> tuple[tuple[int, SetPart], Optional[PageSetEntry], int, bool]:
        """:meth:`_route` plus the already-fetched live entry (or ``None``).

        The routing decision needs the live primary anyway; returning it
        saves the fault path a second three-partition chain search.
        """
        hist = self.history.primary_mask(tag)
        if hist is not None:
            if (hist >> offset) & 1:
                key = primary_key(tag)
                return key, self.chain.get(key), hist, True
            key = secondary_key(tag)
            return key, self.chain.get(key), self._full_mask & ~hist, True
        key = primary_key(tag)
        live = self.chain.get(key)
        if (
            live is not None
            and live.divided
            and not (live.member_mask >> offset) & 1
        ):
            key = secondary_key(tag)
            return (
                key,
                self.chain.get(key),
                self._full_mask & ~live.member_mask,
                True,
            )
        return key, live, self._full_mask, False

    def _get_or_create(
        self, key: tuple[int, SetPart], member_mask: int, divided: bool
    ) -> PageSetEntry:
        entry = self.chain.get(key)
        if entry is not None:
            return entry
        entry = PageSetEntry(
            tag=key[0],
            page_set_size=self.config.page_set_size,
            part=key[1],
            member_mask=member_mask,
            divided=divided and key[1] is SetPart.PRIMARY,
        )
        self.chain.insert(entry)
        return entry

    def _maybe_divide(self, entry: PageSetEntry) -> None:
        if not self.config.enable_division:
            return
        if entry.part is SetPart.SECONDARY or entry.divided:
            return
        if (
            entry.counter >= self.config.division_threshold
            and not entry.fully_populated
        ):
            if not entry.bit_vector:
                return  # nothing faulted yet; nothing to keep as primary
            entry.member_mask = entry.bit_vector
            entry.divided = True
            self.stats.divisions += 1

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def on_walk_hit(self, page: int) -> None:
        if self._use_hir:
            self.hir.record_hit(page)
            return
        tag, offset = self.geometry.split(page)
        self._apply_hit_touch(tag, offset, 1)

    def on_walk_hits(self, pages: Sequence[int]) -> None:
        if self._use_hir:
            self.hir.record_hits(list(pages))
            return
        split = self.geometry.split
        apply_touch = self._apply_hit_touch
        for page in pages:
            tag, offset = split(page)
            apply_touch(tag, offset, 1)

    def _apply_hit_touch(self, tag: int, offset: int, count: int) -> None:
        key, _mask, _divided = self._route(tag, offset)
        entry = self.chain.get(key)
        if entry is None:
            # Stale information: the set was fully evicted between the hit
            # being recorded and the transfer arriving.  Drop it.
            return
        entry.touch(count)
        self.chain.promote(key)
        self._maybe_divide(entry)

    def _ingest_hir(self) -> None:
        payload = self.hir.transfer()
        self.stats.hir_transfers += 1
        bytes_moved = self.hir.transfer_bytes(len(payload))
        self.stats.hir_bytes_transferred += bytes_moved
        self._pending_transfer_bytes += bytes_moved
        obs = self._obs
        if obs is not None:
            obs.registry.observe("hpe.hir.entries_per_transfer", len(payload))
            obs.emit(
                "hir_transfer",
                fault_number=self.stats.faults,
                entries=len(payload),
                bytes=bytes_moved,
            )
        for tag, counters in payload:
            for offset, count in enumerate(counters):
                if count:
                    self._apply_hit_touch(tag, offset, count)

    def on_page_in(self, page: int, fault_number: int) -> None:
        stats = self.stats
        stats.faults += 1
        adjustment = self.adjustment
        if adjustment is not None:
            adjustment.on_fault(page)
        if self._use_hir and stats.faults % self._transfer_interval == 0:
            self._ingest_hir()
        tag, offset = self.geometry.split(page)
        key, entry, member_mask, divided = self._route_entry(tag, offset)
        if entry is None:
            entry = PageSetEntry(
                tag=tag,
                page_set_size=self.config.page_set_size,
                part=key[1],
                member_mask=member_mask,
                divided=divided and key[1] is SetPart.PRIMARY,
            )
            self.chain.insert(entry)
        entry.record_fault(offset)
        self._resident_pages += 1
        self.chain.promote(key)
        self._maybe_divide(entry)
        if stats.faults % self._interval_length == 0:
            self.chain.advance_interval()
            if adjustment is not None:
                adjustment.on_interval_end()
            obs = self._obs
            if obs is not None:
                self._snapshot_interval(obs)

    # ------------------------------------------------------------------
    # Classification (lazy: runs when memory is first full)
    # ------------------------------------------------------------------

    def _classify_now(self) -> None:
        classification = classify(
            self.chain.counters(),
            self.config.page_set_size,
            self.config.ratio1_threshold,
        )
        if self.config.forced_category is not None:
            classification = Classification(
                category=self.config.forced_category,
                census=classification.census,
                comparisons=classification.comparisons,
            )
        self.classification = classification
        self.adjustment = DynamicAdjustment(
            category=classification.category,
            page_set_size=self.config.page_set_size,
            fifo_depth=self.config.fifo_depth,
            jump_distance=self.config.jump_distance,
            old_sets_at_first_full=self.chain.old_size,
            allow_irregular1_switch=self.config.allow_irregular1_switch,
            enabled=self.config.enable_adjustment,
        )
        obs = self._obs
        if obs is not None:
            self.adjustment.obs = obs
            census = classification.census
            obs.registry.set_gauge(
                "hpe.first_full.old_sets", self.chain.old_size
            )
            obs.emit(
                "classification",
                fault_number=self.stats.faults,
                category=classification.category.value,
                # inf (a zero denominator) is not valid JSON: send null.
                ratio1=_finite_or_none(census.ratio1),
                ratio2=_finite_or_none(census.ratio2),
            )

    @property
    def category(self) -> Optional[Category]:
        """The classified category, or ``None`` before memory first fills."""
        if self.classification is None:
            return None
        return self.classification.category

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def _current_strategy(self) -> StrategyKind:
        if self.config.forced_strategy is not None:
            return self.config.forced_strategy
        assert self.adjustment is not None
        return self.adjustment.strategy

    def select_victim(self) -> int:
        if self.classification is None:
            self._classify_now()
        strategy = self._current_strategy()
        jump = 0
        if strategy is StrategyKind.MRU_C and self.adjustment is not None:
            jump = self.adjustment.jump
        result: SearchResult = select(
            strategy, self.chain, self.config.page_set_size, jump
        )
        if result.entry is None:
            raise PolicyError("HPE chain is empty; nothing to evict")
        self.stats.searches += 1
        self.stats.comparisons_total += result.comparisons
        self.stats.comparisons_max = max(
            self.stats.comparisons_max, result.comparisons
        )
        entry = result.entry
        offset = entry.lowest_resident_offset()
        page = self.geometry.first_page_of(entry.tag) + offset
        entry.mark_evicted(offset)
        self._resident_pages -= 1
        if entry.resident_count == 0:
            self.chain.remove(entry.key)
            if entry.divided and entry.part is SetPart.PRIMARY:
                self.history.record(entry.tag, entry.member_mask)
        if self.adjustment is not None:
            self.adjustment.on_eviction(page)
        return page

    def select_victims_batch(self, count: int) -> list[int]:
        """Drain-based batch victim selection (fastpath v3, DESIGN §13).

        One strategy search picks a page-set entry; the batch then
        drains that entry's resident pages in ``lowest_resident_offset``
        order before searching again.  With no interleaved page-ins the
        chain is static between searches, so LRU-style strategies would
        re-select the same entry anyway; MRU_C's jump distance can move
        mid-drain after ``adjustment.on_eviction``, which is the
        documented metric-level relaxation (R3/R4) — per-page
        bookkeeping (mark_evicted, resident count, adjustment, divided
        history) still matches the sequential path page for page.
        """
        if count <= 0:
            return []
        if self.classification is None:
            self._classify_now()
        stats = self.stats
        adjustment = self.adjustment
        victims: list[int] = []
        entry: Optional[PageSetEntry] = None
        while len(victims) < count:
            if entry is None:
                strategy = self._current_strategy()
                jump = 0
                if strategy is StrategyKind.MRU_C and adjustment is not None:
                    jump = adjustment.jump
                result: SearchResult = select(
                    strategy, self.chain, self.config.page_set_size, jump
                )
                if result.entry is None:
                    raise PolicyError("HPE chain is empty; nothing to evict")
                stats.searches += 1
                stats.comparisons_total += result.comparisons
                stats.comparisons_max = max(
                    stats.comparisons_max, result.comparisons
                )
                entry = result.entry
            offset = entry.lowest_resident_offset()
            page = self.geometry.first_page_of(entry.tag) + offset
            entry.mark_evicted(offset)
            self._resident_pages -= 1
            if entry.resident_count == 0:
                self.chain.remove(entry.key)
                if entry.divided and entry.part is SetPart.PRIMARY:
                    self.history.record(entry.tag, entry.member_mask)
                entry = None
            if adjustment is not None:
                adjustment.on_eviction(page)
            victims.append(page)
        return victims

    # ------------------------------------------------------------------
    # Timing hooks
    # ------------------------------------------------------------------

    def consume_transfer_bytes(self) -> int:
        """Bytes of HIR payload shipped since the last call (for PCIe cost)."""
        taken = self._pending_transfer_bytes
        self._pending_transfer_bytes = 0
        return taken

    def resident_count(self) -> int:
        return self._resident_pages
