"""HIR — the "hit information record" cache (Section IV-B, Fig. 4).

A small set-associative cache beside the page-table walker.  Each entry
holds a page-set tag and a vector of per-page saturating counters (2 bits
each in hardware) recording how many page-walk *hits* each page of the set
received since the last transfer.

Every ``transfer_interval``-th page fault the touched entries are copied —
in first-touch order, to preserve a relaxed reference order — to a buffer
in GPU memory and shipped to the host GPU driver over PCIe, then the HIR
is flushed.  Way conflicts drop information (the paper accepts this; an
8-way, 1024-entry HIR avoids conflicts "for most applications except
MVT").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.memory.addressing import PageSetGeometry, is_power_of_two

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

#: Hardware counter width in bits (Section V-C overhead analysis).
COUNTER_BITS = 2

#: Saturation cap of one per-page hit counter.
COUNTER_MAX = (1 << COUNTER_BITS) - 1

#: Bytes per transferred HIR entry (48-bit tag + 16 × 2-bit counters).
ENTRY_BYTES = 10


@dataclass
class HIRStats:
    """Lifetime statistics of one HIR instance."""

    records: int = 0
    conflicts: int = 0
    #: Transfers that actually carried entries.
    transfers: int = 0
    #: Transfers triggered while no entry was touched (quiet intervals);
    #: counted apart so they cannot deflate the Fig. 15 mean.
    empty_transfers: int = 0
    entries_transferred: int = 0

    @property
    def total_transfers(self) -> int:
        """Every transfer the mechanism performed, payload or not."""
        return self.transfers + self.empty_transfers

    @property
    def mean_entries_per_transfer(self) -> float:
        """Average populated entries per *non-empty* transfer (Fig. 15).

        Empty transfers are excluded: an app with quiet intervals would
        otherwise report an artificially deflated mean.
        """
        if not self.transfers:
            return 0.0
        return self.entries_transferred / self.transfers

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Fold the lifetime tallies into a ``MetricsRegistry``."""
        registry.inc("hir.records", self.records)
        registry.inc("hir.conflicts", self.conflicts)
        registry.inc("hir.transfers", self.transfers)
        registry.inc("hir.empty_transfers", self.empty_transfers)
        registry.inc("hir.entries_transferred", self.entries_transferred)


class _HIREntry:
    """One HIR line: a page-set tag plus per-page hit counters."""

    __slots__ = ("tag", "counters")

    def __init__(self, tag: int, page_set_size: int) -> None:
        self.tag = tag
        self.counters = [0] * page_set_size


class HIRCache:
    """Set-associative page-walk-hit recorder.

    Parameters
    ----------
    geometry:
        Page-set geometry (defines tag/offset math and counter vector
        width).
    entries:
        Total number of lines (paper default 1024).
    associativity:
        Ways per set (paper default 8).
    """

    def __init__(
        self,
        geometry: PageSetGeometry,
        entries: int = 1024,
        associativity: int = 8,
    ) -> None:
        if entries <= 0 or associativity <= 0:
            raise ValueError("entries and associativity must be positive")
        if entries % associativity:
            raise ValueError("entries must be a multiple of associativity")
        num_sets = entries // associativity
        if not is_power_of_two(num_sets):
            raise ValueError("number of sets must be a power of two")
        self.geometry = geometry
        self.entries = entries
        self.associativity = associativity
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        self._sets: list[dict[int, _HIREntry]] = [dict() for _ in range(num_sets)]
        #: Tags in first-touch order since the last flush.
        self._touch_order: list[int] = []
        self.stats = HIRStats()

    @property
    def populated(self) -> int:
        """Number of currently touched entries."""
        return len(self._touch_order)

    def record_hit(self, page: int) -> bool:
        """Record one page-walk hit for ``page``.

        Returns ``False`` when the information was dropped because every
        way of the target set holds a different tag (way conflict).
        """
        self.stats.records += 1
        tag, offset = self.geometry.split(page)
        lines = self._sets[tag & self._set_mask]
        entry = lines.get(tag)
        if entry is None:
            if len(lines) >= self.associativity:
                self.stats.conflicts += 1
                return False
            entry = _HIREntry(tag, self.geometry.page_set_size)
            lines[tag] = entry
            self._touch_order.append(tag)
        counter = entry.counters[offset]
        if counter < COUNTER_MAX:
            entry.counters[offset] = counter + 1
        return True

    def record_hits(self, pages: "list[int]") -> None:
        """Record a batch of page-walk hits, page by page in order.

        Semantically identical to calling :meth:`record_hit` per page;
        consecutive pages in the same page set (the common case for
        strided traces) reuse the previous line without re-splitting.
        """
        self.stats.records += len(pages)
        shift = self.geometry.shift
        offset_mask = self.geometry.offset_mask
        page_set_size = self.geometry.page_set_size
        set_mask = self._set_mask
        associativity = self.associativity
        sets = self._sets
        touch_append = self._touch_order.append
        prev_tag = -1
        entry: "_HIREntry | None" = None
        for page in pages:
            tag = page >> shift
            if tag != prev_tag:
                prev_tag = tag
                lines = sets[tag & set_mask]
                entry = lines.get(tag)
                if entry is None:
                    if len(lines) >= associativity:
                        # Way conflict: drop this hit (and any repeats of
                        # the same tag until the tag changes).
                        self.stats.conflicts += 1
                        continue
                    entry = _HIREntry(tag, page_set_size)
                    lines[tag] = entry
                    touch_append(tag)
            elif entry is None:
                self.stats.conflicts += 1
                continue
            offset = page & offset_mask
            counters = entry.counters
            counter = counters[offset]
            if counter < COUNTER_MAX:
                counters[offset] = counter + 1

    def transfer(self) -> list[tuple[int, list[int]]]:
        """Copy out touched entries in first-touch order, then flush.

        Returns a list of ``(tag, counters)`` pairs — the payload that
        travels to the GPU driver along with the evicted page.
        """
        payload: list[tuple[int, list[int]]] = []
        for tag in self._touch_order:
            entry = self._sets[tag & self._set_mask][tag]
            payload.append((tag, entry.counters))
        self.flush()
        if payload:
            self.stats.transfers += 1
            self.stats.entries_transferred += len(payload)
        else:
            self.stats.empty_transfers += 1
        return payload

    def flush(self) -> None:
        """Drop every recorded hit.

        Entries only exist in sets reached through ``_touch_order`` (they
        are created nowhere else), so clearing just those sets empties
        the cache without sweeping the full set array every interval.
        """
        sets = self._sets
        mask = self._set_mask
        for tag in self._touch_order:
            sets[tag & mask].clear()
        self._touch_order.clear()

    def transfer_bytes(self, populated_entries: int) -> int:
        """Bytes on the wire for ``populated_entries`` HIR lines."""
        return populated_entries * ENTRY_BYTES
