"""Eviction strategies over the page set chain (Section IV-D).

Two strategies select the *page set* to evict from:

* **MRU-C** (MRU-counter based) — used for *regular* applications.
  Searches from the MRU position of the **old** partition for a page set
  whose counter equals the page-set size (a fully-populated,
  never-re-referenced set); if every counter is larger, it takes the
  minimum-counter (least frequently used) set.  Dynamic adjustment may
  move the search start point forward (toward the LRU end) by a fixed
  jump distance to pick "colder" sets.
* **LRU** — used for *irregular* applications: take the chain's least
  recent entry (old partition head; middle, then new when old is empty).

Both strategies only pick sets with at least one resident page (a chain
invariant removes fully-evicted sets, so every entry qualifies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.chain import PageSetChain
from repro.core.pageset import PageSetEntry


class StrategyKind(enum.Enum):
    """The two page-set selection strategies HPE alternates between."""

    LRU = "lru"
    MRU_C = "mru-c"


@dataclass
class SearchResult:
    """Outcome of one page-set selection."""

    entry: Optional[PageSetEntry]
    #: Number of chain entries examined (Fig. 14's search overhead).
    comparisons: int


def select_lru(chain: PageSetChain) -> SearchResult:
    """Pick the least-recent page set (old → middle → new priority)."""
    entry = chain.lru_entry()
    return SearchResult(entry=entry, comparisons=1 if entry else 0)


def select_mru_c(
    chain: PageSetChain,
    page_set_size: int,
    jump: int = 0,
) -> SearchResult:
    """MRU-C over the **old** partition, starting ``jump`` sets in.

    Falls back to the least-recent entry of the middle/new partitions when
    the old partition is empty (the paper: "If the old partition becomes
    empty, LRU is used to select eviction candidates in the middle
    partition or new partition").
    """
    if chain.old_size == 0:
        return select_lru(chain)
    # A jump past the end of the partition saturates at the LRU end
    # rather than wrapping back to the (hot) MRU end.
    effective_jump = min(jump, chain.old_size - 1)
    comparisons = 0
    best: Optional[PageSetEntry] = None
    for index, entry in enumerate(chain.iter_old_mru_first()):
        if index < effective_jump:
            continue
        comparisons += 1
        if entry.counter == page_set_size:
            return SearchResult(entry=entry, comparisons=comparisons)
        if best is None or entry.counter < best.counter:
            best = entry
    return SearchResult(entry=best, comparisons=comparisons)


def select(
    kind: StrategyKind,
    chain: PageSetChain,
    page_set_size: int,
    jump: int = 0,
) -> SearchResult:
    """Dispatch to the requested strategy."""
    if kind is StrategyKind.MRU_C:
        return select_mru_c(chain, page_set_size, jump)
    return select_lru(chain)
