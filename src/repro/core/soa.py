"""Struct-of-arrays backing stores for the hot simulation state.

PR 5's profile (DESIGN.md §9.4) showed the per-fault cost of the
object-per-page-set chain: three ``OrderedDict`` partitions probed in
sequence on every lookup, an ``O(middle)`` merge on every interval
advance, and a dict node per entry.  This module provides the flat
replacements behind the existing interfaces:

:class:`ArrayChain`
    The three-partition recency chain realised as index-linked
    ``prev``/``next`` arrays plus an interval *stamp* per slot.  The
    partition of a slot is **derived** (``intervals - stamp``), so
    advancing the interval is an O(1) pointer splice instead of an
    ``OrderedDict.update`` over the whole middle partition, and a
    lookup is one dict probe instead of up to three.

:class:`Bitmap`
    A set of non-negative ints backed by a flat boolean array (one byte
    per page instead of a hash-set entry), with a plain-``set``
    fallback when numpy is unavailable or the universe is too sparse.

Both structures are **bit-identical** in observable behaviour to the
object implementations they replace; ``tests/core/test_soa.py`` proves
it with seeded randomized op-sequence (metamorphic) equivalence runs
against the retained reference implementations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

try:  # numpy is optional at runtime (test extra); fall back, don't require.
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None  # type: ignore[assignment]

#: Partition indices of the three chain segments.
OLD, MIDDLE, NEW = 0, 1, 2

#: Above this element index a :class:`Bitmap` abandons the dense array
#: and degrades to plain-``set`` semantics (a sparse universe would
#: otherwise allocate one byte per *possible* element).
DENSE_LIMIT = 1 << 24


def numpy_available() -> bool:
    """``True`` when the array-backed fast representations are usable."""
    return np is not None


class ArrayChain:
    """Index-linked three-partition recency chain over arbitrary payloads.

    Slots live in flat ``prev``/``next`` integer arrays (numpy when
    available).  Each of the three partitions (*old*, *middle*, *new*)
    is a doubly-linked list threaded through those arrays with its own
    head/tail; a single ``key -> slot`` dict serves every lookup.

    The partition holding a slot is not stored — it is derived from the
    slot's interval *stamp*: a slot stamped in the current interval is
    *new*, one interval back is *middle*, anything older is *old*.
    :meth:`advance_interval` therefore only splices the middle list onto
    the old list (four pointer writes) and renames new to middle.

    Ordering semantics are exactly those of the three-``OrderedDict``
    reference implementation (:class:`repro.core.chain.ReferenceChain`):
    inserts and promotions append at the MRU end of *new*; the splice
    preserves relative order old-then-middle.
    """

    __slots__ = (
        "_prev", "_next", "_stamp", "_payloads", "_keys", "_slot",
        "_free", "_heads", "_tails", "_counts", "intervals",
    )

    def __init__(self, initial_capacity: int = 16) -> None:
        capacity = max(1, initial_capacity)
        if np is not None:
            self._prev = np.full(capacity, -1, dtype=np.int64)
            self._next = np.full(capacity, -1, dtype=np.int64)
            self._stamp = np.zeros(capacity, dtype=np.int64)
        else:  # pragma: no cover - numpy-free fallback, same semantics
            self._prev = [-1] * capacity
            self._next = [-1] * capacity
            self._stamp = [0] * capacity
        self._payloads: List[Any] = [None] * capacity
        self._keys: List[Any] = [None] * capacity
        self._slot: Dict[Any, int] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        #: Head/tail slot of each partition list (-1 = empty).
        self._heads: List[int] = [-1, -1, -1]
        self._tails: List[int] = [-1, -1, -1]
        self._counts: List[int] = [0, 0, 0]
        #: Number of completed intervals (partition advances).
        self.intervals = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, key: Any) -> bool:
        return key in self._slot

    def get(self, key: Any) -> Optional[Any]:
        """Payload stored under ``key`` regardless of partition."""
        slot = self._slot.get(key)
        if slot is None:
            return None
        return self._payloads[slot]

    def partition_sizes(self) -> Tuple[int, int, int]:
        """``(old, middle, new)`` entry counts."""
        counts = self._counts
        return counts[OLD], counts[MIDDLE], counts[NEW]

    def _partition_of_slot(self, slot: int) -> int:
        delta = self.intervals - int(self._stamp[slot])
        if delta <= 0:
            return NEW
        if delta == 1:
            return MIDDLE
        return OLD

    # ------------------------------------------------------------------
    # Linked-list surgery
    # ------------------------------------------------------------------

    def _alloc(self, key: Any, payload: Any) -> int:
        free = self._free
        if not free:
            self._grow()
        slot = free.pop()
        self._payloads[slot] = payload
        self._keys[slot] = key
        self._slot[key] = slot
        return slot

    def _grow(self) -> None:
        old_capacity = len(self._payloads)
        new_capacity = old_capacity * 2
        if np is not None:
            for name in ("_prev", "_next", "_stamp"):
                old_arr = getattr(self, name)
                arr = np.full(new_capacity, -1, dtype=np.int64)
                arr[:old_capacity] = old_arr
                setattr(self, name, arr)
        else:  # pragma: no cover - numpy-free fallback
            self._prev.extend([-1] * old_capacity)
            self._next.extend([-1] * old_capacity)
            self._stamp.extend([0] * old_capacity)
        self._payloads.extend([None] * old_capacity)
        self._keys.extend([None] * old_capacity)
        self._free.extend(range(new_capacity - 1, old_capacity - 1, -1))

    def _link_tail(self, slot: int, partition: int) -> None:
        tail = self._tails[partition]
        self._prev[slot] = tail
        self._next[slot] = -1
        if tail >= 0:
            self._next[tail] = slot
        else:
            self._heads[partition] = slot
        self._tails[partition] = slot
        self._counts[partition] += 1

    def _unlink(self, slot: int, partition: int) -> None:
        prev_slot = int(self._prev[slot])
        next_slot = int(self._next[slot])
        if prev_slot >= 0:
            self._next[prev_slot] = next_slot
        else:
            self._heads[partition] = next_slot
        if next_slot >= 0:
            self._prev[next_slot] = prev_slot
        else:
            self._tails[partition] = prev_slot
        self._counts[partition] -= 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key: Any, payload: Any) -> None:
        """Insert a brand-new entry at the MRU position of *new*."""
        if key in self._slot:
            raise ValueError(f"entry {key} is already in the chain")
        slot = self._alloc(key, payload)
        self._stamp[slot] = self.intervals
        self._link_tail(slot, NEW)

    def promote(self, key: Any) -> Any:
        """Move a touched entry to the MRU position of *new*.

        Entries already in *new* are left in place ("only one movement
        per interval").  Returns the payload; raises ``KeyError`` when
        absent.
        """
        slot = self._slot.get(key)
        if slot is None:
            raise KeyError(f"entry {key} is not in the chain")
        delta = self.intervals - int(self._stamp[slot])
        if delta <= 0:
            return self._payloads[slot]
        self._unlink(slot, MIDDLE if delta == 1 else OLD)
        self._stamp[slot] = self.intervals
        self._link_tail(slot, NEW)
        return self._payloads[slot]

    def remove(self, key: Any) -> Any:
        """Remove ``key`` from whichever partition holds it."""
        slot = self._slot.pop(key, None)
        if slot is None:
            raise KeyError(f"entry {key} is not in the chain")
        self._unlink(slot, self._partition_of_slot(slot))
        payload = self._payloads[slot]
        self._payloads[slot] = None
        self._keys[slot] = None
        self._free.append(slot)
        return payload

    def advance_interval(self) -> None:
        """Advance the partition pointers: P1 ← P2, P2 ← tail.

        O(1): the middle list is spliced onto the old list's tail (the
        reference semantics of ``old.update(middle)``), the new list
        becomes the middle list, and slot partitions re-derive from
        their stamps against the bumped interval counter.
        """
        heads = self._heads
        tails = self._tails
        middle_head = heads[MIDDLE]
        if middle_head >= 0:
            old_tail = tails[OLD]
            if old_tail >= 0:
                self._next[old_tail] = middle_head
                self._prev[middle_head] = old_tail
            else:
                heads[OLD] = middle_head
            tails[OLD] = tails[MIDDLE]
        heads[MIDDLE] = heads[NEW]
        tails[MIDDLE] = tails[NEW]
        heads[NEW] = -1
        tails[NEW] = -1
        counts = self._counts
        counts[OLD] += counts[MIDDLE]
        counts[MIDDLE] = counts[NEW]
        counts[NEW] = 0
        self.intervals += 1

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def _iter_list(self, partition: int) -> Iterator[int]:
        slot = self._heads[partition]
        nxt = self._next
        while slot >= 0:
            yield slot
            slot = int(nxt[slot])

    def _iter_list_reversed(self, partition: int) -> Iterator[int]:
        slot = self._tails[partition]
        prev = self._prev
        while slot >= 0:
            yield slot
            slot = int(prev[slot])

    def iter_payloads_lru(self) -> Iterator[Any]:
        """All payloads, least recent first: old, then middle, then new."""
        payloads = self._payloads
        for partition in (OLD, MIDDLE, NEW):
            for slot in self._iter_list(partition):
                yield payloads[slot]

    def iter_partition(self, partition: int) -> Iterator[Any]:
        """Payloads of one partition, least recent first."""
        payloads = self._payloads
        for slot in self._iter_list(partition):
            yield payloads[slot]

    def iter_partition_reversed(self, partition: int) -> Iterator[Any]:
        """Payloads of one partition, most recent first."""
        payloads = self._payloads
        for slot in self._iter_list_reversed(partition):
            yield payloads[slot]

    def iter_partition_items(self, partition: int) -> Iterator[Tuple[Any, Any]]:
        """``(key, payload)`` pairs of one partition, least recent first."""
        keys = self._keys
        payloads = self._payloads
        for slot in self._iter_list(partition):
            yield keys[slot], payloads[slot]

    def first_payload(self) -> Optional[Any]:
        """The least-recent payload (old → middle → new priority)."""
        payloads = self._payloads
        for partition in (OLD, MIDDLE, NEW):
            slot = self._heads[partition]
            if slot >= 0:
                return payloads[slot]
        return None


class Bitmap:
    """Set of non-negative ints over a flat boolean array.

    Drop-in for the ``set[int]`` operations the driver and the batch
    kernels use (``in``, ``add``, ``discard``, ``update``,
    ``isdisjoint``) at one byte per element of the (dense) universe.
    Elements at or above :data:`DENSE_LIMIT` — or every element when
    numpy is missing — switch the instance to an exact plain-``set``
    fallback, so behaviour never depends on the backing.
    """

    __slots__ = ("_bits", "_fallback")

    def __init__(self, initial_size: int = 1024) -> None:
        if np is not None:
            self._bits: Optional[Any] = np.zeros(
                max(1, initial_size), dtype=bool
            )
            self._fallback: Optional[set] = None
        else:  # pragma: no cover - numpy-free fallback
            self._bits = None
            self._fallback = set()

    def _degrade(self) -> set:
        """Switch to plain-set semantics (sparse/huge universe)."""
        bits = self._bits
        assert bits is not None and np is not None
        self._fallback = set(np.flatnonzero(bits).tolist())
        self._bits = None
        return self._fallback

    def _ensure(self, element: int) -> Any:
        """Grow the dense array to cover ``element``; may degrade."""
        bits = self._bits
        assert bits is not None and np is not None
        if element >= DENSE_LIMIT:
            return None
        size = bits.shape[0]
        new_size = size * 2
        while new_size <= element:
            new_size *= 2
        grown = np.zeros(new_size, dtype=bool)
        grown[:size] = bits
        self._bits = grown
        return grown

    def __contains__(self, element: int) -> bool:
        fallback = self._fallback
        if fallback is not None:
            return element in fallback
        bits = self._bits
        return 0 <= element < bits.shape[0] and bool(bits[element])

    def __len__(self) -> int:
        fallback = self._fallback
        if fallback is not None:
            return len(fallback)
        return int(self._bits.sum())

    def __iter__(self) -> Iterator[int]:
        fallback = self._fallback
        if fallback is not None:
            return iter(fallback)
        assert np is not None
        return iter(np.flatnonzero(self._bits).tolist())

    def add(self, element: int) -> None:
        if element < 0:
            # A negative element would wrap to the array tail under
            # numpy indexing and silently corrupt membership.
            raise ValueError(f"Bitmap elements must be >= 0, got {element}")
        fallback = self._fallback
        if fallback is not None:
            fallback.add(element)
            return
        bits = self._bits
        if element >= bits.shape[0]:
            bits = self._ensure(element)
            if bits is None:
                self._degrade().add(element)
                return
        bits[element] = True

    def discard(self, element: int) -> None:
        fallback = self._fallback
        if fallback is not None:
            fallback.discard(element)
            return
        bits = self._bits
        if 0 <= element < bits.shape[0]:
            bits[element] = False

    def update(self, elements: Iterable[int]) -> None:
        fallback = self._fallback
        if fallback is not None:
            fallback.update(elements)
            return
        assert np is not None
        arr = np.asarray(
            elements if isinstance(elements, (list, tuple)) else list(elements),
            dtype=np.int64,
        )
        if arr.size == 0:
            return
        if int(arr.min()) < 0:
            raise ValueError("Bitmap elements must be >= 0")
        top = int(arr.max())
        bits = self._bits
        if top >= bits.shape[0]:
            bits = self._ensure(top)
            if bits is None:
                self._degrade().update(arr.tolist())
                return
        bits[arr] = True

    def isdisjoint(self, elements: Iterable[int]) -> bool:
        fallback = self._fallback
        if fallback is not None:
            return fallback.isdisjoint(elements)
        assert np is not None
        arr = np.asarray(
            elements if isinstance(elements, (list, tuple)) else list(elements),
            dtype=np.int64,
        )
        if arr.size == 0:
            return True
        bits = self._bits
        in_range = arr[arr < bits.shape[0]]
        if in_range.size == 0:
            return True
        return not bool(bits[in_range].any())

    def dense_view(self) -> Optional[Any]:
        """The backing boolean array, or ``None`` in fallback mode.

        Vector consumers (the v3 kernel's residency classification) index
        this directly; mutating it mutates the bitmap.
        """
        return self._bits
