"""Page-set chain entries (Section IV-C, Fig. 5).

Each page set — a group of ``page_set_size`` virtually-contiguous pages —
has one entry in HPE's chain with four fields:

1. a **tag** (the page-set address);
2. a **saturating counter** of touches, capped at 64 ("once the counter
   reaches 64, it does not increase anymore");
3. a **bit vector** with one bit per page, set when the page has faulted
   ("only page faults update the bit vector");
4. a **flag** indicating whether the page set has been divided.

Divided page sets exist as a *primary* (the pages touched before the
counter saturated) and a *secondary* (the remaining pages); both carry the
same numeric tag, so chain keys are ``(tag, part)`` pairs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Saturation cap for the per-page-set touch counter (Section IV-C).
COUNTER_CAP = 64


class SetPart(enum.Enum):
    """Which half of a (possibly divided) page set an entry represents."""

    PRIMARY = "primary"
    SECONDARY = "secondary"

    # Chain keys are (tag, SetPart) tuples hashed on every chain lookup;
    # Enum.__hash__ is a Python-level call that shows up in simulation
    # profiles.  Members are singletons (also under pickle, which resolves
    # them by name), so the C-level identity hash is safe and much faster.
    __hash__ = object.__hash__


#: Chain key type: page-set tag plus primary/secondary discriminator.
SetKey = tuple


def primary_key(tag: int) -> tuple[int, SetPart]:
    """Return the chain key of the primary entry for ``tag``."""
    return (tag, SetPart.PRIMARY)


def secondary_key(tag: int) -> tuple[int, SetPart]:
    """Return the chain key of the secondary entry for ``tag``."""
    return (tag, SetPart.SECONDARY)


@dataclass
class PageSetEntry:
    """One entry of the page set chain."""

    tag: int
    page_set_size: int
    part: SetPart = SetPart.PRIMARY
    #: Saturating touch counter (faults + page-walk hits), capped at 64.
    counter: int = 0
    #: Bit i set ⇔ page at offset i has faulted (been migrated in).
    bit_vector: int = 0
    #: ``True`` once the set has been divided into primary + secondary.
    divided: bool = False
    #: Bit i set ⇔ page at offset i is currently resident in GPU memory.
    resident_mask: int = 0
    #: Offsets this entry owns (all of them until a division restricts it).
    member_mask: int = -1

    def __post_init__(self) -> None:
        if self.member_mask == -1:
            self.member_mask = (1 << self.page_set_size) - 1

    @property
    def key(self) -> tuple[int, SetPart]:
        """Chain key for this entry."""
        return (self.tag, self.part)

    def touch(self, count: int = 1) -> None:
        """Record ``count`` touches, saturating at :data:`COUNTER_CAP`."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.counter = min(COUNTER_CAP, self.counter + count)

    @property
    def saturated(self) -> bool:
        """``True`` once the counter has reached its cap."""
        return self.counter >= COUNTER_CAP

    def mark_faulted(self, offset: int) -> None:
        """Set the bit-vector bit for the page at ``offset``."""
        self._check_offset(offset)
        self.bit_vector |= 1 << offset

    def record_fault(self, offset: int) -> None:
        """One fault intake: touch once, mark faulted and resident.

        Fused form of ``touch(1)`` + :meth:`mark_faulted` +
        :meth:`mark_resident` for the per-fault hot path — identical
        semantics, one offset check instead of two.
        """
        self._check_offset(offset)
        if self.counter < COUNTER_CAP:
            self.counter += 1
        bit = 1 << offset
        self.bit_vector |= bit
        self.resident_mask |= bit

    def mark_resident(self, offset: int) -> None:
        """Record that the page at ``offset`` is resident."""
        self._check_offset(offset)
        self.resident_mask |= 1 << offset

    def mark_evicted(self, offset: int) -> None:
        """Record that the page at ``offset`` was evicted."""
        self._check_offset(offset)
        self.resident_mask &= ~(1 << offset)

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.page_set_size:
            raise ValueError(
                f"offset {offset} out of range for page set size "
                f"{self.page_set_size}"
            )
        if not (self.member_mask >> offset) & 1:
            raise ValueError(
                f"offset {offset} does not belong to the {self.part.value} "
                f"entry of page set {self.tag:#x}"
            )

    @property
    def populated_count(self) -> int:
        """Number of pages that have faulted into this entry."""
        return bin(self.bit_vector).count("1")

    @property
    def resident_count(self) -> int:
        """Number of this entry's pages currently resident."""
        return bin(self.resident_mask).count("1")

    @property
    def fully_populated(self) -> bool:
        """``True`` when every member page has faulted at least once."""
        return self.bit_vector & self.member_mask == self.member_mask

    def resident_offsets(self) -> list[int]:
        """Offsets of resident pages, in ascending (address) order."""
        mask = self.resident_mask
        return [i for i in range(self.page_set_size) if (mask >> i) & 1]

    def lowest_resident_offset(self) -> int:
        """Smallest resident offset (pages evict in address order).

        Raises
        ------
        ValueError
            If no page of this entry is resident.
        """
        mask = self.resident_mask
        if not mask:
            raise ValueError(f"page set {self.tag:#x} has no resident page")
        return (mask & -mask).bit_length() - 1
