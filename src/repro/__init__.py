"""repro — reproduction of "HPE: Hierarchical Page Eviction Policy for
Unified Memory in GPUs" (Yu, Childers, Huang, Qian, Wang; IEEE TCAD 2019).

Quickstart
----------
>>> from repro import HPEPolicy, LRUPolicy, simulate
>>> from repro.workloads import thrashing
>>> trace = thrashing(num_pages=2048, iterations=6)
>>> capacity = trace.capacity_for(0.75)
>>> hpe = simulate(trace.pages, HPEPolicy(), capacity)
>>> lru = simulate(trace.pages, LRUPolicy(), capacity)
>>> hpe.evictions < lru.evictions
True

Package layout
--------------
* :mod:`repro.core` — HPE itself (page set chain, HIR, classifier, …);
* :mod:`repro.policies` — LRU / Random / RRIP / CLOCK-Pro / Ideal baselines;
* :mod:`repro.memory`, :mod:`repro.tlb`, :mod:`repro.uvm` — the simulated
  GPU memory system;
* :mod:`repro.sim` — the trace-driven timing engine;
* :mod:`repro.workloads` — Fig. 2 pattern generators and the Table II suite;
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro.core.hpe import HPEConfig, HPEPolicy
from repro.policies import (
    ClockProPolicy,
    EvictionPolicy,
    FIFOPolicy,
    IdealPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    RRIPConfig,
    RRIPPolicy,
)
from repro.sim import GPUConfig, SimulationResult, UVMSimulator, simulate
from repro.workloads import PatternType, Trace

__version__ = "1.0.0"

__all__ = [
    "ClockProPolicy",
    "EvictionPolicy",
    "FIFOPolicy",
    "GPUConfig",
    "HPEConfig",
    "HPEPolicy",
    "IdealPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "PatternType",
    "RRIPConfig",
    "RRIPPolicy",
    "RandomPolicy",
    "SimulationResult",
    "Trace",
    "UVMSimulator",
    "simulate",
    "__version__",
]
