"""Trace analysis: reuse distances, miss-ratio curves, pattern inference."""

from repro.analysis.patterns import (
    PatternFeatures,
    extract_features,
    infer_pattern,
)
from repro.analysis.reuse import (
    COLD,
    ReuseProfile,
    belady_faults,
    belady_miss_curve,
    lru_miss_curve,
    profile,
    reuse_distances,
)

__all__ = [
    "COLD",
    "PatternFeatures",
    "ReuseProfile",
    "belady_faults",
    "belady_miss_curve",
    "extract_features",
    "infer_pattern",
    "lru_miss_curve",
    "profile",
    "reuse_distances",
]
