"""Reuse-distance analysis and miss-ratio curves.

Section III of the paper characterises workloads by when and how often
pages are re-referenced; this module provides the standard machinery to
do that quantitatively:

* **Reuse distance** (a.k.a. LRU stack distance): the number of distinct
  pages touched between two successive references to the same page.
  Computed for a whole trace in O(n log n) with a Fenwick tree.
* **LRU miss-ratio curve**: because LRU has the stack property, a single
  stack-distance pass yields LRU's fault count for *every* capacity at
  once — far cheaper than simulating each capacity.
* **Belady miss curve**: exact MIN fault counts per capacity (one
  simulation per capacity, using the engine-independent MIN loop).

These are the tools behind the workload-design decisions documented in
DESIGN.md (e.g. keeping re-references beyond the 512-page L2 TLB reach).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

#: Reuse distance reported for first-ever references.
COLD = -1


class _FenwickTree:
    """Binary indexed tree over trace positions (prefix sums of 0/1)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of elements at positions [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


def reuse_distances(trace: Sequence[int]) -> list[int]:
    """Per-reference LRU stack distances (:data:`COLD` for first touches).

    The distance counts *distinct* pages referenced strictly between two
    successive references to the same page.
    """
    tree = _FenwickTree(len(trace))
    last_position: dict[int, int] = {}
    distances: list[int] = []
    for position, page in enumerate(trace):
        previous = last_position.get(page)
        if previous is None:
            distances.append(COLD)
        else:
            # Distinct pages since `previous` = markers in (previous, position).
            distance = tree.prefix_sum(position - 1) - tree.prefix_sum(previous)
            distances.append(distance)
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[page] = position
    return distances


@dataclass
class ReuseProfile:
    """Summary statistics of a trace's reuse behaviour."""

    trace_length: int
    footprint: int
    cold_references: int
    distances: list[int]

    @property
    def reuse_fraction(self) -> float:
        """Fraction of references that re-reference a page."""
        if not self.trace_length:
            return 0.0
        return 1.0 - self.cold_references / self.trace_length

    @property
    def mean_reuse_distance(self) -> float:
        """Mean stack distance over re-references (0 when none)."""
        warm = [d for d in self.distances if d != COLD]
        if not warm:
            return 0.0
        return sum(warm) / len(warm)

    def distance_histogram(self, bucket_bounds: Sequence[int]) -> dict[str, int]:
        """Bucket warm re-reference distances by the given bounds."""
        bounds = sorted(bucket_bounds)
        labels = []
        previous = 0
        for bound in bounds:
            labels.append(f"{previous}-{bound - 1}")
            previous = bound
        labels.append(f">={previous}")
        counts = {label: 0 for label in labels}
        for distance in self.distances:
            if distance == COLD:
                continue
            slot = bisect_right(bounds, distance)
            counts[labels[slot]] += 1
        return counts


def profile(trace: Sequence[int]) -> ReuseProfile:
    """Compute a :class:`ReuseProfile` for ``trace``."""
    distances = reuse_distances(trace)
    return ReuseProfile(
        trace_length=len(trace),
        footprint=len(set(trace)),
        cold_references=sum(1 for d in distances if d == COLD),
        distances=distances,
    )


def lru_miss_curve(
    trace: Sequence[int],
    capacities: Sequence[int],
) -> dict[int, int]:
    """LRU fault counts for every capacity from one stack-distance pass.

    Uses the stack property: an access with stack distance *d* misses in
    an LRU memory of capacity *c* iff ``d >= c`` (cold misses always
    miss).
    """
    distances = reuse_distances(trace)
    cold = sum(1 for d in distances if d == COLD)
    warm = sorted(d for d in distances if d != COLD)
    curve: dict[int, int] = {}
    for capacity in capacities:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        # Warm accesses with distance >= capacity miss.
        first_hit = bisect_right(warm, capacity - 1)
        curve[capacity] = cold + (len(warm) - first_hit)
    return curve


def belady_faults(trace: Sequence[int], capacity: int) -> int:
    """Exact MIN fault count for one capacity (engine-independent)."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    occurrences: dict[int, list[int]] = {}
    for index, page in enumerate(trace):
        occurrences.setdefault(page, []).append(index)
    resident: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    faults = 0

    def next_use(page: int, position: int) -> float:
        positions = occurrences[page]
        index = bisect_right(positions, position)
        return positions[index] if index < len(positions) else float("inf")

    for position, page in enumerate(trace):
        if page in resident:
            key = next_use(page, position)
            resident[page] = key
            heapq.heappush(heap, (-key, page))
            continue
        faults += 1
        if len(resident) >= capacity:
            while heap:
                neg_key, victim = heapq.heappop(heap)
                if resident.get(victim) == -neg_key:
                    del resident[victim]
                    break
        key = next_use(page, position)
        resident[page] = key
        heapq.heappush(heap, (-key, page))
    return faults


def belady_miss_curve(
    trace: Sequence[int],
    capacities: Sequence[int],
) -> dict[int, int]:
    """MIN fault counts for each capacity (one pass per capacity)."""
    return {capacity: belady_faults(trace, capacity) for capacity in capacities}
