"""Automatic access-pattern classification (the paper's Section III-A).

The paper identifies six representative access patterns by inspecting
application traces.  This module mechanises that inspection: given a
page-touch trace, :func:`infer_pattern` returns the Fig. 2 pattern type
it most resembles, using the features the paper's prose describes:

* per-page episode counts (frequency);
* whether the whole footprint is swept repeatedly (thrashing iterations);
* whether references move through disjoint address regions monotonically
  (region moving);
* what fraction of pages is re-referenced (part vs most repetitive).

The inference is heuristic by nature (so is the paper's taxonomy); the
test suite pins it on the synthetic suite where ground truth is known.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.workloads.base import PatternType


@dataclass(frozen=True)
class PatternFeatures:
    """Trace features the classifier decides on."""

    trace_length: int
    footprint: int
    #: Fraction of pages referenced more than once.
    repeat_fraction: float
    #: Mean episodes per page.
    mean_episodes: float
    #: Number of full-footprint sweeps detectable at the trace level.
    sweep_count: int
    #: Fraction of references that never revisit an earlier address
    #: region once the trace has moved past it.
    forward_motion: float


def _sweep_count(trace: Sequence[int], footprint: int) -> int:
    """How many times the trace covers (nearly) its whole footprint."""
    threshold = max(1, int(footprint * 0.95))
    seen: set[int] = set()
    sweeps = 0
    for page in trace:
        seen.add(page)
        if len(seen) >= threshold:
            sweeps += 1
            seen.clear()
    return sweeps


def _forward_motion(
    trace: Sequence[int],
    footprint: int,
    bands: int = 8,
    tolerance: int = 2,
) -> float:
    """Fraction of references in (or near) the current address band.

    Region-moving workloads re-sweep their *active* region, so a small
    backward tolerance (re-references within ``tolerance`` bands of the
    high-water mark) still counts as forward motion; only jumps back to
    long-left regions break it.
    """
    if not trace:
        return 1.0
    low = min(trace)
    span = max(trace) - low + 1
    band_size = max(1, span // bands)
    highest_band = -1
    forward = 0
    for page in trace:
        band = (page - low) // band_size
        if band >= highest_band - tolerance:
            forward += 1
        highest_band = max(highest_band, band)
    return forward / len(trace)


def extract_features(trace: Sequence[int]) -> PatternFeatures:
    """Compute the classification features for ``trace``."""
    counts = Counter(trace)
    footprint = len(counts)
    repeated = sum(1 for count in counts.values() if count > 1)
    return PatternFeatures(
        trace_length=len(trace),
        footprint=footprint,
        repeat_fraction=repeated / footprint if footprint else 0.0,
        mean_episodes=len(trace) / footprint if footprint else 0.0,
        sweep_count=_sweep_count(trace, footprint),
        forward_motion=_forward_motion(trace, footprint),
    )


def infer_pattern(trace: Sequence[int]) -> PatternType:
    """Guess the Fig. 2 pattern type of ``trace``.

    Decision order mirrors the taxonomy's structure: whole-footprint
    repetition first (types II/V), then single-pass shapes (I/III/IV),
    with region motion (VI) separated by the monotone-band feature.
    """
    features = extract_features(trace)
    if features.footprint == 0:
        raise ValueError("cannot classify an empty trace")
    if features.sweep_count >= 2:
        # The footprint is swept repeatedly: II if pages are uniform
        # single-touch per sweep, V if sweeps have internal re-reference.
        episodes_per_sweep = features.mean_episodes / features.sweep_count
        if episodes_per_sweep <= 1.3:
            return PatternType.THRASHING
        return PatternType.REPETITIVE_THRASHING
    if features.repeat_fraction <= 0.05:
        return PatternType.STREAMING
    if features.repeat_fraction >= 0.6:
        # Most pages re-referenced: IV if references intersect globally,
        # VI if the trace works region by region and never returns.
        if features.forward_motion >= 0.98:
            return PatternType.REGION_MOVING
        return PatternType.MOST_REPETITIVE
    return PatternType.PART_REPETITIVE
