"""Structured JSONL event traces and their schema.

One simulated run, traced, is a sequence of JSON objects — one per line —
each describing a driver/policy-level event.  The stream answers the
paper's *internal-dynamics* questions (why did BFS switch strategies?
when did the old partition drain?) without print debugging, and is the
per-event half of the observability layer (the aggregate half is
:mod:`repro.obs.registry`).

Schema
------
Every event carries:

* ``type`` — one of :data:`EVENT_TYPES`;
* ``seq`` — 0-based monotonic sequence number within the stream;

plus the per-type required fields of :data:`EVENT_SCHEMA`.  A field spec
is a tuple of accepted Python types; ``None`` is accepted only where
``type(None)`` is listed (e.g. an infinite classification ratio is
serialised as ``null`` — JSONL must stay strictly valid JSON, which has
no ``Infinity``).  Extra fields are allowed but must be JSON scalars.

The schema is versioned by :data:`TRACE_SCHEMA_VERSION`, recorded in the
``run_start`` event that opens every stream.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

#: Bump when the event stream's observable structure changes.
TRACE_SCHEMA_VERSION = 1

_NoneType = type(None)

#: Per-type required fields (beyond ``type`` and ``seq``) and the Python
#: types each accepts after a JSON round-trip.
EVENT_SCHEMA: dict[str, dict[str, tuple]] = {
    # Stream bracket: identifies the run and stamps the schema version.
    "run_start": {
        "schema": (int,),
        "workload": (str,),
        "policy": (str,),
        "capacity_pages": (int,),
        "trace_length": (int,),
    },
    "run_end": {
        "cycles": (int,),
        "faults": (int,),
        "evictions": (int,),
    },
    # One per serviced page fault (driver side).
    "fault": {
        "page": (int,),
        "fault_number": (int,),
        "kind": (str,),  # "compulsory" | "capacity"
    },
    # One per evicted page (demand or prefetch-displacement).
    "eviction": {
        "page": (int,),
        "fault_number": (int,),
    },
    # HIR payload ingested by the driver (HPE only).
    "hir_transfer": {
        "fault_number": (int,),
        "entries": (int,),
        "bytes": (int,),
    },
    # Chain partition advance at the end of each interval (HPE only).
    "interval": {
        "interval": (int,),
        "fault_number": (int,),
        "old": (int,),
        "middle": (int,),
        "new": (int,),
    },
    # First-full classification (HPE only; null ratio = infinite).
    "classification": {
        "fault_number": (int,),
        "category": (str,),
        "ratio1": (int, float, _NoneType),
        "ratio2": (int, float, _NoneType),
    },
    # Dynamic adjustment actions (HPE only).
    "strategy_switch": {
        "fault_number": (int,),
        "from_strategy": (str,),
        "to_strategy": (str,),
    },
    "jump": {
        "fault_number": (int,),
        "jump": (int,),
    },
}

#: The known event types, in schema order.
EVENT_TYPES = tuple(EVENT_SCHEMA)

_SCALARS = (str, int, float, bool, _NoneType)


class EventSchemaError(ValueError):
    """An event does not conform to :data:`EVENT_SCHEMA`."""


def finite_or_none(value: float) -> Optional[float]:
    """JSON-safe form of a ratio: ``None`` replaces ``inf``/``nan``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def validate_event(event: object) -> None:
    """Raise :class:`EventSchemaError` unless ``event`` is schema-valid."""
    if not isinstance(event, dict):
        raise EventSchemaError(f"event must be an object, got {type(event).__name__}")
    event_type = event.get("type")
    if event_type not in EVENT_SCHEMA:
        raise EventSchemaError(f"unknown event type {event_type!r}")
    seq = event.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise EventSchemaError(f"{event_type}: 'seq' must be a non-negative int")
    fields = EVENT_SCHEMA[event_type]
    for name, accepted in fields.items():
        if name not in event:
            raise EventSchemaError(f"{event_type}: missing field {name!r}")
        value = event[name]
        if isinstance(value, bool) and bool not in accepted:
            raise EventSchemaError(
                f"{event_type}: field {name!r} has invalid type bool"
            )
        if not isinstance(value, accepted):
            raise EventSchemaError(
                f"{event_type}: field {name!r} has invalid type "
                f"{type(value).__name__}"
            )
        if isinstance(value, float) and not math.isfinite(value):
            raise EventSchemaError(
                f"{event_type}: field {name!r} must be finite, got {value!r}"
            )
    for name, value in event.items():
        if name in ("type", "seq") or name in fields:
            continue
        if not isinstance(value, _SCALARS):
            raise EventSchemaError(
                f"{event_type}: extra field {name!r} must be a JSON scalar"
            )


class JSONLEventTrace:
    """Append-structured sink writing one JSON object per line.

    The output file is opened lazily on the first :meth:`emit` and every
    event gets a monotonic ``seq``.  With ``validate=True`` each event is
    checked against :data:`EVENT_SCHEMA` before it is written, so a
    malformed instrumentation site fails loudly instead of producing an
    unparseable stream.
    """

    def __init__(
        self,
        path: Union[str, "Path"],
        validate: bool = False,
    ) -> None:
        self.path = Path(path)
        self.validate = validate
        self._stream: Optional[IO[str]] = None
        self._seq = 0
        #: events written, by type (a free summary for CLI output).
        self.counts: dict[str, int] = {}

    @property
    def events_written(self) -> int:
        return self._seq

    def emit(self, event_type: str, **fields: object) -> None:
        """Write one event of ``event_type`` with ``fields``."""
        event: dict = {"type": event_type, "seq": self._seq}
        event.update(fields)
        if self.validate:
            validate_event(event)
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", encoding="utf-8")
        self._stream.write(
            json.dumps(event, separators=(",", ":"), allow_nan=False) + "\n"
        )
        self._seq += 1
        self.counts[event_type] = self.counts.get(event_type, 0) + 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JSONLEventTrace":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def read_events(path: Union[str, "Path"]) -> Iterator[dict]:
    """Yield every event of a JSONL trace file (no validation)."""
    with Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


def validate_file(path: Union[str, "Path"]) -> int:
    """Validate every line of a trace file; return the event count.

    Raises :class:`EventSchemaError` (with the 1-based line number) on
    the first invalid line, including unparseable JSON.
    """
    count = 0
    with Path(path).open("r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise EventSchemaError(
                    f"{path}:{lineno}: not valid JSON ({error})"
                ) from error
            try:
                validate_event(event)
            except EventSchemaError as error:
                raise EventSchemaError(f"{path}:{lineno}: {error}") from error
            count += 1
    return count


def summarize_events(events: Iterable[dict]) -> dict:
    """Aggregate an event stream into a small summary dict."""
    by_type: dict[str, int] = {}
    first_fault = last_fault = None
    switches: list[tuple[int, str, str]] = []
    intervals = 0
    for event in events:
        event_type = event.get("type", "?")
        by_type[event_type] = by_type.get(event_type, 0) + 1
        if event_type == "fault":
            if first_fault is None:
                first_fault = event["fault_number"]
            last_fault = event["fault_number"]
        elif event_type == "interval":
            intervals += 1
        elif event_type == "strategy_switch":
            switches.append(
                (event["fault_number"], event["from_strategy"],
                 event["to_strategy"])
            )
    return {
        "total": sum(by_type.values()),
        "by_type": by_type,
        "first_fault": first_fault,
        "last_fault": last_fault,
        "intervals": intervals,
        "strategy_switches": switches,
    }
