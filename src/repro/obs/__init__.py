"""repro.obs — the observability layer (metrics, time-series, event traces).

Three cooperating pieces, bundled per run by an :class:`Observation`:

* :class:`~repro.obs.registry.MetricsRegistry` — counters / gauges /
  histograms, merged across parallel matrix workers;
* :class:`~repro.obs.timeseries.TimeSeriesRecorder` — one snapshot of
  policy internals per interval, returned in
  ``SimulationResult.extras["timeseries"]``;
* :class:`~repro.obs.events.JSONLEventTrace` — an optional structured
  per-event JSONL stream (fault, eviction, HIR transfer, interval
  advance, classification, strategy switch/jump).

Overhead discipline
-------------------
Observability is **off by default** and adds near-zero cost when off:
instrumented components hold an ``Observation`` reference that is
``None`` when disabled and guard every hook with a single ``is not
None`` check on the *fault* path (never the per-trace-event hot loop).
Enable it with ``REPRO_OBS=1`` or the ``--obs`` CLI flag; simulated
behaviour (``key_metrics()``) is bit-identical either way because the
hooks only read state.

Observed runs bypass the persistent result cache — a trace/time-series
is only meaningful for a run that actually simulated.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    EventSchemaError,
    JSONLEventTrace,
    finite_or_none,
    read_events,
    summarize_events,
    validate_event,
    validate_file,
)
from repro.obs.registry import HistogramData, MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder

#: Environment variable enabling observability (``1``/``on``/``true``).
ENV_OBS = "REPRO_OBS"

_TRUTHY = {"1", "on", "true", "yes", "enabled"}

#: Process-level override set by :func:`configure` (CLI ``--obs``);
#: ``None`` means "defer to the environment".
_enabled_override: Optional[bool] = None


def configure(enabled: Optional[bool] = None) -> None:
    """Override observability for this process (wins over ``REPRO_OBS``)."""
    global _enabled_override
    if enabled is not None:
        _enabled_override = enabled


def enabled() -> bool:
    """Is observability on (configure() override, then ``REPRO_OBS``)?"""
    if _enabled_override is not None:
        return _enabled_override
    raw = os.environ.get(ENV_OBS, "").strip().lower()
    return raw in _TRUTHY


class Observation:
    """Everything one observed run collects: registry + series + trace.

    ``trace`` is optional and stays ``None`` for registry-only
    observation (the parallel-matrix worker mode: an open file handle
    must never cross the process boundary).
    """

    __slots__ = ("registry", "timeseries", "trace")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        timeseries: Optional[TimeSeriesRecorder] = None,
        trace: Optional[JSONLEventTrace] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeseries = (
            timeseries if timeseries is not None else TimeSeriesRecorder()
        )
        self.trace = trace

    def emit(self, event_type: str, **fields: object) -> None:
        """Forward one event to the trace sink, if any."""
        if self.trace is not None:
            self.trace.emit(event_type, **fields)

    def close(self) -> None:
        """Flush and close the trace sink, if any."""
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "Observation":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        """Pickle support: the trace sink never crosses process lines."""
        return {
            "registry": self.registry,
            "timeseries": self.timeseries,
            "trace": None,
        }

    def __setstate__(self, state: dict) -> None:
        self.registry = state["registry"]
        self.timeseries = state["timeseries"]
        self.trace = None


__all__ = [
    "ENV_OBS",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "EventSchemaError",
    "HistogramData",
    "JSONLEventTrace",
    "MetricsRegistry",
    "Observation",
    "TRACE_SCHEMA_VERSION",
    "TimeSeriesRecorder",
    "configure",
    "enabled",
    "finite_or_none",
    "read_events",
    "summarize_events",
    "validate_event",
    "validate_file",
]
