"""Process-local metrics registry: counters, gauges and histograms.

The registry is the aggregate half of the observability layer (the JSONL
event trace in :mod:`repro.obs.events` is the per-event half).  It is a
plain in-process object — no locks, no background threads — because every
simulation runs single-threaded and parallel matrix workers each build
their own registry and ship it back as a plain dict for the parent to
:meth:`MetricsRegistry.merge`.

Metric kinds
------------
* **counter** — monotonically increasing integer/float (`inc`); merged by
  addition.
* **gauge** — last-written value (`set_gauge`); merged by last-writer-wins.
* **histogram** — value distribution in power-of-two buckets (`observe`);
  merged bucket-wise, tracking count/total/min/max exactly.

Names are dotted paths by convention (``driver.faults``,
``tlb.l1.hits``, ``hpe.chain.length``) so dumps sort into subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


def _bucket_of(value: float) -> int:
    """Power-of-two bucket index: values ≤ 2**i land in bucket ``i``."""
    if value <= 1:
        return 0
    return int(value - 1).bit_length()


@dataclass
class HistogramData:
    """Exact summary plus a power-of-two bucketed distribution."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    #: bucket index → observation count; bucket ``i`` covers
    #: ``(2**(i-1), 2**i]`` (bucket 0 covers ``(-inf, 1]``).
    buckets: dict[int, int] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observed value (0.0 when empty)."""
        if not self.count:
            return 0.0
        return self.total / self.count

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = _bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def merge(self, other: "HistogramData") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HistogramData":
        return cls(
            count=payload["count"],
            total=payload["total"],
            min=payload["min"],
            max=payload["max"],
            buckets={int(k): v for k, v in payload["buckets"].items()},
        )


class MetricsRegistry:
    """Named counters, gauges and histograms for one run (or one merge)."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramData] = {}

    # -- counters ------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last writer wins)."""
        self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge ``name``, or ``None`` if never set."""
        return self._gauges.get(name)

    # -- histograms ----------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramData()
        histogram.observe(value)

    def histogram(self, name: str) -> HistogramData:
        """The histogram for ``name`` (empty if never observed)."""
        return self._histograms.get(name, HistogramData())

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (the parent-side operation)."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(other._gauges)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = HistogramData()
            mine.merge(histogram)

    def to_dict(self) -> dict:
        """Plain-dict form: picklable, JSON-able, process-boundary safe."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: h.to_dict() for name, h in self._histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        registry._counters.update(payload.get("counters", {}))
        registry._gauges.update(payload.get("gauges", {}))
        for name, data in payload.get("histograms", {}).items():
            registry._histograms[name] = HistogramData.from_dict(data)
        return registry

    # -- introspection -------------------------------------------------

    def names(self) -> list[str]:
        """Every metric name, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def lines(self) -> Iterator[str]:
        """Human-readable dump lines (the ``repro stats`` output)."""
        for name in sorted(self._counters):
            yield f"{name} = {self._counters[name]}"
        for name in sorted(self._gauges):
            yield f"{name} = {self._gauges[name]} (gauge)"
        for name in sorted(self._histograms):
            h = self._histograms[name]
            yield (
                f"{name} = count={h.count} mean={h.mean:.2f} "
                f"min={h.min} max={h.max} (histogram)"
            )
