"""Interval-aligned time-series snapshots of policy internals.

The paper's Figs. 9/13/14/15 all ask questions about *trajectories* —
partition sizes over time, when strategies switched, how full the HIR ran
— that end-of-run aggregates cannot answer.  A
:class:`TimeSeriesRecorder` collects one plain-dict snapshot per interval
(HPE's natural clock: every ``interval_length`` page faults) and rides
back on ``SimulationResult.extras["timeseries"]``.

Snapshot schema (written by ``HPEPolicy``, one dict per interval):

========================  =====================================================
field                     meaning
========================  =====================================================
``interval``              completed-interval ordinal (1-based)
``fault_number``          driver fault count at the snapshot instant
``old`` / ``middle`` /    page-set chain partition sizes (entries)
``new``
``chain_length``          ``old + middle + new`` (the live chain length)
``resident_pages``        pages currently resident per the policy's accounting
``strategy``              active strategy value, or ``None`` before first-full
``jump``                  MRU-C search-point jump offset in force
``wrong_evictions``       cumulative wrong evictions detected so far
``hir_populated``         HIR entries populated since the last transfer
========================  =====================================================
"""

from __future__ import annotations

from typing import Iterator, Optional


class TimeSeriesRecorder:
    """An append-only list of per-interval snapshot dicts."""

    __slots__ = ("snapshots",)

    def __init__(self) -> None:
        self.snapshots: list[dict] = []

    def record(self, snapshot: dict) -> None:
        """Append one snapshot (stored as-is; keep it a plain dict)."""
        self.snapshots.append(snapshot)

    def as_list(self) -> list[dict]:
        """The snapshots, oldest first (the ``extras`` payload)."""
        return list(self.snapshots)

    def latest(self) -> Optional[dict]:
        """The most recent snapshot, or ``None`` when empty."""
        return self.snapshots[-1] if self.snapshots else None

    def series(self, field: str) -> list:
        """One column across every snapshot (missing fields → ``None``)."""
        return [snapshot.get(field) for snapshot in self.snapshots]

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.snapshots)
