"""Trace-driven GPU UVM simulator: configuration, engine, results."""

from repro.sim.config import GPUConfig
from repro.sim.engine import UVMSimulator, simulate
from repro.sim.results import SimulationResult

__all__ = ["GPUConfig", "SimulationResult", "UVMSimulator", "simulate"]
