"""Trace-driven UVM timing simulator.

The engine replays a page-touch trace through the full translation path
(per-SM L1 TLB → shared L2 TLB → page-table walker → fault handler) and
keeps a timing model calibrated to the paper's setup:

* trace events are dealt round-robin to ``num_sms × warps_per_sm`` warp
  slots; each SM issues at most one access per cycle;
* a TLB/walk hit costs its translation latency plus the DRAM round trip,
  blocking only the issuing warp (latency hiding across warps);
* a page fault is serviced by the host driver **serially** — the
  replayable far-fault mechanism lets other warps keep executing, but
  the single software runtime handles one fault at a time, each costing
  the 20 µs service latency plus the PCIe bytes actually moved (evicted
  page + migrated page + any HIR payload for HPE);
* total cycles = the time the last warp finishes; IPC = trace events ×
  ``instructions_per_access`` / cycles.

This reproduces the paper's first-order behaviour: with oversubscription,
runtime is dominated by (number of faults) × (20 µs), so policies win or
lose exactly through the evictions they cause.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.memory.frames import FramePool
from repro.memory.page_table import PageTable
from repro.policies.base import EvictionPolicy
from repro.sim.config import GPUConfig
from repro.sim.results import SimulationResult
from repro.tlb.hierarchy import TLBHierarchy, TranslationLevel
from repro.tlb.walker import PageTableWalker
from repro.uvm.driver import UVMDriver


class UVMSimulator:
    """One simulated GPU: translation path, driver, policy, and clock."""

    def __init__(
        self,
        policy: EvictionPolicy,
        capacity_pages: int,
        config: Optional[GPUConfig] = None,
        prefetch_degree: int = 0,
    ) -> None:
        self.config = config or GPUConfig()
        self.policy = policy
        self.capacity_pages = capacity_pages
        self.page_table = PageTable()
        self.frame_pool = FramePool(capacity_pages)
        self.hierarchy = TLBHierarchy(
            num_sms=self.config.num_sms,
            l1_config=self.config.l1_tlb,
            l2_config=self.config.l2_tlb,
        )
        self.walker = PageTableWalker(
            self.page_table, self.config.walk_latency_cycles
        )
        if policy.uses_walk_hits:
            self.walker.add_hit_listener(policy.on_walk_hit)
        self.driver = UVMDriver(
            frame_pool=self.frame_pool,
            page_table=self.page_table,
            policy=policy,
            tlb_hierarchy=self.hierarchy,
            prefetch_degree=prefetch_degree,
        )

    def run(self, trace: Sequence[int], workload_name: str = "trace") -> SimulationResult:
        """Replay ``trace`` and return the collected metrics."""
        config = self.config
        if self.policy.requires_future:
            self.policy.prime_future(trace)

        num_sms = config.num_sms
        total_warps = config.total_warps
        mem_latency = config.memory_latency_cycles
        fault_cycles = config.pcie.fault_service_cycles
        pcie = config.pcie
        consume_bytes = getattr(self.policy, "consume_transfer_bytes", None)
        track_position = self.policy.requires_future

        sm_issue_time = [0] * num_sms
        warp_ready = [0] * total_warps
        fault_queue_free = 0

        hierarchy = self.hierarchy
        walker = self.walker
        driver = self.driver
        policy = self.policy

        for index, page in enumerate(trace):
            if track_position:
                policy.on_trace_position(index)
            warp = index % total_warps
            sm = warp % num_sms
            start = sm_issue_time[sm]
            ready = warp_ready[warp]
            if ready > start:
                start = ready
            sm_issue_time[sm] = start + 1

            result = hierarchy.lookup(sm, page)
            latency = result.latency_cycles
            if result.level is TranslationLevel.PAGE_TABLE:
                outcome = walker.walk(page)
                latency += outcome.latency_cycles
                if outcome.hit:
                    hierarchy.fill(sm, page, outcome.entry.frame)
                else:
                    fault = driver.handle_fault(page)
                    hierarchy.fill(sm, page, fault.frame)
                    service = fault_cycles + pcie.transfer_cycles(
                        fault.bytes_transferred
                    )
                    if consume_bytes is not None:
                        service += pcie.transfer_cycles(consume_bytes())
                    begin = start + latency
                    if fault_queue_free > begin:
                        begin = fault_queue_free
                    fault_queue_free = begin + service
                    warp_ready[warp] = fault_queue_free
                    continue
            warp_ready[warp] = start + latency + mem_latency

        cycles = max(max(warp_ready, default=0), max(sm_issue_time, default=0))
        instructions = len(trace) * config.instructions_per_access
        extras: dict = {}
        stats = getattr(policy, "stats", None)
        if stats is not None:
            extras["policy_stats"] = stats
        footprint = len(set(trace))
        return SimulationResult(
            policy_name=policy.name,
            workload_name=workload_name,
            capacity_pages=self.capacity_pages,
            footprint_pages=footprint,
            trace_length=len(trace),
            cycles=cycles,
            instructions=instructions,
            driver=driver.stats,
            l1_tlb_hits=sum(t.stats.hits for t in hierarchy.l1_tlbs),
            l2_tlb_hits=hierarchy.l2_tlb.stats.hits,
            walker_hits=walker.hits,
            extras=extras,
        )


def simulate(
    trace: Sequence[int],
    policy: EvictionPolicy,
    capacity_pages: int,
    config: Optional[GPUConfig] = None,
    workload_name: str = "trace",
    prefetch_degree: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build a simulator and run ``trace`` once."""
    simulator = UVMSimulator(policy, capacity_pages, config, prefetch_degree)
    return simulator.run(trace, workload_name=workload_name)
