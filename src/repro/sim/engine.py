"""Trace-driven UVM timing simulator.

The engine replays a page-touch trace through the full translation path
(per-SM L1 TLB → shared L2 TLB → page-table walker → fault handler) and
keeps a timing model calibrated to the paper's setup:

* trace events are dealt round-robin to ``num_sms × warps_per_sm`` warp
  slots; each SM issues at most one access per cycle;
* a TLB/walk hit costs its translation latency plus the DRAM round trip,
  blocking only the issuing warp (latency hiding across warps);
* a page fault is serviced by the host driver **serially** — the
  replayable far-fault mechanism lets other warps keep executing, but
  the single software runtime handles one fault at a time, each costing
  the 20 µs service latency plus the PCIe bytes actually moved (evicted
  page + migrated page + any HIR payload for HPE);
* total cycles = the time the last warp finishes; IPC = trace events ×
  ``instructions_per_access`` / cycles.

This reproduces the paper's first-order behaviour: with oversubscription,
runtime is dominated by (number of faults) × (20 µs), so policies win or
lose exactly through the evictions they cause.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence

from repro import check as check_module
from repro.check.invariants import InvariantChecker
from repro.memory.frames import FramePool
from repro.memory.page_table import PageTable
from repro.policies.base import EvictionPolicy
from repro.sim.config import GPUConfig, resolve_fastpath_level
from repro.sim.results import SimulationResult
from repro.tlb.hierarchy import TLBHierarchy, TranslationLevel
from repro.tlb.walker import PageTableWalker
from repro.uvm.driver import UVMDriver

if TYPE_CHECKING:
    from repro.obs import Observation
    from repro.scenarios.spec import ScenarioSpec


class UVMSimulator:
    """One simulated GPU: translation path, driver, policy, and clock."""

    def __init__(
        self,
        policy: EvictionPolicy,
        capacity_pages: int,
        config: Optional[GPUConfig] = None,
        prefetch_degree: int = 0,
        obs: Optional["Observation"] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.config = config or GPUConfig()
        self.policy = policy
        self.capacity_pages = capacity_pages
        #: Optional :class:`repro.obs.Observation`; threaded into the
        #: driver (fault/eviction events) and the policy (interval
        #: snapshots).  ``None`` — the default — keeps the run silent.
        self.obs = obs
        self.page_table = PageTable()
        self.frame_pool = FramePool(capacity_pages)
        self.hierarchy = TLBHierarchy(
            num_sms=self.config.num_sms,
            l1_config=self.config.l1_tlb,
            l2_config=self.config.l2_tlb,
        )
        self.walker = PageTableWalker(
            self.page_table, self.config.walk_latency_cycles
        )
        if policy.uses_walk_hits:
            self.walker.add_hit_listener(policy.on_walk_hit)
        self.driver = UVMDriver(
            frame_pool=self.frame_pool,
            page_table=self.page_table,
            policy=policy,
            tlb_hierarchy=self.hierarchy,
            prefetch_degree=prefetch_degree,
            obs=obs,
        )
        if obs is not None:
            attach = getattr(policy, "attach_observation", None)
            if attach is not None:
                attach(obs)
        #: Optional :class:`repro.check.InvariantChecker` — the runtime
        #: sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).  ``None``
        #: (the default) costs the driver one pointer check per fault.
        if sanitize is None:
            sanitize = check_module.sanitize_enabled()
        self.checker: Optional[InvariantChecker] = None
        if sanitize:
            self.checker = check_module.make_checker(self)
            self.driver.checker = self.checker

    @classmethod
    def for_scenario(
        cls,
        spec: "ScenarioSpec",
        policy: EvictionPolicy,
        capacity_pages: int,
        obs: Optional["Observation"] = None,
        sanitize: Optional[bool] = None,
    ) -> "UVMSimulator":
        """Build a simulator from a scenario spec's machine parameters.

        The spec contributes exactly the fields that shape the machine —
        ``effective_config`` (normalised, so ``None`` and the default
        ``GPUConfig()`` build identical simulators) and
        ``prefetch_degree``; policy construction stays with the caller
        because it needs the trace-derived capacity.
        """
        return cls(
            policy,
            capacity_pages,
            config=spec.effective_config,
            prefetch_degree=spec.prefetch_degree,
            obs=obs,
            sanitize=sanitize,
        )

    def run(
        self,
        trace: Sequence[int],
        workload_name: str = "trace",
        fast: Optional[bool] = None,
    ) -> SimulationResult:
        """Replay ``trace`` and return the collected metrics.

        Four inner loops exist: the relaxed metric-equivalent kernel
        (tier 3, explicit opt-in only — DESIGN §13), the vectorized
        batch kernel (tier 2, the default), the flattened v1 loop
        (tier 1), and the straightforward reference loop (tier 0).
        Tiers 0–2 produce bit-identical results — ``tests/diff``
        cross-checks them — and ``fast=False`` /
        ``REPRO_SIM_FASTPATH=0`` selects the reference loop for
        debugging, ``REPRO_SIM_FASTPATH=1`` the v1 loop.  Runs a batch
        kernel cannot replay (observed, sanitized, offline policies,
        prefetching) fall back tier 3 → 2 → 1; the tier that actually
        executed is recorded in ``result.extras["fastpath"]`` so
        callers (the diff harness, the CLI) can report fallbacks
        instead of silently comparing a tier against itself.
        """
        level = resolve_fastpath_level(fast)
        if self.policy.requires_future:
            self.policy.prime_future(trace)
        obs = self.obs
        if obs is not None:
            from repro.obs import TRACE_SCHEMA_VERSION

            obs.emit(
                "run_start",
                schema=TRACE_SCHEMA_VERSION,
                workload=workload_name,
                policy=self.policy.name,
                capacity_pages=self.capacity_pages,
                trace_length=len(trace),
            )
        started = time.monotonic()  # noqa: REP012 — extras-only timing
        executed = level
        if level >= 3:
            from repro.sim import fastpath2, fastpath3

            if fastpath3.eligible(self, trace):
                cycles = fastpath3.replay(self, trace)
            elif fastpath2.eligible(self):
                executed = 2
                cycles = fastpath2.replay(self, trace)
            else:
                executed = 1
                cycles = self._replay_fast(trace)
        elif level == 2:
            from repro.sim import fastpath2

            if fastpath2.eligible(self):
                cycles = fastpath2.replay(self, trace)
            else:
                executed = 1
                cycles = self._replay_fast(trace)
        elif level == 1:
            cycles = self._replay_fast(trace)
        else:
            cycles = self._replay_reference(trace)
        result = self._collect(trace, workload_name, cycles)
        result.extras["fastpath"] = {"requested": level, "executed": executed}
        # Wall-clock spent replaying, for supervisor/journal accounting.
        # Lives in ``extras`` — key_metrics() stays wall-clock-free so
        # determinism digests are unaffected.
        result.extras["elapsed_s"] = time.monotonic() - started  # noqa: REP012
        return result

    def _replay_reference(self, trace: Sequence[int]) -> int:
        """The unflattened event loop (kept as the behavioural oracle)."""
        config = self.config
        num_sms = config.num_sms
        total_warps = config.total_warps
        mem_latency = config.memory_latency_cycles
        fault_cycles = config.pcie.fault_service_cycles
        pcie = config.pcie
        consume_bytes = getattr(self.policy, "consume_transfer_bytes", None)
        track_position = self.policy.requires_future

        sm_issue_time = [0] * num_sms
        warp_ready = [0] * total_warps
        fault_queue_free = 0

        hierarchy = self.hierarchy
        walker = self.walker
        driver = self.driver
        policy = self.policy

        for index, page in enumerate(trace):
            if track_position:
                policy.on_trace_position(index)
            warp = index % total_warps
            sm = warp % num_sms
            start = sm_issue_time[sm]
            ready = warp_ready[warp]
            if ready > start:
                start = ready
            sm_issue_time[sm] = start + 1

            result = hierarchy.lookup(sm, page)
            latency = result.latency_cycles
            if result.level is TranslationLevel.PAGE_TABLE:
                outcome = walker.walk(page)
                latency += outcome.latency_cycles
                if outcome.hit:
                    hierarchy.fill(sm, page, outcome.entry.frame)
                else:
                    fault = driver.handle_fault(page)
                    hierarchy.fill(sm, page, fault.frame)
                    service = fault_cycles + pcie.transfer_cycles(
                        fault.bytes_transferred
                    )
                    if consume_bytes is not None:
                        service += pcie.transfer_cycles(consume_bytes())
                    begin = start + latency
                    if fault_queue_free > begin:
                        begin = fault_queue_free
                    fault_queue_free = begin + service
                    warp_ready[warp] = fault_queue_free
                    continue
            warp_ready[warp] = start + latency + mem_latency

        return max(max(warp_ready, default=0), max(sm_issue_time, default=0))

    def _replay_fast(self, trace: Sequence[int]) -> int:
        """Flattened event loop: same behaviour, far fewer dispatches.

        Per event the reference loop pays two TLB method calls, a
        :class:`TranslationResult` allocation, an enum comparison and —
        on L2 misses — a :class:`WalkOutcome` allocation.  Here the TLB
        probes and the page-table walk are inlined over local bindings of
        the underlying set dictionaries, outcomes stay plain ints, and
        hit/miss/eviction counters are accumulated in locals and folded
        into the stats objects once at the end.  Fault handling (driver +
        policy) is left untouched: that *is* the simulated behaviour.
        """
        config = self.config
        num_sms = config.num_sms
        total_warps = config.total_warps
        mem_latency = config.memory_latency_cycles
        fault_cycles = config.pcie.fault_service_cycles
        pcie = config.pcie
        transfer_cycles = pcie.transfer_cycles
        policy = self.policy
        consume_bytes = getattr(policy, "consume_transfer_bytes", None)
        track_position = policy.requires_future
        on_trace_position = policy.on_trace_position
        service_fault = self.driver.service_fault

        sm_issue_time = [0] * num_sms
        warp_ready = [0] * total_warps
        fault_queue_free = 0
        sm_of_warp = [w % num_sms for w in range(total_warps)]
        # transfer_cycles is pure and faults move page-sized byte counts,
        # so the (few) distinct values are worth memoising.
        transfer_memo: dict = {}

        # Local bindings of the translation-path state.  The OrderedDict
        # set objects are shared with the TLB instances, so shootdowns
        # issued by the driver during fault handling remain visible here.
        l1_states = [tlb.fastpath_state() for tlb in self.hierarchy.l1_tlbs]
        l1_sets = [state[0] for state in l1_states]
        l1_mask = l1_states[0][1]
        l1_assoc = l1_states[0][2]
        l1_latency = l1_states[0][3]
        l2_sets, l2_mask, l2_assoc, l2_latency = \
            self.hierarchy.l2_tlb.fastpath_state()
        miss_latency = l1_latency + l2_latency
        walker = self.walker
        walk_latency = walker.walk_latency_cycles
        # Pre-summed per-outcome latencies (one addition per event adds up).
        l1_hit_total = l1_latency + mem_latency
        l2_hit_total = miss_latency + mem_latency
        walk_hit_total = miss_latency + walk_latency + mem_latency
        fault_begin_latency = miss_latency + walk_latency
        listeners = walker._hit_listeners
        pt_entries = self.page_table._entries

        l1_hits = [0] * num_sms
        l1_misses = [0] * num_sms
        l1_evictions = [0] * num_sms
        l2_hits = 0
        l2_misses = 0
        l2_evictions = 0
        walks = 0
        walk_hits = 0
        walk_faults = 0

        index = 0
        warp = total_warps - 1
        for page in trace:
            if track_position:
                on_trace_position(index)
            index += 1
            warp += 1
            if warp == total_warps:
                warp = 0
            sm = sm_of_warp[warp]
            start = sm_issue_time[sm]
            ready = warp_ready[warp]
            if ready > start:
                start = ready
            sm_issue_time[sm] = start + 1

            # L1 probe (inlined TLB.lookup).
            sets = l1_sets[sm]
            entries = sets[page & l1_mask]
            if page in entries:
                entries.move_to_end(page)
                l1_hits[sm] += 1
                warp_ready[warp] = start + l1_hit_total
                continue
            l1_misses[sm] += 1

            # L2 probe.
            l2_entries = l2_sets[page & l2_mask]
            if page in l2_entries:
                l2_entries.move_to_end(page)
                l2_hits += 1
                # Refill the requesting SM's L1 (inlined TLB.insert; the
                # page just missed there, so only the eviction check).
                if len(entries) >= l1_assoc:
                    entries.popitem(last=False)
                    l1_evictions[sm] += 1
                entries[page] = 0
                warp_ready[warp] = start + l2_hit_total
                continue
            l2_misses += 1

            # Page-table walk (inlined walker.walk).
            walks += 1
            pte = pt_entries.get(page)
            if pte is not None and pte.valid:
                walk_hits += 1
                pte.walk_hits += 1
                for listener in listeners:
                    listener(page)
                frame = pte.frame
                if len(entries) >= l1_assoc:
                    entries.popitem(last=False)
                    l1_evictions[sm] += 1
                entries[page] = frame
                if len(l2_entries) >= l2_assoc:
                    l2_entries.popitem(last=False)
                    l2_evictions += 1
                l2_entries[page] = frame
                warp_ready[warp] = start + walk_hit_total
                continue

            # Page fault: driver services it serially.
            walk_faults += 1
            frame, _evicted, bytes_transferred = service_fault(page)
            service = transfer_memo.get(bytes_transferred)
            if service is None:
                service = fault_cycles + transfer_cycles(bytes_transferred)
                transfer_memo[bytes_transferred] = service
            # The shootdown of the victim may have shrunk these sets, so
            # re-check occupancy before inserting (inlined hierarchy.fill).
            if len(entries) >= l1_assoc:
                entries.popitem(last=False)
                l1_evictions[sm] += 1
            entries[page] = frame
            if len(l2_entries) >= l2_assoc:
                l2_entries.popitem(last=False)
                l2_evictions += 1
            l2_entries[page] = frame
            if consume_bytes is not None:
                extra = consume_bytes()
                if extra:  # transfer_cycles(0) == 0
                    service += transfer_cycles(extra)
            begin = start + fault_begin_latency
            if fault_queue_free > begin:
                begin = fault_queue_free
            fault_queue_free = begin + service
            warp_ready[warp] = fault_queue_free

        for sm, tlb in enumerate(self.hierarchy.l1_tlbs):
            tlb.add_batched_stats(l1_hits[sm], l1_misses[sm], l1_evictions[sm])
        self.hierarchy.l2_tlb.add_batched_stats(l2_hits, l2_misses, l2_evictions)
        walker.walks += walks
        walker.hits += walk_hits
        walker.faults += walk_faults

        return max(max(warp_ready, default=0), max(sm_issue_time, default=0))

    def _collect(
        self, trace: Sequence[int], workload_name: str, cycles: int
    ) -> SimulationResult:
        """Assemble the :class:`SimulationResult` for one finished replay."""
        policy = self.policy
        hierarchy = self.hierarchy
        instructions = len(trace) * self.config.instructions_per_access
        extras: dict = {}
        if self.checker is not None:
            self.checker.final_check()
            extras["sanitizer"] = self.checker.stats
        stats = getattr(policy, "stats", None)
        if stats is not None:
            extras["policy_stats"] = stats
        footprint = len(set(trace))
        obs = self.obs
        if obs is not None:
            driver_stats = self.driver.stats
            obs.emit(
                "run_end",
                cycles=cycles,
                faults=driver_stats.faults,
                evictions=driver_stats.evictions,
            )
            registry = obs.registry
            self.driver.stats.observe_into(registry)
            self.hierarchy.observe_into(registry)
            self.walker.observe_into(registry)
            fold = getattr(policy, "observe_into", None)
            if fold is not None:
                fold(registry)
            registry.set_gauge("engine.cycles", cycles)
            registry.set_gauge("engine.instructions", instructions)
            registry.set_gauge("engine.trace_length", len(trace))
            extras["timeseries"] = obs.timeseries.as_list()
            extras["metrics"] = registry.to_dict()
        return SimulationResult(
            policy_name=policy.name,
            workload_name=workload_name,
            capacity_pages=self.capacity_pages,
            footprint_pages=footprint,
            trace_length=len(trace),
            cycles=cycles,
            instructions=instructions,
            driver=self.driver.stats,
            l1_tlb_hits=sum(t.stats.hits for t in hierarchy.l1_tlbs),
            l2_tlb_hits=hierarchy.l2_tlb.stats.hits,
            walker_hits=self.walker.hits,
            extras=extras,
        )


def simulate(
    trace: Sequence[int],
    policy: EvictionPolicy,
    capacity_pages: int,
    config: Optional[GPUConfig] = None,
    workload_name: str = "trace",
    prefetch_degree: int = 0,
    obs: Optional["Observation"] = None,
    sanitize: Optional[bool] = None,
) -> SimulationResult:
    """Convenience wrapper: build a simulator and run ``trace`` once."""
    simulator = UVMSimulator(
        policy, capacity_pages, config, prefetch_degree, obs=obs,
        sanitize=sanitize,
    )
    return simulator.run(trace, workload_name=workload_name)
