"""Fastpath v2 — the vectorized fault-batch replay kernel.

The v1 fast path (:meth:`repro.sim.engine.UVMSimulator._replay_fast`)
flattens the per-event dispatch but still touches every trace event in
Python.  This kernel consumes the trace in **segments** — maximal
prefixes of pairwise-distinct pages — and resolves each segment's common
case with numpy array operations, dropping to scalar code only at
*events*: capacity evictions, HIR transfers (every 16th fault), HPE
interval boundaries (every 64th fault), and classification triggers.
All of those fire inside policy callbacks that the kernel invokes in
exact reference order, so ``key_metrics()`` stays **bit-identical** to
the reference oracle (the ``tests/diff`` harness proves it).

Why a distinct-page segment can be batched
------------------------------------------

Within a segment no page repeats, so each event is the *first* touch of
its page since the segment began.  That yields three static classes,
computed once per segment from the residency map and an exact
**presence map** (page → bitmask of the TLB structures holding it,
maintained at every fill, LRU eviction, and shootdown):

``hit``
    Resident and absent from the issuing SM's L1 TLB and the shared L2
    TLB → the event is exactly ``L1 miss, L2 miss, walk hit``.  Runs of
    hits are replayed with one batched policy callback, a tight PTE
    loop, deferred TLB fills, and closed-form vector timing.
``fault``
    Non-resident and TLB-absent → ``L1 miss, L2 miss, walk fault``.
    Runs of faults with free frames and untouched pages batch the frame
    allocation and the PCIe queue timing; evicting faults run through an
    inlined scalar chain whose victim shootdown consults the presence
    mask (deleting only from the structures that actually hold the
    victim, with the same live per-TLB shootdown counts).
``flagged``
    Present in some TLB at segment start and not provably evicted by
    later pressure → replayed through the exact v1 scalar body (after
    flushing deferred fills), which probes reality.

Mid-segment **evictions** are the only way a classification can change:
the victim stops being resident and (after the shootdown) is guaranteed
TLB-absent, so its future position — pages occur once per segment —
becomes a guaranteed fault.  The kernel *flips* that position into the
fault class via a heap; batching therefore never reorders an eviction
(DESIGN.md §9 develops the argument).  A shootdown can also invalidate
a pressure-based unflag, but only when it removes an entry from the
very set whose guaranteed-insert count justified it — the kernel tracks
the last pressure-unflagged position per set and degrades the segment
remainder to the scalar loop only on such a conflicting removal.

Deferred TLB fills are sound because between two flushes the affected
sets receive only inserts of distinct absent pages (every fault event
flushes first, so shootdowns always see flushed state), so the final
set contents and the eviction count have the closed form
:meth:`repro.tlb.tlb.TLB.apply_batched_misses` implements.

Fallbacks
---------

Observed (``--obs``) and sanitized (``--sanitize``) runs need live
per-event state (event emission mid-fault, invariant sweeps against
un-deferred TLB contents), as do offline policies (``ideal``) and
fault-around prefetching — :func:`eligible` routes those to the v1
loop, which is bit-identical by PR 1's equivalence suite.  Everything
here is behaviour-preserving *speed*, never behaviour.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.memory.page_table import PageTableEntry
from repro.policies.base import EvictionPolicy
from repro.policies.lru import LRUPolicy
from repro.tlb.tlb import TLB

if TYPE_CHECKING:
    from repro.sim.engine import UVMSimulator

try:  # numpy is optional at runtime (test extra); gate, don't require.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via eligible()
    np = None  # type: ignore[assignment]

#: Hard cap on one segment's length (bounds per-segment numpy scratch).
SEGMENT_CAP = 8192

#: Distinct-page prefixes shorter than this are replayed scalar — the
#: per-segment classification overhead would not amortize.
MIN_SEGMENT = 256

#: Events replayed by the scalar-generic loop when segmentation fails
#: (adversarial duplicate-heavy traces) before re-trying segmentation.
SCALAR_CHUNK = 256

#: Minimum consecutive free-frame faults worth batch-allocating.
MIN_FREE_RUN = 8

#: Below this many pending TLB fills, a flush replays plain sequential
#: inserts instead of numpy set-grouping (eviction chains flush after
#: every fault, with one or two fills pending).
SMALL_FLUSH = 32

#: Skip the pressure-refinement pass when a level has more sets than
#: this (the per-set cumsum sweep would dominate); candidates then stay
#: flagged, which is always sound.
MAX_REFINE_KEYS = 64


#: When set to a dict (tests / perf triage), :func:`replay` tallies how
#: many events each internal path handled — keys ``hit_run_events``,
#: ``hit_runs``, ``free_run_events``, ``fault_events``,
#: ``flagged_events``, ``scalar_events``, ``flushes``, ``segments``.
DEBUG_COUNTS: Optional[dict[str, int]] = None


def numpy_available() -> bool:
    """``True`` when the vector kernel's numpy dependency is importable."""
    return np is not None


def eligible(sim: "UVMSimulator") -> bool:
    """Can ``sim`` run the batch kernel bit-identically?

    Observation and sanitizing need live per-event state, offline
    policies consume per-event trace positions, and fault-around
    prefetching migrates pages the segment classifier cannot see —
    those runs take the (bit-identical) v1 loop instead.
    """
    return (
        np is not None
        and sim.obs is None
        and sim.checker is None
        and not sim.policy.requires_future
        and sim.driver.prefetch_degree == 0
    )


def replay(sim: "UVMSimulator", trace: Sequence[int]) -> int:
    """Replay ``trace`` on ``sim`` with the batch kernel; return cycles.

    Caller must have checked :func:`eligible`.  Mutates the simulator's
    structures (TLBs, page table, frame pool, policy, stats) exactly as
    the reference loop would.
    """
    assert np is not None
    config = sim.config
    num_sms = config.num_sms
    total_warps = config.total_warps
    warps_per_sm = config.warps_per_sm
    mem_latency = config.memory_latency_cycles
    pcie = config.pcie
    fault_cycles = pcie.fault_service_cycles
    transfer_cycles = pcie.transfer_cycles
    policy = sim.policy
    consume_bytes = getattr(policy, "consume_transfer_bytes", None)
    policy_on_fault_pending = policy.on_fault_pending
    policy_on_page_in = policy.on_page_in
    policy_select_victim = policy.select_victim
    # A base-class on_fault_pending is a documented no-op — skip the
    # call entirely on the chain path when the policy never overrode it.
    has_pending_cb = (
        policy.on_fault_pending.__func__  # type: ignore[attr-defined]
        is not EvictionPolicy.on_fault_pending
    )
    # Exact-type check: subclasses could override any hook, so only the
    # stock LRU policy gets its chain updates inlined.
    lru_chain = policy._chain if type(policy) is LRUPolicy else None
    driver = sim.driver
    stats = driver.stats
    ever_touched, page_size = driver.fastpath_state()
    frame_pool = sim.frame_pool
    fop = frame_pool._frame_of_page
    pof = frame_pool._page_of_frame
    free_list = frame_pool._free
    pt_entries = sim.page_table._entries
    hierarchy = sim.hierarchy

    l1_states = [tlb.fastpath_state() for tlb in hierarchy.l1_tlbs]
    l1_sets = [state[0] for state in l1_states]
    l1_mask = l1_states[0][1]
    l1_assoc = l1_states[0][2]
    l1_latency = l1_states[0][3]
    l2_sets, l2_mask, l2_assoc, l2_latency = \
        hierarchy.l2_tlb.fastpath_state()
    l1_nsets = l1_mask + 1
    l2_nsets = l2_mask + 1
    l1_stats = [tlb.stats for tlb in hierarchy.l1_tlbs]
    l2_stats = hierarchy.l2_tlb.stats
    walker = sim.walker
    walk_latency = walker.walk_latency_cycles
    l1_hit_total = l1_latency + mem_latency
    l2_hit_total = l1_latency + l2_latency + mem_latency
    walk_hit_total = l1_latency + l2_latency + walk_latency + mem_latency
    fault_begin_latency = l1_latency + l2_latency + walk_latency
    listeners = walker._hit_listeners
    # Batched walk-hit dispatch: when the policy's own on_walk_hit is the
    # only subscriber, hit runs go through policy.on_walk_hits (HPE's
    # override feeds the HIR in one pass); otherwise the generic
    # listener loop preserves arbitrary subscriber lists.
    if not listeners:
        hit_dispatch = 0
    elif len(listeners) == 1 and listeners[0] == policy.on_walk_hit:
        hit_dispatch = 1
    else:
        hit_dispatch = 2
    on_walk_hits = policy.on_walk_hits

    pages_arr = np.asarray(trace, dtype=np.int64)
    n = int(pages_arr.shape[0])

    # Previous-occurrence index: prev_arr[j] is the latest i < j with
    # pages[i] == pages[j], or -1.  One stable argsort for the whole
    # trace makes every later distinct-prefix query a single slice scan.
    prev_arr = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order = np.argsort(pages_arr, kind="stable")
        sorted_pages = pages_arr[order]
        same = sorted_pages[1:] == sorted_pages[:-1]
        prev_arr[order[1:][same]] = order[:-1][same]

    # --- mutable replay state (shared by the nested helpers) -----------
    sm_issue = [0] * num_sms
    warp_ready = [0] * total_warps
    fq = 0  # fault_queue_free
    transfer_memo: dict[int, int] = {}

    l1_hits_b = [0] * num_sms
    l1_misses_b = [0] * num_sms
    l1_ev_b = [0] * num_sms
    l2_hits_b = 0
    l2_misses_b = 0
    l2_ev_b = 0
    walks_b = 0
    whits_b = 0
    wfaults_b = 0
    fault_no = stats.faults  # absolute fault sequence number
    d_comp = 0
    d_cap = 0
    d_evict = 0
    d_bin = 0
    d_bout = 0

    # Deferred TLB fills: every fill appends (page, frame) for the L2
    # and for the issuing SM's L1; flushed before any real TLB probe.
    pend_l2_p: list[int] = []
    pend_l2_f: list[int] = []
    pend_l1_p: list[list[int]] = [[] for _ in range(num_sms)]
    pend_l1_f: list[list[int]] = [[] for _ in range(num_sms)]

    # Exact TLB-presence map: page -> bitmask with bit ``s`` set while
    # SM ``s``'s L1 holds the page and ``l2bit`` set while the L2 does.
    # Updated at every fill, LRU eviction, and shootdown (deferred fills
    # land at flush time; every path that reads the map flushes first),
    # so one dict probe classifies a page and one pop drives a shootdown
    # that touches only the structures actually holding the victim.
    l2bit = 1 << num_sms
    not_l2 = ~l2bit
    sm_bits = [1 << s for s in range(num_sms)]
    sm_nbits = [~(1 << s) for s in range(num_sms)]
    presence: dict[int, int] = {}
    for s in range(num_sms):
        bit = sm_bits[s]
        for entries_d in l1_sets[s]:
            for p in entries_d:
                presence[p] = presence.get(p, 0) | bit
    for entries_d in l2_sets:
        for p in entries_d:
            presence[p] = presence.get(p, 0) | l2bit
    presence_get = presence.get
    presence_pop = presence.pop

    # Per-segment registries of the last pressure-unflagged position in
    # each set (cleared by process_segment); a shootdown that removes an
    # entry from one of these sets before that position invalidates the
    # pressure proof and degrades the segment remainder.
    fr1_max: dict[int, int] = {}
    fr2_max: dict[int, int] = {}

    apply_batched = TLB.apply_batched_misses
    dbg = DEBUG_COUNTS

    def flush_pending() -> None:
        """Apply every deferred TLB fill, counting LRU evictions."""
        nonlocal l2_ev_b
        count = len(pend_l2_p)
        if not count:
            return
        if dbg is not None:
            dbg["flushes"] = dbg.get("flushes", 0) + 1
        if count <= SMALL_FLUSH:
            # Sequential replay — exact by construction.
            for p, f in zip(pend_l2_p, pend_l2_f):
                entries = l2_sets[p & l2_mask]
                if len(entries) >= l2_assoc:
                    old, _ = entries.popitem(last=False)
                    l2_ev_b += 1
                    om = presence[old] & not_l2
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                entries[p] = f
                presence[p] = presence_get(p, 0) | l2bit
            pend_l2_p.clear()
            pend_l2_f.clear()
            for s in range(num_sms):
                ps_l = pend_l1_p[s]
                if not ps_l:
                    continue
                fs_l = pend_l1_f[s]
                sets_s = l1_sets[s]
                bit = sm_bits[s]
                nbit = sm_nbits[s]
                evs = 0
                for p, f in zip(ps_l, fs_l):
                    entries = sets_s[p & l1_mask]
                    if len(entries) >= l1_assoc:
                        old, _ = entries.popitem(last=False)
                        evs += 1
                        om = presence[old] & nbit
                        if om:
                            presence[old] = om
                        else:
                            del presence[old]
                    entries[p] = f
                    presence[p] = presence_get(p, 0) | bit
                l1_ev_b[s] += evs
                ps_l.clear()
                fs_l.clear()
            return
        # Presence fixup rule: clear the evictees' bits first, then set
        # the bit for every fill that actually survived in its set.  A
        # page can appear in BOTH lists — a pressure-unflagged page that
        # was still in the set when the batch cleared it and whose own
        # fill then survived in the tail — and ends present, which the
        # membership probe gets right where any fixed order would not.
        # Batch-head evictees may never have had their bit set, hence
        # the get-guard.
        evicted: list[int] = []
        if l2_nsets == 1:
            l2_ev_b += apply_batched(l2_sets[0], pend_l2_p, pend_l2_f,
                                     l2_assoc, evicted)
        else:
            l2_ev_b += _grouped_apply(l2_sets, l2_mask, l2_assoc,
                                      pend_l2_p, pend_l2_f, evicted)
        for old in evicted:
            om = presence_get(old)
            if om is None:
                continue
            om &= not_l2
            if om:
                presence[old] = om
            else:
                del presence[old]
        for p in pend_l2_p:
            if p in l2_sets[p & l2_mask]:
                presence[p] = presence_get(p, 0) | l2bit
        pend_l2_p.clear()
        pend_l2_f.clear()
        for s in range(num_sms):
            ps_l = pend_l1_p[s]
            if not ps_l:
                continue
            fs_l = pend_l1_f[s]
            evicted.clear()
            if l1_nsets == 1:
                l1_ev_b[s] += apply_batched(l1_sets[s][0], ps_l, fs_l,
                                            l1_assoc, evicted)
            else:
                l1_ev_b[s] += _grouped_apply(l1_sets[s], l1_mask, l1_assoc,
                                             ps_l, fs_l, evicted)
            bit = sm_bits[s]
            nbit = sm_nbits[s]
            sets_s = l1_sets[s]
            for old in evicted:
                om = presence_get(old)
                if om is None:
                    continue
                om &= nbit
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            for p in ps_l:
                if p in sets_s[p & l1_mask]:
                    presence[p] = presence_get(p, 0) | bit
            ps_l.clear()
            fs_l.clear()

    def _grouped_apply(
        sets_list: list[Any],
        mask: int,
        assoc: int,
        ps_l: list[int],
        fs_l: list[int],
        evicted: list[int],
    ) -> int:
        """Group pending fills by set index, apply each group batched."""
        pa = np.array(ps_l, dtype=np.int64)
        fa = np.array(fs_l, dtype=np.int64)
        sid = pa & mask
        order = np.argsort(sid, kind="stable")
        pl = pa[order].tolist()
        fl = fa[order].tolist()
        sid_s = sid[order]
        bounds = (np.flatnonzero(sid_s[1:] != sid_s[:-1]) + 1).tolist()
        bounds.append(len(pl))
        evictions = 0
        start = 0
        for stop in bounds:
            if stop == start:
                continue
            entries = sets_list[pl[start] & mask]
            evictions += apply_batched(entries, pl[start:stop],
                                       fl[start:stop], assoc, evicted)
            start = stop
        return evictions

    def shoot(victim: int) -> int:
        """Masked TLB shootdown for ``victim``; return the removal mask.

        Exactly :meth:`repro.tlb.hierarchy.TLBHierarchy.shootdown` — the
        same per-TLB live ``shootdowns`` counts — but driven by the
        presence map, so only the structures holding the victim pay a
        dict deletion and an absent victim costs one failed probe.
        Caller must have flushed pending fills.
        """
        mm = presence_pop(victim, 0)
        if not mm:
            return 0
        full = mm
        if mm & l2bit:
            del l2_sets[victim & l2_mask][victim]
            l2_stats.shootdowns += 1
            mm &= not_l2
        while mm:
            b = mm & -mm
            s2 = b.bit_length() - 1
            del l1_sets[s2][victim & l1_mask][victim]
            l1_stats[s2].shootdowns += 1
            mm ^= b
        return full

    def shoot_degrades(mask: int, victim: int, t: int) -> bool:
        """Did this shootdown invalidate a later pressure-unflag?

        True when the removal hit a set whose guaranteed-insert count
        justified unflagging a position after ``t`` — the only case
        where batch classification can diverge from reality.
        """
        if not mask:
            return False
        if (
            fr2_max
            and mask & l2bit
            and fr2_max.get(victim & l2_mask, -1) > t
        ):
            return True
        if fr1_max:
            mm = mask & (l2bit - 1)
            vset = victim & l1_mask
            while mm:
                b = mm & -mm
                s2 = b.bit_length() - 1
                if fr1_max.get(s2 * l1_nsets + vset, -1) > t:
                    return True
                mm ^= b
        return False

    def lean_fault(page: int) -> tuple[int, Optional[int], int, int]:
        """Service one fault sans TLB fill; return (frame, victim,
        shootdown-removal mask, bytes moved).

        Inlines ``UVMDriver.service_fault`` for the obs-free,
        checker-free, prefetch-free configuration this kernel accepts,
        with two changes: driver counters accumulate in kernel locals
        (folded at the end) and the victim's TLB shootdown goes through
        the presence-masked :func:`shoot`.
        """
        nonlocal fault_no, d_comp, d_cap, d_evict, d_bin, d_bout
        if pend_l2_p:
            flush_pending()
        fault_no += 1
        if page in ever_touched:
            d_cap += 1
        else:
            ever_touched.add(page)
            d_comp += 1
        policy_on_fault_pending(page)
        victim: Optional[int] = None
        rm_mask = 0
        if not free_list:
            victim = policy_select_victim()
            # Inlined page_table.invalidate (same exception contract).
            ve = pt_entries.get(victim)
            if ve is None or not ve.valid:
                raise KeyError(f"page {victim:#x} has no valid mapping")
            ve.valid = False
            # Inlined frame_pool.unmap_page.
            try:
                vframe = fop.pop(victim)
            except KeyError:
                raise KeyError(
                    f"page {victim:#x} is not resident"
                ) from None
            del pof[vframe]
            free_list.append(vframe)
            rm_mask = shoot(victim)
            d_evict += 1
            d_bout += page_size
        # Inlined frame_pool.map_page + page_table.install.
        frame = free_list.pop()
        fop[page] = frame
        pof[frame] = page
        pt_entries[page] = PageTableEntry(frame=frame, faulted_at=fault_no)
        d_bin += page_size
        policy_on_page_in(page, fault_no)
        moved = page_size if victim is None else page_size + page_size
        return frame, victim, rm_mask, moved

    def distribute_l1_misses(g: int, m: int) -> None:
        """Per-SM L1 miss counts for events ``g .. g+m`` (round-robin)."""
        full, rem = divmod(m, num_sms)
        if full:
            for s in range(num_sms):
                l1_misses_b[s] += full
        for d in range(rem):
            l1_misses_b[(g + d) % num_sms] += 1

    def vector_hit_timing(g: int, m: int) -> None:
        """Advance the clock over ``m`` consecutive walk-hit events.

        Events issue round-robin over warps; within one block of
        ``total_warps`` events, column ``d`` of the ``(W, S)`` reshape is
        one SM's in-order issue stream, so the per-SM recurrence
        ``X[k] = max(X[k-1] + 1, ready[k])`` collapses to a running
        maximum of ``ready[k] - k``.  Once a block satisfies
        ``X_b == X_{b-1} + L`` the recurrence is a fixed point (each
        block shifts by exactly the hit latency), so the remaining
        blocks are extrapolated in O(1).
        """
        latency = walk_hit_total
        full = m // total_warps if m >= total_warps else 0
        if full:
            wr = np.array(warp_ready, dtype=np.int64)
            warp_mat = ((g + np.arange(total_warps, dtype=np.int64))
                        % total_warps).reshape(warps_per_sm, num_sms)
            karr = np.arange(warps_per_sm, dtype=np.int64).reshape(-1, 1)
            issue0 = np.array(
                [sm_issue[(g + d) % num_sms] for d in range(num_sms)],
                dtype=np.int64,
            )
            x_prev: Any = None
            b = 0
            while b < full:
                ready = wr[warp_mat] if x_prev is None else x_prev + latency
                bmat = ready - karr
                np.maximum(bmat[0], issue0, out=bmat[0])
                x = np.maximum.accumulate(bmat, axis=0)
                x += karr
                issue0 = x[-1] + 1
                b += 1
                if (
                    b < full
                    and x_prev is not None
                    and np.array_equal(x, x_prev + latency)
                ):
                    jump = full - b
                    x = x + jump * latency
                    issue0 = x[-1] + 1
                    b = full
                x_prev = x
            wr[warp_mat] = x_prev + latency
            warp_ready[:] = wr.tolist()
            for d in range(num_sms):
                sm_issue[(g + d) % num_sms] = int(issue0[d])
            g += full * total_warps
            m -= full * total_warps
        for j in range(m):
            gg = g + j
            w = gg % total_warps
            s = gg % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1
            warp_ready[w] = start + latency

    def vector_fault_timing(g: int, services: list[int]) -> None:
        """Advance the clock over consecutive fault events.

        Fault service serializes through the single fault queue:
        ``fq[c] = max(begin[c], fq[c-1]) + svc[c]``, which expands to a
        prefix maximum of ``begin[c] - cum_svc[c-1]`` — one
        ``np.maximum.accumulate`` per block.
        """
        nonlocal fq
        m = len(services)
        full, tail = divmod(m, total_warps)
        if full:
            sv_all = np.array(services[:full * total_warps], dtype=np.int64)
            wr = np.array(warp_ready, dtype=np.int64)
            warp_mat = ((g + np.arange(total_warps, dtype=np.int64))
                        % total_warps).reshape(warps_per_sm, num_sms)
            karr = np.arange(warps_per_sm, dtype=np.int64).reshape(-1, 1)
            issue0 = np.array(
                [sm_issue[(g + d) % num_sms] for d in range(num_sms)],
                dtype=np.int64,
            )
            fq_mat: Any = None
            for b in range(full):
                ready = wr[warp_mat] if fq_mat is None else fq_mat
                bmat = ready - karr
                np.maximum(bmat[0], issue0, out=bmat[0])
                x = np.maximum.accumulate(bmat, axis=0)
                x += karr
                issue0 = x[-1] + 1
                begin = x.ravel() + fault_begin_latency
                sv = sv_all[b * total_warps:(b + 1) * total_warps]
                cum = np.cumsum(sv)
                avec = begin - cum + sv
                np.maximum.accumulate(avec, out=avec)
                fqv = np.maximum(avec, fq) + cum
                fq = int(fqv[-1])
                fq_mat = fqv.reshape(warps_per_sm, num_sms)
            wr[warp_mat] = fq_mat
            warp_ready[:] = wr.tolist()
            for d in range(num_sms):
                sm_issue[(g + d) % num_sms] = int(issue0[d])
            g += full * total_warps
        for j in range(tail):
            svc = services[full * total_warps + j]
            gg = g + j
            w = gg % total_warps
            s = gg % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1
            begin_t = start + fault_begin_latency
            if fq > begin_t:
                begin_t = fq
            fq = begin_t + svc
            warp_ready[w] = fq

    def run_hits(g: int, pages_run: list[int]) -> None:
        """Replay a run of classified walk-hit events starting at ``g``."""
        nonlocal l2_misses_b, walks_b, whits_b
        m = len(pages_run)
        if dbg is not None:
            dbg["hit_runs"] = dbg.get("hit_runs", 0) + 1
            dbg["hit_run_events"] = dbg.get("hit_run_events", 0) + m
        frames: list[int] = []
        ap = frames.append
        if hit_dispatch == 1:
            on_walk_hits(pages_run)
            for p in pages_run:
                e = pt_entries[p]
                e.walk_hits += 1
                ap(e.frame)
        elif hit_dispatch == 0:
            for p in pages_run:
                e = pt_entries[p]
                e.walk_hits += 1
                ap(e.frame)
        else:
            for p in pages_run:
                e = pt_entries[p]
                e.walk_hits += 1
                for listener in listeners:
                    listener(p)
                ap(e.frame)
        l2_misses_b += m
        walks_b += m
        whits_b += m
        distribute_l1_misses(g, m)
        pend_l2_p.extend(pages_run)
        pend_l2_f.extend(frames)
        for s in range(num_sms):
            idx0 = (s - g) % num_sms
            if idx0 < m:
                pend_l1_p[s].extend(pages_run[idx0::num_sms])
                pend_l1_f[s].extend(frames[idx0::num_sms])
        vector_hit_timing(g, m)

    def free_fault_run(g: int, pages_run: list[int]) -> None:
        """Replay consecutive compulsory faults onto free frames.

        Caller guarantees: no page previously touched, enough free
        frames for the whole run → no evictions, no capacity faults.
        """
        nonlocal d_comp, d_bin, fault_no, l2_misses_b, walks_b, wfaults_b
        m = len(pages_run)
        if dbg is not None:
            dbg["free_run_events"] = dbg.get("free_run_events", 0) + m
        # Free frames pop from the tail; slice + reverse replicates the
        # per-fault pop order.
        frames = free_list[-m:][::-1]
        del free_list[-m:]
        base_service = transfer_memo.get(page_size)
        if base_service is None:
            base_service = fault_cycles + transfer_cycles(page_size)
            transfer_memo[page_size] = base_service
        fno = fault_no
        services: list[int]
        if consume_bytes is None and not has_pending_cb:
            services = [base_service] * m
            if lru_chain is not None:
                for j, p in enumerate(pages_run):
                    fno += 1
                    f = frames[j]
                    fop[p] = f
                    pof[f] = p
                    pt_entries[p] = PageTableEntry(frame=f, faulted_at=fno)
                    lru_chain[p] = None
            else:
                for j, p in enumerate(pages_run):
                    fno += 1
                    f = frames[j]
                    fop[p] = f
                    pof[f] = p
                    pt_entries[p] = PageTableEntry(frame=f, faulted_at=fno)
                    policy_on_page_in(p, fno)
        else:
            services = []
            sap = services.append
            for j, p in enumerate(pages_run):
                fno += 1
                if has_pending_cb:
                    policy_on_fault_pending(p)
                f = frames[j]
                fop[p] = f
                pof[f] = p
                pt_entries[p] = PageTableEntry(frame=f, faulted_at=fno)
                policy_on_page_in(p, fno)
                svc = base_service
                if consume_bytes is not None:
                    extra = consume_bytes()
                    if extra:
                        svc += transfer_cycles(extra)
                sap(svc)
        fault_no = fno
        ever_touched.update(pages_run)
        d_comp += m
        d_bin += m * page_size
        l2_misses_b += m
        walks_b += m
        wfaults_b += m
        distribute_l1_misses(g, m)
        pend_l2_p.extend(pages_run)
        pend_l2_f.extend(frames)
        for s in range(num_sms):
            idx0 = (s - g) % num_sms
            if idx0 < m:
                pend_l1_p[s].extend(pages_run[idx0::num_sms])
                pend_l1_f[s].extend(frames[idx0::num_sms])
        vector_fault_timing(g, services)

    def scalar_generic(i0: int, count: int) -> None:
        """Exact v1 loop body over ``trace[i0:i0+count]``.

        Always sound: probes the live TLB dictionaries (after flushing
        deferred fills) and fills them eagerly.  Used for short or
        duplicate-heavy stretches and for degraded segment remainders.
        """
        nonlocal l2_hits_b, l2_misses_b, l2_ev_b
        nonlocal walks_b, whits_b, wfaults_b, fq
        if dbg is not None:
            dbg["scalar_events"] = dbg.get("scalar_events", 0) + count
        flush_pending()
        g = i0
        for page in pages_arr[i0:i0 + count].tolist():
            w = g % total_warps
            s = g % num_sms
            g += 1
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1

            entries = l1_sets[s][page & l1_mask]
            if page in entries:
                entries.move_to_end(page)
                l1_hits_b[s] += 1
                warp_ready[w] = start + l1_hit_total
                continue
            l1_misses_b[s] += 1

            l2_entries = l2_sets[page & l2_mask]
            if page in l2_entries:
                l2_entries.move_to_end(page)
                l2_hits_b += 1
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    om = presence[old] & sm_nbits[s]
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                entries[page] = 0
                presence[page] |= sm_bits[s]
                warp_ready[w] = start + l2_hit_total
                continue
            l2_misses_b += 1

            walks_b += 1
            pte = pt_entries.get(page)
            if pte is not None and pte.valid:
                whits_b += 1
                pte.walk_hits += 1
                for listener in listeners:
                    listener(page)
                frame = pte.frame
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    om = presence[old] & sm_nbits[s]
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                entries[page] = frame
                if len(l2_entries) >= l2_assoc:
                    old, _ = l2_entries.popitem(last=False)
                    l2_ev_b += 1
                    om = presence[old] & not_l2
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                l2_entries[page] = frame
                presence[page] = presence_get(page, 0) | sm_bits[s] | l2bit
                warp_ready[w] = start + walk_hit_total
                continue

            wfaults_b += 1
            frame, _victim, _rm, moved = lean_fault(page)
            service = transfer_memo.get(moved)
            if service is None:
                service = fault_cycles + transfer_cycles(moved)
                transfer_memo[moved] = service
            if len(entries) >= l1_assoc:
                old, _ = entries.popitem(last=False)
                l1_ev_b[s] += 1
                om = presence[old] & sm_nbits[s]
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            entries[page] = frame
            if len(l2_entries) >= l2_assoc:
                old, _ = l2_entries.popitem(last=False)
                l2_ev_b += 1
                om = presence[old] & not_l2
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            l2_entries[page] = frame
            # A faulting page was non-resident, hence in no TLB.
            presence[page] = sm_bits[s] | l2bit
            if consume_bytes is not None:
                extra = consume_bytes()
                if extra:
                    service += transfer_cycles(extra)
            begin = start + fault_begin_latency
            if fq > begin:
                begin = fq
            fq = begin + service
            warp_ready[w] = fq

    def find_segment(i0: int) -> int:
        """Length of the longest distinct-page prefix at ``i0`` (capped)."""
        end = i0 + SEGMENT_CAP
        if end > n:
            end = n
        rep = np.flatnonzero(prev_arr[i0 + 1:end] >= i0)
        if rep.size:
            return int(rep[0]) + 1
        return end - i0

    def process_segment(g0: int, seg_len: int, depth: int = 0) -> None:
        """Replay one distinct-page segment with batch classification.

        ``depth`` counts degrade-and-reclassify recursions; past a fixed
        bound the remainder is replayed scalar instead (an adversarial
        trace could otherwise degrade every few events and overflow the
        interpreter stack).
        """
        if dbg is not None:
            dbg["segments"] = dbg.get("segments", 0) + 1
        nonlocal l2_hits_b, l2_misses_b, l2_ev_b
        nonlocal walks_b, whits_b, wfaults_b, fq
        nonlocal fault_no, d_comp, d_cap, d_evict, d_bin, d_bout
        seg = pages_arr[g0:g0 + seg_len]
        seg_list = seg.tolist()
        flush_pending()

        # --- residency + TLB-presence classification ------------------
        # One python pass over the segment replaces the per-structure
        # np.isin sweeps: residency is a frame-map probe, TLB presence
        # one presence-map probe, and the issuing level falls out of the
        # mask bits.  Only *own* presence — the issuing SM's L1 or the
        # L2 — makes a position a candidate: a page parked solely in
        # another SM's private L1 still misses both probed levels, so
        # its event is a guaranteed hit-class insert.
        res_ba = bytearray(seg_len)
        cand_idx: list[int] = []
        cand_masks: list[int] = []
        i = 0
        sm0 = g0 % num_sms
        for p in seg_list:
            if p in fop:
                res_ba[i] = 1
            m = presence_get(p)
            if m is not None and (m & l2bit or m >> ((sm0 + i) % num_sms) & 1):
                cand_idx.append(i)
                cand_masks.append(m)
            i += 1

        # --- pressure refinement: a candidate whose L1 set *and* L2 set
        # each receive >= associativity guaranteed inserts (non-candidate
        # events) before its position is provably evicted by then — as
        # long as no shootdown removes entries from those sets first
        # (tracked via fr1_max/fr2_max).
        flag_ba = bytearray(seg_len)
        fr1_max.clear()
        fr2_max.clear()
        cand_np: Any = None
        if cand_idx:
            cand_np = np.zeros(seg_len, dtype=bool)
            cand_np[cand_idx] = True
            noncand = ~cand_np
            sm_idx = (g0 + np.arange(seg_len, dtype=np.int64)) % num_sms
            press1: Any = None
            if num_sms * l1_nsets <= MAX_REFINE_KEYS:
                if l1_nsets == 1:
                    key1 = sm_idx
                else:
                    key1 = sm_idx * l1_nsets + (seg & l1_mask)
                press1 = np.zeros(seg_len, dtype=bool)
                # Order-free: each key selects a disjoint mask and the
                # per-key writes never overlap.
                for k in set(key1[cand_np].tolist()):  # noqa: REP012
                    mk = key1 == k
                    counts = np.cumsum(noncand & mk)
                    press1[mk] = counts[mk] >= l1_assoc
            press2: Any = None
            if l2_nsets <= MAX_REFINE_KEYS:
                key2 = seg & l2_mask
                press2 = np.zeros(seg_len, dtype=bool)
                # Order-free: disjoint masks, as above.
                for k in set(key2[cand_np].tolist()):  # noqa: REP012
                    mk = key2 == k
                    counts = np.cumsum(noncand & mk)
                    press2[mk] = counts[mk] >= l2_assoc
            for ci in range(len(cand_idx)):
                i = cand_idx[ci]
                m = cand_masks[ci]
                s = (sm0 + i) % num_sms
                frag1 = False
                frag2 = False
                ok = True
                if m >> s & 1:
                    if press1 is not None and press1[i]:
                        frag1 = True
                    else:
                        ok = False
                if ok and m & l2bit:
                    if press2 is not None and press2[i]:
                        frag2 = True
                    else:
                        ok = False
                if not ok:
                    flag_ba[i] = 1
                    continue
                if frag1:
                    k = s * l1_nsets + (seg_list[i] & l1_mask)
                    if fr1_max.get(k, -1) < i:
                        fr1_max[k] = i
                if frag2:
                    k = seg_list[i] & l2_mask
                    if fr2_max.get(k, -1) < i:
                        fr2_max[k] = i

        res_u8 = np.frombuffer(bytes(res_ba), dtype=np.uint8)
        flag_u8 = np.frombuffer(bytes(flag_ba), dtype=np.uint8)
        fault_np = (res_u8 | flag_u8) == 0
        fault_ba = bytearray(fault_np.tobytes())
        specials = np.flatnonzero((res_u8 == 0) | (flag_u8 != 0)).tolist()
        nsp = len(specials)
        sp = 0
        flips: list[int] = []
        flip_set: set[int] = set()
        pos_map: Optional[dict[int, int]] = None

        def note_eviction(victim: int, t: int) -> None:
            """Flip the victim's future position into the fault class."""
            nonlocal pos_map
            if pos_map is None:
                pos_map = {p: i for i, p in enumerate(seg_list)}
            vt = pos_map.get(victim)
            if vt is not None and vt > t and vt not in flip_set:
                flip_set.add(vt)
                if flag_ba[vt]:
                    # Evicted + shot down before its event → guaranteed
                    # fault; drop the flag so the fault path handles it.
                    flag_ba[vt] = 0
                heapq.heappush(flips, vt)

        def shoot_invalidates(rm_mask: int, victim: int, t: int) -> bool:
            """Did this shootdown invalidate a later pressure-unflag?

            A pressure proof counts this segment's guaranteed
            (non-candidate) inserts, so it only breaks when one of THOSE
            entries is removed: the victim must have had its own event
            before ``t`` (the sole way a page enters a TLB mid-segment),
            and that event must have been a counted one.  A victim whose
            entry predates the segment, or whose event was a candidate,
            leaves every counted insert in place.
            """
            if not rm_mask or (not fr1_max and not fr2_max):
                return False
            vt = pos_map.get(victim) if pos_map is not None else None
            if vt is None or vt >= t:
                return False
            if cand_np is not None and cand_np[vt]:
                return False
            return shoot_degrades(rm_mask, victim, t)

        def flagged_event(t: int) -> bool:
            """One flagged event via the live-probe body; True → degrade."""
            nonlocal l2_hits_b, l2_misses_b, l2_ev_b
            nonlocal walks_b, whits_b, wfaults_b, fq
            if dbg is not None:
                dbg["flagged_events"] = dbg.get("flagged_events", 0) + 1
            flush_pending()
            g = g0 + t
            page = seg_list[t]
            w = g % total_warps
            s = g % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1

            entries = l1_sets[s][page & l1_mask]
            if page in entries:
                entries.move_to_end(page)
                l1_hits_b[s] += 1
                warp_ready[w] = start + l1_hit_total
                return False
            l1_misses_b[s] += 1
            l2_entries = l2_sets[page & l2_mask]
            if page in l2_entries:
                l2_entries.move_to_end(page)
                l2_hits_b += 1
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    om = presence[old] & sm_nbits[s]
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                entries[page] = 0
                presence[page] |= sm_bits[s]
                warp_ready[w] = start + l2_hit_total
                return False
            l2_misses_b += 1
            walks_b += 1
            pte = pt_entries.get(page)
            if pte is not None and pte.valid:
                whits_b += 1
                pte.walk_hits += 1
                for listener in listeners:
                    listener(page)
                frame = pte.frame
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    om = presence[old] & sm_nbits[s]
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                entries[page] = frame
                if len(l2_entries) >= l2_assoc:
                    old, _ = l2_entries.popitem(last=False)
                    l2_ev_b += 1
                    om = presence[old] & not_l2
                    if om:
                        presence[old] = om
                    else:
                        del presence[old]
                l2_entries[page] = frame
                presence[page] = presence_get(page, 0) | sm_bits[s] | l2bit
                warp_ready[w] = start + walk_hit_total
                return False
            wfaults_b += 1
            frame, victim, rm_mask, moved = lean_fault(page)
            service = transfer_memo.get(moved)
            if service is None:
                service = fault_cycles + transfer_cycles(moved)
                transfer_memo[moved] = service
            if len(entries) >= l1_assoc:
                old, _ = entries.popitem(last=False)
                l1_ev_b[s] += 1
                om = presence[old] & sm_nbits[s]
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            entries[page] = frame
            if len(l2_entries) >= l2_assoc:
                old, _ = l2_entries.popitem(last=False)
                l2_ev_b += 1
                om = presence[old] & not_l2
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            l2_entries[page] = frame
            presence[page] = sm_bits[s] | l2bit
            if consume_bytes is not None:
                extra = consume_bytes()
                if extra:
                    service += transfer_cycles(extra)
            begin = start + fault_begin_latency
            if fq > begin:
                begin = fq
            fq = begin + service
            warp_ready[w] = fq
            if victim is not None:
                note_eviction(victim, t)
                return shoot_invalidates(rm_mask, victim, t)
            return False

        t = 0
        scan_blocked_until = 0
        while t < seg_len:
            while sp < nsp and specials[sp] < t:
                sp += 1
            nxt = specials[sp] if sp < nsp else seg_len
            if flips and flips[0] < nxt:
                nxt = flips[0]
            if t < nxt:
                run_hits(g0 + t, seg_list[t:nxt])
                t = nxt
                continue
            if flips and flips[0] == t:
                heapq.heappop(flips)
            if sp < nsp and specials[sp] == t:
                sp += 1
            if flag_ba[t]:
                if flagged_event(t):
                    # A shootdown invalidated a later pressure-unflag:
                    # reclassify the remainder (still distinct pages)
                    # against the post-shootdown state.
                    t += 1
                    rem = seg_len - t
                    if rem >= MIN_SEGMENT and depth < 32:
                        process_segment(g0 + t, rem, depth + 1)
                    elif rem > 0:
                        scalar_generic(g0 + t, rem)
                    return
                t += 1
                continue
            # Fault event.  First try to batch a compulsory run onto
            # free frames (scan result is remembered so a rejected run
            # is not rescanned fault by fault).
            if free_list and fault_ba[t] and t >= scan_blocked_until:
                limit = t + len(free_list)
                if limit > seg_len:
                    limit = seg_len
                if limit - t >= MIN_FREE_RUN:
                    stop_rel = np.flatnonzero(~fault_np[t:limit])
                    end = t + int(stop_rel[0]) if stop_rel.size else limit
                    if (
                        end - t >= MIN_FREE_RUN
                        and ever_touched.isdisjoint(seg_list[t:end])
                    ):
                        free_fault_run(g0 + t, seg_list[t:end])
                        t = end
                        continue
                    scan_blocked_until = end
            # --- inlined scalar fault (the eviction-chain hot path):
            # lean_fault + eager TLB fills with presence updates, plus
            # LRU/base-policy specializations resolved outside the loop.
            if dbg is not None:
                dbg["fault_events"] = dbg.get("fault_events", 0) + 1
            if pend_l2_p:
                flush_pending()
            g = g0 + t
            page = seg_list[t]
            w = g % total_warps
            s = g % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1
            l1_misses_b[s] += 1
            l2_misses_b += 1
            walks_b += 1
            wfaults_b += 1
            fault_no += 1
            if page in ever_touched:
                d_cap += 1
            else:
                ever_touched.add(page)
                d_comp += 1
            if has_pending_cb:
                policy_on_fault_pending(page)
            victim: Optional[int] = None
            rm_mask = 0
            if free_list:
                frame = free_list.pop()
                pt_entries[page] = PageTableEntry(
                    frame=frame, faulted_at=fault_no
                )
                moved = page_size
            else:
                if lru_chain is not None and lru_chain:
                    victim = lru_chain.popitem(last=False)[0]
                else:
                    victim = policy_select_victim()
                ve = pt_entries.get(victim)
                if ve is None or not ve.valid:
                    raise KeyError(
                        f"page {victim:#x} has no valid mapping"
                    )
                del pt_entries[victim]
                try:
                    frame = fop.pop(victim)
                except KeyError:
                    raise KeyError(
                        f"page {victim:#x} is not resident"
                    ) from None
                # Masked shootdown (pending fills were flushed above);
                # identical to shoot(), inlined on the chain path.
                mm = presence_pop(victim, 0)
                rm_mask = mm
                if mm:
                    if mm & l2bit:
                        del l2_sets[victim & l2_mask][victim]
                        l2_stats.shootdowns += 1
                        mm &= not_l2
                    while mm:
                        b = mm & -mm
                        s2 = b.bit_length() - 1
                        del l1_sets[s2][victim & l1_mask][victim]
                        l1_stats[s2].shootdowns += 1
                        mm ^= b
                d_evict += 1
                d_bout += page_size
                # Reuse the victim's entry object in place of
                # page_table.invalidate + install: the tombstone and a
                # fresh entry are observably identical (the collector
                # reads counters, never entry identity), and this saves
                # an allocation per chain fault.
                ve.frame = frame
                ve.faulted_at = fault_no
                ve.walk_hits = 0
                pt_entries[page] = ve
                moved = page_size + page_size
            fop[page] = frame
            pof[frame] = page
            d_bin += page_size
            if lru_chain is not None:
                lru_chain[page] = None
            else:
                policy_on_page_in(page, fault_no)
            service = transfer_memo.get(moved)
            if service is None:
                service = fault_cycles + transfer_cycles(moved)
                transfer_memo[moved] = service
            entries = l1_sets[s][page & l1_mask]
            if len(entries) >= l1_assoc:
                old, _ = entries.popitem(last=False)
                l1_ev_b[s] += 1
                om = presence[old] & sm_nbits[s]
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            entries[page] = frame
            l2_entries = l2_sets[page & l2_mask]
            if len(l2_entries) >= l2_assoc:
                old, _ = l2_entries.popitem(last=False)
                l2_ev_b += 1
                om = presence[old] & not_l2
                if om:
                    presence[old] = om
                else:
                    del presence[old]
            l2_entries[page] = frame
            presence[page] = sm_bits[s] | l2bit
            if consume_bytes is not None:
                extra = consume_bytes()
                if extra:
                    service += transfer_cycles(extra)
            begin = start + fault_begin_latency
            if fq > begin:
                begin = fq
            fq = begin + service
            warp_ready[w] = fq
            if victim is not None:
                note_eviction(victim, t)
                if shoot_invalidates(rm_mask, victim, t):
                    t += 1
                    rem = seg_len - t
                    if rem >= MIN_SEGMENT and depth < 32:
                        process_segment(g0 + t, rem, depth + 1)
                    elif rem > 0:
                        scalar_generic(g0 + t, rem)
                    return
            t += 1

    # --- main loop -----------------------------------------------------
    i = 0
    while i < n:
        remaining = n - i
        if remaining < MIN_SEGMENT:
            scalar_generic(i, remaining)
            break
        seg_len = find_segment(i)
        if seg_len < MIN_SEGMENT:
            chunk = SCALAR_CHUNK if SCALAR_CHUNK < remaining else remaining
            scalar_generic(i, chunk)
            i += chunk
        else:
            process_segment(i, seg_len)
            i += seg_len

    # --- fold batched counters back into the shared structures ---------
    flush_pending()
    for s, tlb in enumerate(hierarchy.l1_tlbs):
        tlb.add_batched_stats(l1_hits_b[s], l1_misses_b[s], l1_ev_b[s])
    hierarchy.l2_tlb.add_batched_stats(l2_hits_b, l2_misses_b, l2_ev_b)
    walker.add_batched_counts(walks_b, whits_b, wfaults_b)
    stats.faults = fault_no
    stats.compulsory_faults += d_comp
    stats.capacity_faults += d_cap
    stats.evictions += d_evict
    stats.bytes_migrated_in += d_bin
    stats.bytes_evicted_out += d_bout
    return max(max(warp_ready, default=0), max(sm_issue, default=0))
