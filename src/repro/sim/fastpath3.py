"""Fastpath v3 — the relaxed, *metric-equivalent* batch kernel.

Tiers 0–2 are bit-identical by construction; this tier is not.  It
trades a small, tolerance-gated drift in ``key_metrics()`` for batching
the one path v2 still replays scalar — **eviction chains** — and is
therefore **opt-in only**: the env var never selects it
(:func:`repro.sim.config.resolve_fastpath_level` clamps the ambient
path to tier 2) and the differential harness compares it against the
reference under declared per-metric tolerances plus golden *trend*
checks rather than equality (DESIGN §13, ``repro.check.diffrun``).

Everything classification-side is inherited from v2 and stays exact:
distinct-page segments, the presence-masked candidate split with
pressure-refinement proofs, live-probed flagged events, eviction flips,
deferred TLB fills with closed-form batched eviction counts, and the
closed-form warp/fault-queue timing recurrences.  Hit/miss/fault
classification therefore matches the reference event for event *given
the same structural state*.  What v3 changes is how a run of
consecutive faults is serviced: instead of v2's per-fault scalar chain
(select victim → shoot → page in, one event at a time), v3 services
the whole run in capacity-bounded **chunks** — all victims first,
then all page-ins, with one vectorized fault-queue timing pass.

Documented relaxations (the §13 contract)
-----------------------------------------

R1  Victims for a chunk are selected *before* any of the chunk's
    page-ins (``EvictionPolicy.select_victims_batch``), where the
    reference interleaves select → page-in per fault.  For stock LRU
    the victim sequence is provably unchanged (chunks never exceed
    capacity, so every victim predates every chunk page-in); adaptive
    policies (HPE's dynamic adjustment, CLOCK-Pro's hands, ARC's
    ghosts) may choose different victims.
R2  HPE drains each strategy-selected page set to exhaustion before
    searching again (``HPEPolicy.select_victims_batch``), so ``MRU_C``
    jump adjustments move between sets, not pages.
R3  Within a chunk, all victim shootdowns precede the chunk's deferred
    TLB fills, where the reference interleaves them per fault — the
    TLB sets end with the same members only when no fill-pressure
    eviction lands in between, so set contents (and later hit/miss
    splits) can drift.

Divergent victims change future residency, so every downstream metric
— ``faults``, ``capacity_faults``, ``evictions``, byte counters,
TLB/walker hit splits, ``cycles`` — may drift within the declared
tolerances.  What stays **exact**: ``policy``, ``workload``,
``capacity_pages``, ``footprint_pages``, ``trace_length``,
``instructions``, ``compulsory_faults`` (first-touch sets are
eviction-independent), ``prefetches``, HIR transfer boundaries (every
16th fault) and HPE interval advances (every 64th) relative to the
fault sequence, and per-fault PCIe byte accounting.

Fallback: :func:`eligible` mirrors v2's conditions (no obs, no
sanitizer, no offline policy, no prefetching) plus flat-array bounds;
ineligible runs drop to tier 2 then tier 1 in
:meth:`repro.sim.engine.UVMSimulator.run`, which records the executed
tier in ``extras["fastpath"]``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.core.soa import Bitmap
from repro.memory.page_table import PageTableEntry
from repro.policies.base import EvictionPolicy
from repro.policies.lru import LRUPolicy
from repro.tlb.tlb import TLB

if TYPE_CHECKING:
    from repro.sim.engine import UVMSimulator

try:  # numpy is optional at runtime (test extra); gate, don't require.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via eligible()
    np = None  # type: ignore[assignment]

#: Hard cap on one segment's length (bounds per-segment numpy scratch).
SEGMENT_CAP = 8192

#: Distinct-page prefixes shorter than this are replayed scalar.  The
#: v3 classifier is fully vectorized, so it amortizes on shorter
#: segments than v2's python classification pass did.
MIN_SEGMENT = 64

#: Events replayed by the scalar-generic loop when segmentation fails
#: (adversarial duplicate-heavy traces) before re-trying segmentation.
SCALAR_CHUNK = 256

#: Below this many pending L2 fills, a flush replays plain sequential
#: inserts instead of numpy set-grouping.
SMALL_FLUSH = 32

#: Upper bound on one batched fault chunk.  Smaller chunks keep the
#: policy's view closer to the reference interleaving (less R1 drift
#: for adaptive policies) at the cost of more flushes and batch calls;
#: the value balances measured HPE drift against throughput (16 keeps
#: the bench BFS/HPE cell metric-exact; ≥48 crosses HPE's page-set
#: granularity and the victim stream diverges sharply).
FAULT_CHUNK = 16

#: Skip the pressure-refinement pass when a level has more sets than
#: this (the per-set cumsum sweep would dominate); candidates then stay
#: flagged, which is always sound.
MAX_REFINE_KEYS = 64

#: Pages at or above this bound disable the kernel: the flat presence
#: and residency arrays are indexed by page number.
MAX_PAGE = 1 << 22

#: SM-count bound so every presence bitmask (one bit per L1 plus the
#: L2 bit) fits the int64 presence array.
MAX_SMS = 62

#: When set to a dict (tests / perf triage), :func:`replay` tallies how
#: many events each internal path handled — keys ``segments``,
#: ``hit_run_events``, ``fault_run_events``, ``fault_chunks``,
#: ``batched_evictions``, ``flagged_events``, ``scalar_events``,
#: ``flushes``.
DEBUG_COUNTS: Optional[dict[str, int]] = None


def numpy_available() -> bool:
    """``True`` when the vector kernel's numpy dependency is importable."""
    return np is not None


def eligible(sim: "UVMSimulator", trace: Optional[Sequence[int]] = None) -> bool:
    """Can ``sim`` (replaying ``trace``) run the relaxed v3 kernel?

    The v2 conditions apply unchanged — observation and sanitizing need
    live per-event state, offline policies consume trace positions, and
    fault-around prefetching migrates pages the classifier cannot see.
    On top of those, v3 indexes flat arrays by page number, so page
    values must stay under :data:`MAX_PAGE` and the SM count under
    :data:`MAX_SMS`.  Ineligible runs fall back to tier 2 then tier 1.
    """
    if (
        np is None
        or sim.obs is not None
        or sim.checker is not None
        or sim.policy.requires_future
        or sim.driver.prefetch_degree != 0
        or sim.config.num_sms > MAX_SMS
    ):
        return False
    fop = sim.frame_pool._frame_of_page
    if fop and max(fop) >= MAX_PAGE:
        return False
    if trace is not None and len(trace) > 0:
        arr = np.asarray(trace, dtype=np.int64)
        if int(arr.min()) < 0 or int(arr.max()) >= MAX_PAGE:
            return False
    return True


def replay(sim: "UVMSimulator", trace: Sequence[int]) -> int:
    """Replay ``trace`` on ``sim`` with the relaxed kernel; return cycles.

    Caller must have checked :func:`eligible`.  Mutates the simulator's
    structures (TLBs, page table, frame pool, policy, stats) to a state
    *metric-equivalent* to the reference loop under the §13 contract.
    """
    assert np is not None
    config = sim.config
    num_sms = config.num_sms
    total_warps = config.total_warps
    warps_per_sm = config.warps_per_sm
    mem_latency = config.memory_latency_cycles
    pcie = config.pcie
    fault_cycles = pcie.fault_service_cycles
    transfer_cycles = pcie.transfer_cycles
    policy = sim.policy
    consume_bytes = getattr(policy, "consume_transfer_bytes", None)
    policy_on_fault_pending = policy.on_fault_pending
    policy_on_page_in = policy.on_page_in
    policy_select_victim = policy.select_victim
    select_victims_batch = policy.select_victims_batch
    has_pending_cb = (
        policy.on_fault_pending.__func__  # type: ignore[attr-defined]
        is not EvictionPolicy.on_fault_pending
    )
    lru_chain = policy._chain if type(policy) is LRUPolicy else None
    driver = sim.driver
    stats = driver.stats
    ever_touched, page_size = driver.fastpath_state()
    frame_pool = sim.frame_pool
    fop = frame_pool._frame_of_page
    pof = frame_pool._page_of_frame
    free_list = frame_pool._free
    pt_entries = sim.page_table._entries
    hierarchy = sim.hierarchy

    l1_states = [tlb.fastpath_state() for tlb in hierarchy.l1_tlbs]
    l1_sets = [state[0] for state in l1_states]
    l1_mask = l1_states[0][1]
    l1_assoc = l1_states[0][2]
    l1_latency = l1_states[0][3]
    l2_sets, l2_mask, l2_assoc, l2_latency = \
        hierarchy.l2_tlb.fastpath_state()
    l1_nsets = l1_mask + 1
    l2_nsets = l2_mask + 1
    l1_stats = [tlb.stats for tlb in hierarchy.l1_tlbs]
    l2_stats = hierarchy.l2_tlb.stats
    walker = sim.walker
    walk_latency = walker.walk_latency_cycles
    l1_hit_total = l1_latency + mem_latency
    l2_hit_total = l1_latency + l2_latency + mem_latency
    walk_hit_total = l1_latency + l2_latency + walk_latency + mem_latency
    fault_begin_latency = l1_latency + l2_latency + walk_latency
    listeners = walker._hit_listeners
    if not listeners:
        hit_dispatch = 0
    elif len(listeners) == 1 and listeners[0] == policy.on_walk_hit:
        hit_dispatch = 1
    else:
        hit_dispatch = 2
    on_walk_hits = policy.on_walk_hits

    pages_arr = np.asarray(trace, dtype=np.int64)
    n = int(pages_arr.shape[0])

    # Previous-occurrence index (one stable argsort for the whole trace)
    # makes every distinct-prefix query a single slice scan.
    prev_arr = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order = np.argsort(pages_arr, kind="stable")
        sorted_pages = pages_arr[order]
        same = sorted_pages[1:] == sorted_pages[:-1]
        prev_arr[order[1:][same]] = order[:-1][same]

    # --- flat page-indexed state (the SoA core the classifier reads) ---
    # One int64 bitmask per page (bit ``s`` while SM ``s``'s L1 holds it,
    # ``l2bit`` while the L2 does; 0 == absent) and one residency bool
    # per page, replacing v2's presence dict — segment classification
    # becomes two vector gathers.  Every page the kernel can index —
    # trace events, initial residents, TLB contents (a subset of the
    # residents) — is below ``top`` by the eligibility bound.
    top = 1
    if n:
        top = int(pages_arr.max()) + 1
    for p in fop:
        if p >= top:
            top = p + 1
    l2bit = 1 << num_sms
    not_l2 = ~l2bit
    sm_bits = [1 << s for s in range(num_sms)]
    sm_nbits = [~(1 << s) for s in range(num_sms)]
    presence = [0] * top
    for s in range(num_sms):
        bit = sm_bits[s]
        for entries_d in l1_sets[s]:
            for p in entries_d:
                presence[p] |= bit
    for entries_d in l2_sets:
        for p in entries_d:
            presence[p] |= l2bit

    # --- mutable replay state (shared by the nested helpers) -----------
    sm_issue = [0] * num_sms
    warp_ready = [0] * total_warps
    fq = 0  # fault_queue_free
    transfer_memo: dict[int, int] = {}

    l1_hits_b = [0] * num_sms
    l1_misses_b = [0] * num_sms
    l1_ev_b = [0] * num_sms
    l2_hits_b = 0
    l2_misses_b = 0
    l2_ev_b = 0
    walks_b = 0
    whits_b = 0
    wfaults_b = 0
    fault_no = stats.faults  # absolute fault sequence number
    d_comp = 0
    d_cap = 0
    d_evict = 0
    d_bin = 0
    d_bout = 0

    # Deferred TLB fills, flushed before any real TLB probe or shootdown.
    pend_l2_p: list[int] = []
    pend_l2_f: list[int] = []
    pend_l1_p: list[list[int]] = [[] for _ in range(num_sms)]
    pend_l1_f: list[list[int]] = [[] for _ in range(num_sms)]
    # Pages with a deferred fill outstanding: shootdowns consult this so
    # fault chunks only pay a flush when a victim actually has one.
    pend_pages: set[int] = set()

    # Per-segment registries of the last pressure-unflagged position in
    # each set (cleared by process_segment); a shootdown that removes an
    # entry from one of these sets before that position invalidates the
    # pressure proof and degrades the segment remainder.
    fr1_max: dict[int, int] = {}
    fr2_max: dict[int, int] = {}

    apply_batched = TLB.apply_batched_misses
    dbg = DEBUG_COUNTS

    def flush_pending() -> None:
        """Apply every deferred TLB fill, counting LRU evictions."""
        nonlocal l2_ev_b
        count = len(pend_l2_p)
        if not count:
            return
        pend_pages.clear()
        if dbg is not None:
            dbg["flushes"] = dbg.get("flushes", 0) + 1
        if count <= SMALL_FLUSH:
            # Sequential replay — exact by construction.
            for p, f in zip(pend_l2_p, pend_l2_f):
                entries = l2_sets[p & l2_mask]
                if len(entries) >= l2_assoc:
                    old, _ = entries.popitem(last=False)
                    l2_ev_b += 1
                    presence[old] &= not_l2
                entries[p] = f
                presence[p] |= l2bit
            pend_l2_p.clear()
            pend_l2_f.clear()
            for s in range(num_sms):
                ps_l = pend_l1_p[s]
                if not ps_l:
                    continue
                fs_l = pend_l1_f[s]
                sets_s = l1_sets[s]
                bit = sm_bits[s]
                nbit = sm_nbits[s]
                evs = 0
                for p, f in zip(ps_l, fs_l):
                    entries = sets_s[p & l1_mask]
                    if len(entries) >= l1_assoc:
                        old, _ = entries.popitem(last=False)
                        evs += 1
                        presence[old] &= nbit
                    entries[p] = f
                    presence[p] |= bit
                l1_ev_b[s] += evs
                ps_l.clear()
                fs_l.clear()
            return
        # Presence fixup rule: clear the evictees' bits first, then set
        # the bit for every fill that actually survived in its set (a
        # page can appear in both lists; membership probes decide).
        evicted: list[int] = []
        if l2_nsets == 1:
            l2_ev_b += apply_batched(l2_sets[0], pend_l2_p, pend_l2_f,
                                     l2_assoc, evicted)
        else:
            l2_ev_b += _grouped_apply(l2_sets, l2_mask, l2_assoc,
                                      pend_l2_p, pend_l2_f, evicted)
        for old in evicted:
            presence[old] &= not_l2
        for p in pend_l2_p:
            if p in l2_sets[p & l2_mask]:
                presence[p] |= l2bit
        pend_l2_p.clear()
        pend_l2_f.clear()
        for s in range(num_sms):
            ps_l = pend_l1_p[s]
            if not ps_l:
                continue
            fs_l = pend_l1_f[s]
            evicted.clear()
            if l1_nsets == 1:
                l1_ev_b[s] += apply_batched(l1_sets[s][0], ps_l, fs_l,
                                            l1_assoc, evicted)
            else:
                l1_ev_b[s] += _grouped_apply(l1_sets[s], l1_mask, l1_assoc,
                                             ps_l, fs_l, evicted)
            bit = sm_bits[s]
            nbit = sm_nbits[s]
            sets_s = l1_sets[s]
            for old in evicted:
                presence[old] &= nbit
            for p in ps_l:
                if p in sets_s[p & l1_mask]:
                    presence[p] |= bit
            ps_l.clear()
            fs_l.clear()

    def _grouped_apply(
        sets_list: list[Any],
        mask: int,
        assoc: int,
        ps_l: list[int],
        fs_l: list[int],
        evicted: list[int],
    ) -> int:
        """Group pending fills by set index, apply each group batched."""
        pa = np.array(ps_l, dtype=np.int64)
        fa = np.array(fs_l, dtype=np.int64)
        sid = pa & mask
        order = np.argsort(sid, kind="stable")
        pl = pa[order].tolist()
        fl = fa[order].tolist()
        sid_s = sid[order]
        bounds = (np.flatnonzero(sid_s[1:] != sid_s[:-1]) + 1).tolist()
        bounds.append(len(pl))
        evictions = 0
        start = 0
        for stop in bounds:
            if stop == start:
                continue
            entries = sets_list[pl[start] & mask]
            evictions += apply_batched(entries, pl[start:stop],
                                       fl[start:stop], assoc, evicted)
            start = stop
        return evictions

    def shoot(victim: int) -> int:
        """Masked TLB shootdown for ``victim``; return the removal mask.

        Same per-TLB live ``shootdowns`` counts as the hierarchy's
        shootdown, driven by the flat presence mask.  A victim with a
        deferred fill outstanding forces the flush first; any other
        pending fills stay deferred (they are for distinct pages, so
        the mask is accurate without them).
        """
        if victim in pend_pages:
            flush_pending()
        mm = presence[victim]
        if not mm:
            return 0
        presence[victim] = 0
        full = mm
        if mm & l2bit:
            del l2_sets[victim & l2_mask][victim]
            l2_stats.shootdowns += 1
            mm &= not_l2
        while mm:
            b = mm & -mm
            s2 = b.bit_length() - 1
            del l1_sets[s2][victim & l1_mask][victim]
            l1_stats[s2].shootdowns += 1
            mm ^= b
        return full

    def shoot_degrades(mask: int, victim: int, t: int) -> bool:
        """Did this shootdown invalidate a later pressure-unflag?

        True when the removal hit a set whose guaranteed-insert count
        justified unflagging a position after ``t`` — the only case
        where batch classification can diverge from reality.
        """
        if not mask:
            return False
        if (
            fr2_max
            and mask & l2bit
            and fr2_max.get(victim & l2_mask, -1) > t
        ):
            return True
        if fr1_max:
            mm = mask & (l2bit - 1)
            vset = victim & l1_mask
            while mm:
                b = mm & -mm
                s2 = b.bit_length() - 1
                if fr1_max.get(s2 * l1_nsets + vset, -1) > t:
                    return True
                mm ^= b
        return False

    def lean_fault(page: int) -> tuple[int, Optional[int], int, int]:
        """Service one scalar fault sans TLB fill; return (frame, victim,
        shootdown-removal mask, bytes moved).

        Inlines ``UVMDriver.service_fault`` exactly as v2 does, with the
        flat residency view kept live.
        """
        nonlocal fault_no, d_comp, d_cap, d_evict, d_bin, d_bout
        if pend_l2_p:
            flush_pending()
        fault_no += 1
        if page in ever_touched:
            d_cap += 1
        else:
            ever_touched.add(page)
            d_comp += 1
        policy_on_fault_pending(page)
        victim: Optional[int] = None
        rm_mask = 0
        if not free_list:
            victim = policy_select_victim()
            ve = pt_entries.get(victim)
            if ve is None or not ve.valid:
                raise KeyError(f"page {victim:#x} has no valid mapping")
            ve.valid = False
            try:
                vframe = fop.pop(victim)
            except KeyError:
                raise KeyError(
                    f"page {victim:#x} is not resident"
                ) from None
            del pof[vframe]
            free_list.append(vframe)
            rm_mask = shoot(victim)
            d_evict += 1
            d_bout += page_size
        frame = free_list.pop()
        fop[page] = frame
        pof[frame] = page
        pt_entries[page] = PageTableEntry(frame=frame, faulted_at=fault_no)
        d_bin += page_size
        policy_on_page_in(page, fault_no)
        moved = page_size if victim is None else page_size + page_size
        return frame, victim, rm_mask, moved

    def distribute_l1_misses(g: int, m: int) -> None:
        """Per-SM L1 miss counts for events ``g .. g+m`` (round-robin)."""
        full, rem = divmod(m, num_sms)
        if full:
            for s in range(num_sms):
                l1_misses_b[s] += full
        for d in range(rem):
            l1_misses_b[(g + d) % num_sms] += 1

    def vector_hit_timing(g: int, m: int) -> None:
        """Advance the clock over ``m`` consecutive walk-hit events.

        The per-SM in-order recurrence ``X[k] = max(X[k-1]+1, ready[k])``
        collapses to a running maximum of ``ready[k]-k`` per block of
        ``total_warps`` events; once a block is a fixed point (each
        block shifts by exactly the hit latency) the rest extrapolates
        in O(1).
        """
        latency = walk_hit_total
        full = m // total_warps if m >= total_warps else 0
        if full:
            wr = np.array(warp_ready, dtype=np.int64)
            warp_mat = ((g + np.arange(total_warps, dtype=np.int64))
                        % total_warps).reshape(warps_per_sm, num_sms)
            karr = np.arange(warps_per_sm, dtype=np.int64).reshape(-1, 1)
            issue0 = np.array(
                [sm_issue[(g + d) % num_sms] for d in range(num_sms)],
                dtype=np.int64,
            )
            x_prev: Any = None
            b = 0
            while b < full:
                ready = wr[warp_mat] if x_prev is None else x_prev + latency
                bmat = ready - karr
                np.maximum(bmat[0], issue0, out=bmat[0])
                x = np.maximum.accumulate(bmat, axis=0)
                x += karr
                issue0 = x[-1] + 1
                b += 1
                if (
                    b < full
                    and x_prev is not None
                    and np.array_equal(x, x_prev + latency)
                ):
                    jump = full - b
                    x = x + jump * latency
                    issue0 = x[-1] + 1
                    b = full
                x_prev = x
            wr[warp_mat] = x_prev + latency
            warp_ready[:] = wr.tolist()
            for d in range(num_sms):
                sm_issue[(g + d) % num_sms] = int(issue0[d])
            g += full * total_warps
            m -= full * total_warps
        for j in range(m):
            gg = g + j
            w = gg % total_warps
            s = gg % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1
            warp_ready[w] = start + latency

    def vector_fault_timing(g: int, services: list[int]) -> None:
        """Advance the clock over consecutive fault events.

        Fault service serializes through the single fault queue:
        ``fq[c] = max(begin[c], fq[c-1]) + svc[c]`` expands to a prefix
        maximum of ``begin[c] - cum_svc[c-1]`` — one
        ``np.maximum.accumulate`` per block.
        """
        nonlocal fq
        m = len(services)
        full, tail = divmod(m, total_warps)
        if full:
            sv_all = np.array(services[:full * total_warps], dtype=np.int64)
            wr = np.array(warp_ready, dtype=np.int64)
            warp_mat = ((g + np.arange(total_warps, dtype=np.int64))
                        % total_warps).reshape(warps_per_sm, num_sms)
            karr = np.arange(warps_per_sm, dtype=np.int64).reshape(-1, 1)
            issue0 = np.array(
                [sm_issue[(g + d) % num_sms] for d in range(num_sms)],
                dtype=np.int64,
            )
            fq_mat: Any = None
            for b in range(full):
                ready = wr[warp_mat] if fq_mat is None else fq_mat
                bmat = ready - karr
                np.maximum(bmat[0], issue0, out=bmat[0])
                x = np.maximum.accumulate(bmat, axis=0)
                x += karr
                issue0 = x[-1] + 1
                begin = x.ravel() + fault_begin_latency
                sv = sv_all[b * total_warps:(b + 1) * total_warps]
                cum = np.cumsum(sv)
                avec = begin - cum + sv
                np.maximum.accumulate(avec, out=avec)
                fqv = np.maximum(avec, fq) + cum
                fq = int(fqv[-1])
                fq_mat = fqv.reshape(warps_per_sm, num_sms)
            wr[warp_mat] = fq_mat
            warp_ready[:] = wr.tolist()
            for d in range(num_sms):
                sm_issue[(g + d) % num_sms] = int(issue0[d])
            g += full * total_warps
        for j in range(tail):
            svc = services[full * total_warps + j]
            gg = g + j
            w = gg % total_warps
            s = gg % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1
            begin_t = start + fault_begin_latency
            if fq > begin_t:
                begin_t = fq
            fq = begin_t + svc
            warp_ready[w] = fq

    def run_hits(g: int, pages_run: list[int]) -> None:
        """Replay a run of classified walk-hit events starting at ``g``."""
        nonlocal l2_misses_b, walks_b, whits_b
        m = len(pages_run)
        if dbg is not None:
            dbg["hit_runs"] = dbg.get("hit_runs", 0) + 1
            dbg["hit_run_events"] = dbg.get("hit_run_events", 0) + m
        frames: list[int] = []
        ap = frames.append
        if hit_dispatch == 1:
            on_walk_hits(pages_run)
            for p in pages_run:
                e = pt_entries[p]
                e.walk_hits += 1
                ap(e.frame)
        elif hit_dispatch == 0:
            for p in pages_run:
                e = pt_entries[p]
                e.walk_hits += 1
                ap(e.frame)
        else:
            for p in pages_run:
                e = pt_entries[p]
                e.walk_hits += 1
                for listener in listeners:
                    listener(p)
                ap(e.frame)
        l2_misses_b += m
        walks_b += m
        whits_b += m
        distribute_l1_misses(g, m)
        pend_l2_p.extend(pages_run)
        pend_l2_f.extend(frames)
        pend_pages.update(pages_run)
        for s in range(num_sms):
            idx0 = (s - g) % num_sms
            if idx0 < m:
                pend_l1_p[s].extend(pages_run[idx0::num_sms])
                pend_l1_f[s].extend(frames[idx0::num_sms])
        vector_hit_timing(g, m)

    def fault_run(
        g: int,
        pages_run: list[int],
        on_evict: Callable[[int, int], None],
    ) -> None:
        """A run of faults, serviced in capacity-bounded batched chunks.

        Per chunk: all victims are selected up front through the
        policy's batch API (R1/R2), evicted with presence-masked
        shootdowns, then every page faults in *in order* — so the fault
        sequence numbers, HIR/interval boundaries, first-touch
        classification, and per-fault PCIe byte charges all match the
        reference relative to the fault stream.  ``on_evict`` receives
        each (victim, removal-mask) so the caller can flip the victim's
        future segment position and audit its pressure proofs.
        """
        nonlocal fault_no, d_comp, d_cap, d_evict, d_bin, d_bout
        nonlocal l2_misses_b, walks_b, wfaults_b
        total = len(pages_run)
        if dbg is not None:
            dbg["fault_run_events"] = \
                dbg.get("fault_run_events", 0) + total
        l2_misses_b += total
        walks_b += total
        wfaults_b += total
        distribute_l1_misses(g, total)
        base1 = transfer_memo.get(page_size)
        if base1 is None:
            base1 = fault_cycles + transfer_cycles(page_size)
            transfer_memo[page_size] = base1
        base2 = transfer_memo.get(2 * page_size)
        if base2 is None:
            base2 = fault_cycles + transfer_cycles(2 * page_size)
            transfer_memo[2 * page_size] = base2
        done = 0
        while done < total:
            if dbg is not None:
                dbg["fault_chunks"] = dbg.get("fault_chunks", 0) + 1
            # A chunk never exceeds capacity, so its victims are all
            # resident at chunk start and the batch drain cannot starve.
            avail = len(free_list) + len(fop)
            m = total - done
            if m > avail:
                m = avail
            # Stock LRU's victim sequence is chunk-size-invariant (every
            # victim predates every chunk page-in), so only adaptive
            # policies need the drift-bounding small chunks.
            if lru_chain is None and m > FAULT_CHUNK:
                m = FAULT_CHUNK
            if dbg is not None and m > dbg.get("max_fault_chunk", 0):
                dbg["max_fault_chunk"] = m
            chunk = pages_run[done:done + m]
            need = m - len(free_list)
            if need > 0:
                victims = select_victims_batch(need)
                if dbg is not None:
                    dbg["batched_evictions"] = \
                        dbg.get("batched_evictions", 0) + need
                for v in victims:
                    ve = pt_entries.get(v)
                    if ve is None or not ve.valid:
                        raise KeyError(
                            f"page {v:#x} has no valid mapping"
                        )
                    ve.valid = False
                    try:
                        vframe = fop.pop(v)
                    except KeyError:
                        raise KeyError(
                            f"page {v:#x} is not resident"
                        ) from None
                    del pof[vframe]
                    free_list.append(vframe)
                    on_evict(v, shoot(v))
                d_evict += need
                d_bout += need * page_size
            else:
                need = 0
            free_n = m - need
            # Free frames pop from the tail; slice + reverse mirrors the
            # per-fault pop order (frame identity is metric-invisible).
            frames = free_list[-m:][::-1]
            del free_list[-m:]
            fno = fault_no
            if consume_bytes is None:
                # Constant per-fault service cycles: build the vector
                # once instead of appending inside the install loop.
                services = [base1] * free_n + [base2] * need
                if lru_chain is not None and not has_pending_cb:
                    # Stock LRU: the chain update is one dict store.
                    for p, f in zip(chunk, frames):
                        fno += 1
                        if p in ever_touched:
                            d_cap += 1
                        else:
                            ever_touched.add(p)
                            d_comp += 1
                        fop[p] = f
                        pof[f] = p
                        pt_entries[p] = PageTableEntry(
                            frame=f, faulted_at=fno)
                        lru_chain[p] = None
                else:
                    for p, f in zip(chunk, frames):
                        fno += 1
                        if p in ever_touched:
                            d_cap += 1
                        else:
                            ever_touched.add(p)
                            d_comp += 1
                        if has_pending_cb:
                            policy_on_fault_pending(p)
                        fop[p] = f
                        pof[f] = p
                        pt_entries[p] = PageTableEntry(
                            frame=f, faulted_at=fno)
                        if lru_chain is not None:
                            lru_chain[p] = None
                        else:
                            policy_on_page_in(p, fno)
            else:
                services = []
                sap = services.append
                for j, p in enumerate(chunk):
                    fno += 1
                    if p in ever_touched:
                        d_cap += 1
                    else:
                        ever_touched.add(p)
                        d_comp += 1
                    if has_pending_cb:
                        policy_on_fault_pending(p)
                    f = frames[j]
                    fop[p] = f
                    pof[f] = p
                    pt_entries[p] = PageTableEntry(frame=f, faulted_at=fno)
                    if lru_chain is not None:
                        lru_chain[p] = None
                    else:
                        policy_on_page_in(p, fno)
                    svc = base1 if j < free_n else base2
                    extra = consume_bytes()
                    if extra:
                        svc += transfer_cycles(extra)
                    sap(svc)
            fault_no = fno
            d_bin += m * page_size
            pend_l2_p.extend(chunk)
            pend_l2_f.extend(frames)
            pend_pages.update(chunk)
            gc = g + done
            for s in range(num_sms):
                idx0 = (s - gc) % num_sms
                if idx0 < m:
                    pend_l1_p[s].extend(chunk[idx0::num_sms])
                    pend_l1_f[s].extend(frames[idx0::num_sms])
            vector_fault_timing(gc, services)
            done += m

    def scalar_generic(i0: int, count: int) -> None:
        """Exact v1 loop body over ``trace[i0:i0+count]``.

        Always sound: probes the live TLB dictionaries (after flushing
        deferred fills) and fills them eagerly.  Used for short or
        duplicate-heavy stretches and for degraded segment remainders.
        """
        nonlocal l2_hits_b, l2_misses_b, l2_ev_b
        nonlocal walks_b, whits_b, wfaults_b, fq
        if dbg is not None:
            dbg["scalar_events"] = dbg.get("scalar_events", 0) + count
        flush_pending()
        g = i0
        for page in pages_arr[i0:i0 + count].tolist():
            w = g % total_warps
            s = g % num_sms
            g += 1
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1

            entries = l1_sets[s][page & l1_mask]
            if page in entries:
                entries.move_to_end(page)
                l1_hits_b[s] += 1
                warp_ready[w] = start + l1_hit_total
                continue
            l1_misses_b[s] += 1

            l2_entries = l2_sets[page & l2_mask]
            if page in l2_entries:
                l2_entries.move_to_end(page)
                l2_hits_b += 1
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    presence[old] &= sm_nbits[s]
                entries[page] = 0
                presence[page] |= sm_bits[s]
                warp_ready[w] = start + l2_hit_total
                continue
            l2_misses_b += 1

            walks_b += 1
            pte = pt_entries.get(page)
            if pte is not None and pte.valid:
                whits_b += 1
                pte.walk_hits += 1
                for listener in listeners:
                    listener(page)
                frame = pte.frame
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    presence[old] &= sm_nbits[s]
                entries[page] = frame
                if len(l2_entries) >= l2_assoc:
                    old, _ = l2_entries.popitem(last=False)
                    l2_ev_b += 1
                    presence[old] &= not_l2
                l2_entries[page] = frame
                presence[page] |= sm_bits[s] | l2bit
                warp_ready[w] = start + walk_hit_total
                continue

            wfaults_b += 1
            frame, _victim, _rm, moved = lean_fault(page)
            service = transfer_memo.get(moved)
            if service is None:
                service = fault_cycles + transfer_cycles(moved)
                transfer_memo[moved] = service
            if len(entries) >= l1_assoc:
                old, _ = entries.popitem(last=False)
                l1_ev_b[s] += 1
                presence[old] &= sm_nbits[s]
            entries[page] = frame
            if len(l2_entries) >= l2_assoc:
                old, _ = l2_entries.popitem(last=False)
                l2_ev_b += 1
                presence[old] &= not_l2
            l2_entries[page] = frame
            # A faulting page was non-resident, hence in no TLB.
            presence[page] = sm_bits[s] | l2bit
            if consume_bytes is not None:
                extra = consume_bytes()
                if extra:
                    service += transfer_cycles(extra)
            begin = start + fault_begin_latency
            if fq > begin:
                begin = fq
            fq = begin + service
            warp_ready[w] = fq

    def find_segment(i0: int) -> int:
        """Length of the longest distinct-page prefix at ``i0`` (capped)."""
        end = i0 + SEGMENT_CAP
        if end > n:
            end = n
        rep = np.flatnonzero(prev_arr[i0 + 1:end] >= i0)
        if rep.size:
            return int(rep[0]) + 1
        return end - i0

    def process_segment(g0: int, seg_len: int, depth: int = 0) -> None:
        """Replay one distinct-page segment with batch classification.

        Classification is v2's exact scheme — residency + own-presence
        candidates, pressure-refinement proofs, flagged events live-
        probed, evictions flipped into the fault class — computed here
        with vector gathers over the flat presence/residency arrays.
        ``depth`` bounds degrade-and-reclassify recursion exactly as in
        v2.
        """
        if dbg is not None:
            dbg["segments"] = dbg.get("segments", 0) + 1
        nonlocal l2_hits_b, l2_misses_b, l2_ev_b
        nonlocal walks_b, whits_b, wfaults_b, fq
        seg = pages_arr[g0:g0 + seg_len]
        seg_list = seg.tolist()
        flush_pending()

        # --- vectorized residency + candidate classification ----------
        # Only *own* presence — the issuing SM's L1 or the L2 — makes a
        # position a candidate: a page parked solely in another SM's
        # private L1 still misses both probed levels, so its event is a
        # guaranteed hit-class insert.
        pm = np.fromiter((presence[p] for p in seg_list),
                         dtype=np.int64, count=seg_len)
        res_np = np.fromiter((p in fop for p in seg_list),
                             dtype=bool, count=seg_len)
        sm_idx = (g0 + np.arange(seg_len, dtype=np.int64)) % num_sms
        own_np = (pm >> sm_idx) & 1 == 1
        l2p_np = (pm & l2bit) != 0
        cand_np: Any = own_np | l2p_np

        # --- pressure refinement: a candidate whose L1 set *and* L2 set
        # each receive >= associativity guaranteed inserts (non-candidate
        # events) before its position is provably evicted by then — as
        # long as no shootdown removes entries from those sets first
        # (tracked via fr1_max/fr2_max).
        fr1_max.clear()
        fr2_max.clear()
        flag_np = cand_np.copy()
        if bool(cand_np.any()):
            noncand = ~cand_np
            press1: Any = None
            key1: Any = None
            if num_sms * l1_nsets <= MAX_REFINE_KEYS:
                if l1_nsets == 1:
                    key1 = sm_idx
                else:
                    key1 = sm_idx * l1_nsets + (seg & l1_mask)
                press1 = np.zeros(seg_len, dtype=bool)
                # Order-free: each key selects a disjoint mask and the
                # per-key writes never overlap.
                for k in np.unique(key1[cand_np]).tolist():
                    mk = key1 == k
                    counts = np.cumsum(noncand & mk)
                    press1[mk] = counts[mk] >= l1_assoc
            press2: Any = None
            if l2_nsets <= MAX_REFINE_KEYS:
                key2 = seg & l2_mask
                press2 = np.zeros(seg_len, dtype=bool)
                # Order-free: disjoint masks, as above.
                for k in np.unique(key2[cand_np]).tolist():
                    mk = key2 == k
                    counts = np.cumsum(noncand & mk)
                    press2[mk] = counts[mk] >= l2_assoc
            # A candidate unflags only when every level it occupies is
            # provably flushed by pressure before its event (residency
            # plays no part: an unflagged non-resident candidate is a
            # guaranteed fault, exactly as in v2).
            ok_np = cand_np.copy()
            if press1 is not None:
                ok_np &= ~own_np | press1
            else:
                ok_np &= ~own_np
            if press2 is not None:
                ok_np &= ~l2p_np | press2
            else:
                ok_np &= ~l2p_np
            flag_np = cand_np & ~ok_np
            # Registries of the rightmost pressure-unflagged position
            # per set — consulted by shoot_degrades.
            for i in np.flatnonzero(ok_np).tolist():
                if bool(own_np[i]):
                    k = int(key1[i]) if key1 is not None else 0
                    if fr1_max.get(k, -1) < i:
                        fr1_max[k] = i
                if bool(l2p_np[i]):
                    k = seg_list[i] & l2_mask
                    if fr2_max.get(k, -1) < i:
                        fr2_max[k] = i

        fault_ba = bytearray(np.asarray(~res_np).tobytes())
        flag_ba = bytearray(np.asarray(flag_np).tobytes())
        specials = np.flatnonzero(~res_np | flag_np).tolist()
        nsp = len(specials)
        sp = 0
        flips: list[int] = []
        flip_set: set[int] = set()
        pos_map: dict[int, int] = {p: i for i, p in enumerate(seg_list)}
        pos_get = pos_map.get
        degrade_flag = False

        def note_eviction(victim: int, t: int) -> None:
            """Flip the victim's future position into the fault class."""
            vt = pos_get(victim)
            if vt is not None and vt > t and vt not in flip_set:
                flip_set.add(vt)
                fault_ba[vt] = 1
                if flag_ba[vt]:
                    # Evicted + shot down before its event → guaranteed
                    # fault; drop the flag so the fault path handles it.
                    flag_ba[vt] = 0
                heapq.heappush(flips, vt)

        def shoot_invalidates(rm_mask: int, victim: int, t: int) -> bool:
            """Did this shootdown invalidate a later pressure-unflag?

            A pressure proof counts this segment's guaranteed
            (non-candidate) inserts, so it only breaks when one of THOSE
            entries is removed: the victim must have had its own event
            before ``t`` (the sole way a page enters a TLB mid-segment),
            and that event must have been a counted one.  A victim whose
            entry predates the segment, or whose event was a candidate,
            leaves every counted insert in place.
            """
            if not rm_mask or (not fr1_max and not fr2_max):
                return False
            vt = pos_get(victim)
            if vt is None or vt >= t:
                return False
            if bool(cand_np[vt]):
                return False
            return shoot_degrades(rm_mask, victim, t)

        def flagged_event(t: int) -> bool:
            """One flagged event via the live-probe body; True → degrade."""
            nonlocal l2_hits_b, l2_misses_b, l2_ev_b
            nonlocal walks_b, whits_b, wfaults_b, fq
            if dbg is not None:
                dbg["flagged_events"] = dbg.get("flagged_events", 0) + 1
            flush_pending()
            g = g0 + t
            page = seg_list[t]
            w = g % total_warps
            s = g % num_sms
            start = sm_issue[s]
            ready_w = warp_ready[w]
            if ready_w > start:
                start = ready_w
            sm_issue[s] = start + 1

            entries = l1_sets[s][page & l1_mask]
            if page in entries:
                entries.move_to_end(page)
                l1_hits_b[s] += 1
                warp_ready[w] = start + l1_hit_total
                return False
            l1_misses_b[s] += 1
            l2_entries = l2_sets[page & l2_mask]
            if page in l2_entries:
                l2_entries.move_to_end(page)
                l2_hits_b += 1
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    presence[old] &= sm_nbits[s]
                entries[page] = 0
                presence[page] |= sm_bits[s]
                warp_ready[w] = start + l2_hit_total
                return False
            l2_misses_b += 1
            walks_b += 1
            pte = pt_entries.get(page)
            if pte is not None and pte.valid:
                whits_b += 1
                pte.walk_hits += 1
                for listener in listeners:
                    listener(page)
                frame = pte.frame
                if len(entries) >= l1_assoc:
                    old, _ = entries.popitem(last=False)
                    l1_ev_b[s] += 1
                    presence[old] &= sm_nbits[s]
                entries[page] = frame
                if len(l2_entries) >= l2_assoc:
                    old, _ = l2_entries.popitem(last=False)
                    l2_ev_b += 1
                    presence[old] &= not_l2
                l2_entries[page] = frame
                presence[page] |= sm_bits[s] | l2bit
                warp_ready[w] = start + walk_hit_total
                return False
            wfaults_b += 1
            frame, victim, rm_mask, moved = lean_fault(page)
            service = transfer_memo.get(moved)
            if service is None:
                service = fault_cycles + transfer_cycles(moved)
                transfer_memo[moved] = service
            if len(entries) >= l1_assoc:
                old, _ = entries.popitem(last=False)
                l1_ev_b[s] += 1
                presence[old] &= sm_nbits[s]
            entries[page] = frame
            if len(l2_entries) >= l2_assoc:
                old, _ = l2_entries.popitem(last=False)
                l2_ev_b += 1
                presence[old] &= not_l2
            l2_entries[page] = frame
            presence[page] = sm_bits[s] | l2bit
            if consume_bytes is not None:
                extra = consume_bytes()
                if extra:
                    service += transfer_cycles(extra)
            begin = start + fault_begin_latency
            if fq > begin:
                begin = fq
            fq = begin + service
            warp_ready[w] = fq
            if victim is not None:
                note_eviction(victim, t)
                return shoot_invalidates(rm_mask, victim, t)
            return False

        t = 0
        while t < seg_len:
            while sp < nsp and specials[sp] < t:
                sp += 1
            while flips and flips[0] < t:
                heapq.heappop(flips)
            nxt = specials[sp] if sp < nsp else seg_len
            if flips and flips[0] < nxt:
                nxt = flips[0]
            if t < nxt:
                run_hits(g0 + t, seg_list[t:nxt])
                t = nxt
                continue
            if flips and flips[0] == t:
                heapq.heappop(flips)
            if sp < nsp and specials[sp] == t:
                sp += 1
            if flag_ba[t]:
                if flagged_event(t):
                    # A shootdown invalidated a later pressure-unflag:
                    # reclassify the remainder (still distinct pages)
                    # against the post-shootdown state.
                    t += 1
                    rem = seg_len - t
                    if rem >= MIN_SEGMENT and depth < 32:
                        process_segment(g0 + t, rem, depth + 1)
                    elif rem > 0:
                        scalar_generic(g0 + t, rem)
                    return
                t += 1
                continue
            # Fault position: extend over every consecutive fault-class
            # event (original non-residents plus flipped victims) and
            # service the whole run batched.
            run_start = t
            e = t + 1
            while e < seg_len and fault_ba[e] and not flag_ba[e]:
                e += 1

            def on_evict(victim: int, rm_mask: int) -> None:
                nonlocal degrade_flag
                vt = pos_get(victim)
                if vt is not None:
                    if vt > run_start and vt not in flip_set:
                        flip_set.add(vt)
                        fault_ba[vt] = 1
                        if flag_ba[vt]:
                            flag_ba[vt] = 0
                        heapq.heappush(flips, vt)
                    elif (
                        rm_mask
                        and vt < run_start
                        and (fr1_max or fr2_max)
                        and not cand_np[vt]
                        and shoot_degrades(rm_mask, victim, run_start)
                    ):
                        degrade_flag = True

            fault_run(g0 + run_start, seg_list[run_start:e], on_evict)
            t = e
            if degrade_flag:
                rem = seg_len - t
                if rem >= MIN_SEGMENT and depth < 32:
                    process_segment(g0 + t, rem, depth + 1)
                elif rem > 0:
                    scalar_generic(g0 + t, rem)
                return

    # --- main loop -----------------------------------------------------
    i = 0
    while i < n:
        remaining = n - i
        if remaining < MIN_SEGMENT:
            scalar_generic(i, remaining)
            break
        seg_len = find_segment(i)
        if seg_len < MIN_SEGMENT:
            chunk = SCALAR_CHUNK if SCALAR_CHUNK < remaining else remaining
            scalar_generic(i, chunk)
            i += chunk
        else:
            process_segment(i, seg_len)
            i += seg_len

    # --- fold batched counters back into the shared structures ---------
    flush_pending()
    for s, tlb in enumerate(hierarchy.l1_tlbs):
        tlb.add_batched_stats(l1_hits_b[s], l1_misses_b[s], l1_ev_b[s])
    hierarchy.l2_tlb.add_batched_stats(l2_hits_b, l2_misses_b, l2_ev_b)
    walker.add_batched_counts(walks_b, whits_b, wfaults_b)
    stats.faults = fault_no
    stats.compulsory_faults += d_comp
    stats.capacity_faults += d_cap
    stats.evictions += d_evict
    stats.bytes_migrated_in += d_bin
    stats.bytes_evicted_out += d_bout
    # The inlined fault paths mutate the frame dicts directly, so the
    # pool's flat residency view is resynchronized once per replay.
    frame_pool.residency = Bitmap()
    frame_pool.residency.update(list(fop))
    return max(max(warp_ready, default=0), max(sm_issue, default=0))
