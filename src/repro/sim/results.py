"""Simulation result container and derived metrics."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.uvm.driver import DriverStats


@dataclass
class SimulationResult:
    """Everything one (workload × policy × capacity) run produced."""

    policy_name: str
    workload_name: str
    capacity_pages: int
    footprint_pages: int
    trace_length: int
    cycles: int
    instructions: int
    driver: DriverStats
    l1_tlb_hits: int = 0
    l2_tlb_hits: int = 0
    walker_hits: int = 0
    #: Optional policy-specific extras (HPE stats, RRIP sweeps, …).
    extras: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the whole run."""
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def faults(self) -> int:
        """Total page faults serviced."""
        return self.driver.faults

    @property
    def evictions(self) -> int:
        """Total pages evicted."""
        return self.driver.evictions

    @property
    def oversubscription_rate(self) -> float:
        """Fraction of the footprint that fits in GPU memory."""
        if not self.footprint_pages:
            return 1.0
        return self.capacity_pages / self.footprint_pages

    def key_metrics(self) -> dict:
        """Flat, comparable summary of everything the simulation measured.

        Two runs of the same (workload × policy × capacity) combination
        are equivalent iff their ``key_metrics()`` are equal — the tests
        use this to check serial vs. parallel and fast vs. reference
        replays for bit-identical behaviour.
        """
        return {
            "policy": self.policy_name,
            "workload": self.workload_name,
            "capacity_pages": self.capacity_pages,
            "footprint_pages": self.footprint_pages,
            "trace_length": self.trace_length,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "driver": asdict(self.driver),
            "l1_tlb_hits": self.l1_tlb_hits,
            "l2_tlb_hits": self.l2_tlb_hits,
            "walker_hits": self.walker_hits,
        }

    def metrics_digest(self) -> str:
        """SHA-256 of the canonical JSON form of :meth:`key_metrics`.

        A compact equality token: two runs are bit-identical (in every
        measured metric) iff their digests match.  The resume-equivalence
        tests compare interrupted-then-resumed matrices to uninterrupted
        ones digest-by-digest.
        """
        canonical = json.dumps(
            self.key_metrics(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC speedup of this run relative to ``baseline``.

        A zero-IPC baseline (empty or instantly-failing run) has no
        meaningful ratio: the result is ``nan``, which downstream means
        (``geometric_mean`` / ``arithmetic_mean``) skip with a warning
        rather than silently averaging a fabricated 0.0.
        """
        if not baseline.ipc:
            return float("nan")
        return self.ipc / baseline.ipc

    def evictions_normalized_to(self, baseline: "SimulationResult") -> float:
        """Eviction count of this run relative to ``baseline``.

        Both runs eviction-free compares equal (1.0); only the baseline
        eviction-free leaves the ratio undefined — ``nan``, not ``inf``,
        so figure harnesses can skip the point instead of blowing up
        axis scaling.
        """
        if not baseline.evictions:
            return 1.0 if not self.evictions else float("nan")
        return self.evictions / baseline.evictions
