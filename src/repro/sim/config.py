"""Simulated system configuration (Table I of the paper).

The defaults model the NVIDIA GTX-480 Fermi-like GPU the paper simulates:
15 SMs at 1.4 GHz, per-SM 128-entry L1 TLBs (1 cycle), a shared 512-entry
16-way L2 TLB (10 cycles), an 8-cycle page walk, and a 16 GB/s CPU–GPU
interconnect with a 20 µs page-fault service time.

Two knobs are timing-model parameters with no Table I row:

* ``warps_per_sm`` — how many in-flight warps per SM hide latency under
  the replayable far-fault mechanism (Fermi supports 48 resident warps);
* ``memory_latency_cycles`` — DRAM round-trip charged to non-faulting
  accesses (hidden when other warps are runnable).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.tlb.tlb import TLBConfig
from repro.uvm.pcie import PCIeLink

#: Environment variable selecting the simulator inner-loop tier.
FASTPATH_ENV = "REPRO_SIM_FASTPATH"

#: Default tier: the vectorized batch kernel (with automatic fallback to
#: the flattened v1 loop when a run is not batch-eligible).
DEFAULT_FASTPATH_LEVEL = 2


#: Highest selectable tier.  Tiers 0–2 are bit-identical; tier 3 is the
#: *metric-equivalent* relaxed kernel (DESIGN §13) and must be opted
#: into explicitly — it is never the default.
MAX_FASTPATH_LEVEL = 3


def resolve_fastpath_level(fast: Optional[Union[bool, int]] = None) -> int:
    """Resolve the requested fastpath tier to an integer level.

    Levels: ``0`` — reference loop; ``1`` — flattened v1 loop; ``2`` —
    vectorized batch kernel (v2) with per-run eligibility fallback to
    v1; ``3`` — the relaxed *metric-equivalent* kernel (v3, tolerance-
    gated rather than bit-identical — DESIGN §13) with per-run
    eligibility fallback to v2 then v1.  ``fast`` may be ``None``
    (consult :data:`FASTPATH_ENV`, default
    :data:`DEFAULT_FASTPATH_LEVEL`), a bool (the historical ``fast=``
    argument: ``True`` → default tier, ``False`` → reference), or an
    explicit level.  Out-of-range values clamp into ``[0, 3]``.

    The env var alone clamps to ``[0, 2]``: tier 3 changes simulated
    metrics, so it must arrive as an *explicit* argument (a spec's
    ``fastpath`` field, a CLI tier flag, or ``fast=3``) that the result
    cache and run identities can see — an ambient env var must never
    silently relax cached results.
    """
    if fast is None:
        # Tier selection only: tiers 0-2 are bit-identical (diff-gated),
        # so the env read steers speed, never cached results.
        raw = os.environ.get(FASTPATH_ENV, "")  # noqa: REP012
        if not raw.strip():
            return DEFAULT_FASTPATH_LEVEL
        try:
            level = int(raw)
        except ValueError:
            return DEFAULT_FASTPATH_LEVEL
        return max(0, min(2, level))  # env caps at the bit-identical tiers
    if isinstance(fast, bool):
        level = DEFAULT_FASTPATH_LEVEL if fast else 0
    else:
        level = int(fast)
    return max(0, min(MAX_FASTPATH_LEVEL, level))


@dataclass(frozen=True)
class GPUConfig:
    """Top-level simulator configuration."""

    num_sms: int = 15
    clock_ghz: float = 1.4
    warps_per_sm: int = 48
    memory_latency_cycles: int = 300
    #: Instructions represented by one trace event (a page-touch episode).
    instructions_per_access: int = 64
    walk_latency_cycles: int = 8
    l1_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            entries=128, associativity=128, latency_cycles=1, name="l1_tlb"
        )
    )
    l2_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            entries=512, associativity=16, latency_cycles=10, name="l2_tlb"
        )
    )
    pcie: PCIeLink = field(default_factory=PCIeLink)

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.warps_per_sm <= 0:
            raise ValueError("warps_per_sm must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.instructions_per_access <= 0:
            raise ValueError("instructions_per_access must be positive")
        if self.memory_latency_cycles < 0:
            raise ValueError("memory_latency_cycles must be non-negative")
        if self.walk_latency_cycles < 0:
            raise ValueError("walk_latency_cycles must be non-negative")

    def with_walk_latency(self, cycles: int) -> "GPUConfig":
        """Copy of this config with a different page-walk latency (§V-B)."""
        return replace(self, walk_latency_cycles=cycles)

    @property
    def total_warps(self) -> int:
        """Machine-wide latency-hiding warp slots."""
        return self.num_sms * self.warps_per_sm
