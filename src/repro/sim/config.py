"""Simulated system configuration (Table I of the paper).

The defaults model the NVIDIA GTX-480 Fermi-like GPU the paper simulates:
15 SMs at 1.4 GHz, per-SM 128-entry L1 TLBs (1 cycle), a shared 512-entry
16-way L2 TLB (10 cycles), an 8-cycle page walk, and a 16 GB/s CPU–GPU
interconnect with a 20 µs page-fault service time.

Two knobs are timing-model parameters with no Table I row:

* ``warps_per_sm`` — how many in-flight warps per SM hide latency under
  the replayable far-fault mechanism (Fermi supports 48 resident warps);
* ``memory_latency_cycles`` — DRAM round-trip charged to non-faulting
  accesses (hidden when other warps are runnable).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.tlb.tlb import TLBConfig
from repro.uvm.pcie import PCIeLink


@dataclass(frozen=True)
class GPUConfig:
    """Top-level simulator configuration."""

    num_sms: int = 15
    clock_ghz: float = 1.4
    warps_per_sm: int = 48
    memory_latency_cycles: int = 300
    #: Instructions represented by one trace event (a page-touch episode).
    instructions_per_access: int = 64
    walk_latency_cycles: int = 8
    l1_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            entries=128, associativity=128, latency_cycles=1, name="l1_tlb"
        )
    )
    l2_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(
            entries=512, associativity=16, latency_cycles=10, name="l2_tlb"
        )
    )
    pcie: PCIeLink = field(default_factory=PCIeLink)

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.warps_per_sm <= 0:
            raise ValueError("warps_per_sm must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.instructions_per_access <= 0:
            raise ValueError("instructions_per_access must be positive")
        if self.memory_latency_cycles < 0:
            raise ValueError("memory_latency_cycles must be non-negative")
        if self.walk_latency_cycles < 0:
            raise ValueError("walk_latency_cycles must be non-negative")

    def with_walk_latency(self, cycles: int) -> "GPUConfig":
        """Copy of this config with a different page-walk latency (§V-B)."""
        return replace(self, walk_latency_cycles=cycles)

    @property
    def total_warps(self) -> int:
        """Machine-wide latency-hiding warp slots."""
        return self.num_sms * self.warps_per_sm
