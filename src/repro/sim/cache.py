"""Persistent, content-addressed caching of simulation artefacts.

Two artefact kinds are cached on disk so that repeated experiment runs —
within one process, across processes of a parallel matrix, and across
sessions — never redo work whose inputs have not changed:

* **Simulation results** — a :class:`~repro.sim.results.SimulationResult`
  is keyed by a SHA-256 fingerprint of everything that determines it:
  application, policy, oversubscription rate, trace seed and scale, the
  full :class:`~repro.sim.config.GPUConfig`, the
  :class:`~repro.core.hpe.HPEConfig` (for HPE runs), and a cache schema
  version.  Values are pickled whole (including the live policy object in
  ``extras`` that the figure harnesses introspect).
* **Built traces** — application traces are memoised through the
  :mod:`repro.workloads.trace_io` interchange format, keyed by
  (application, seed, scale), so a trace is generated once per machine.

Environment variables
---------------------
``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/hpe-repro``).
``REPRO_CACHE``
    Set to ``0`` / ``off`` / ``false`` / ``no`` to disable caching.

Writes are atomic and durable (temp file + fsync + ``os.replace`` via
:mod:`repro.resil.atomic`), so concurrent workers of a parallel matrix
can share one cache directory without locking; the worst case is the
same entry being computed twice and one write winning.  Result entries
are checksum-framed: a torn or corrupted entry fails verification on
read and is treated as a *miss* (recompute heals it), never a crash.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.core.hpe import HPEConfig
from repro.resil import atomic as resil_atomic
from repro.resil import chaos as resil_chaos
from repro.scenarios.spec import ScenarioSpec, stable_config_repr
from repro.sim.config import GPUConfig
from repro.sim.results import SimulationResult
from repro.workloads.base import Trace
from repro.workloads.trace_io import TraceFormatError, load_trace, save_trace

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

#: Bump when the simulator's observable behaviour changes, so stale
#: results from an older code generation can never be returned.
#: v2: HIRStats grew ``empty_transfers`` (old pickles lack the field).
#: v3: fault-around neighbours migrate before the demand page (a
#:     prefetch eviction could previously evict the page being
#:     serviced), changing prefetch-run metrics.
#: v4: the canonical identity string is ScenarioSpec.canonical() — it
#:     gained the ``family`` and ``params`` fields, so every digest
#:     moved; old entries are unreachable, not wrong.
CACHE_SCHEMA_VERSION = 4

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_ENABLED = "REPRO_CACHE"

_FALSEY = {"0", "off", "false", "no", "disabled"}

#: Explicit overrides set by :func:`configure` (CLI ``--no-cache`` etc.);
#: ``None`` means "defer to the environment".
_enabled_override: Optional[bool] = None
_dir_override: Optional[Path] = None


def configure(
    enabled: Optional[bool] = None,
    directory: Optional[os.PathLike] = None,
) -> None:
    """Override cache behaviour for this process (wins over env vars)."""
    global _enabled_override, _dir_override, _RESULTS
    if enabled is not None:
        _enabled_override = enabled
    if directory is not None:
        _dir_override = Path(directory)
    _RESULTS = None  # rebuild lazily against the new settings


def cache_enabled() -> bool:
    """Is persistent caching on (configure() override, then env)?"""
    if _enabled_override is not None:
        return _enabled_override
    raw = os.environ.get(ENV_CACHE_ENABLED, "1").strip().lower()
    return raw not in _FALSEY


def cache_dir() -> Path:
    """Root cache directory (configure() override, then env, then default)."""
    if _dir_override is not None:
        return _dir_override
    raw = os.environ.get(ENV_CACHE_DIR)
    if raw:
        return Path(raw)
    return Path.home() / ".cache" / "hpe-repro"


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    result_hits: int = 0
    result_misses: int = 0
    result_stores: int = 0
    #: Entries whose checksum frame failed verification (torn writes);
    #: every one is also counted as a miss.
    result_corrupt: int = 0
    trace_hits: int = 0
    trace_misses: int = 0

    def observe_into(self, registry: MetricsRegistry) -> None:
        """Expose the tallies as gauges in a ``MetricsRegistry``.

        Gauges, not counters: the backing stats object is process-wide
        and cumulative, so folding it additively per run would
        double-count.
        """
        registry.set_gauge("cache.result_hits", self.result_hits)
        registry.set_gauge("cache.result_misses", self.result_misses)
        registry.set_gauge("cache.result_stores", self.result_stores)
        registry.set_gauge("cache.result_corrupt", self.result_corrupt)
        registry.set_gauge("cache.trace_hits", self.trace_hits)
        registry.set_gauge("cache.trace_misses", self.trace_misses)


#: Backwards-compatible alias — the canonical implementation moved to
#: :func:`repro.scenarios.spec.stable_config_repr` with the spec refactor.
_stable_config_repr = stable_config_repr


def fingerprint(
    app: str,
    policy: str,
    rate: float,
    *,
    seed: int,
    scale: float,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
    prefetch_degree: int = 0,
) -> str:
    """Content address of one simulation run.

    A thin adapter over :meth:`repro.scenarios.spec.ScenarioSpec.digest`
    — the spec's ``canonical()`` string is the single identity authority
    (DESIGN.md §10), so any input that can change the
    :class:`SimulationResult` is folded in and ``hpe_config`` only
    participates for HPE runs (it cannot affect any other policy, and
    normalising it keeps sensitivity sweeps sharing entries for their
    non-HPE baselines).
    """
    return ScenarioSpec(
        workload=app,
        policy=policy,
        rate=rate,
        seed=seed,
        scale=scale,
        config=config,
        hpe_config=hpe_config,
        prefetch_degree=prefetch_degree,
    ).digest()


def trace_fingerprint(abbr: str, seed: int, scale: float) -> str:
    """Content address of one built application trace."""
    canonical = (
        f"trace-schema={CACHE_SCHEMA_VERSION}|app={abbr.upper()}"
        f"|seed={seed}|scale={scale!r}"
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed store of pickled :class:`SimulationResult` objects.

    A small in-memory layer keeps the pickled bytes of recently used
    entries so warm harness reruns in one process skip even the disk
    read; entries are always *unpickled per get* so callers never share
    mutable state.

    On-disk entries are checksum-framed (:mod:`repro.resil.atomic`); a
    frame that fails verification — a torn write from a crashed process,
    or an injected ``REPRO_CHAOS`` tear — is deleted and counted in
    ``stats.result_corrupt``, and the get reports a miss.  Pre-framing
    entries (raw pickles) are still readable.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        memory_entries: int = 256,
    ) -> None:
        self.directory = Path(directory) if directory else cache_dir() / "results"
        self.stats = CacheStats()
        self._memory: dict[str, bytes] = {}
        self._memory_entries = memory_entries

    def _path(self, digest: str) -> Path:
        # Two-level fan-out keeps directory listings manageable.
        return self.directory / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[SimulationResult]:
        """Return a fresh copy of the cached result, or ``None`` on miss."""
        payload = self._memory.get(digest)
        if payload is None:
            try:
                data = self._path(digest).read_bytes()
            except OSError:
                self.stats.result_misses += 1
                return None
            if resil_atomic.is_framed(data):
                try:
                    payload = resil_atomic.unframe_payload(data)
                except resil_atomic.TornPayloadError:
                    # Torn write: delete and report a miss, never a crash.
                    self.stats.result_corrupt += 1
                    self._drop(digest)
                    self.stats.result_misses += 1
                    return None
            else:
                payload = data  # pre-framing entry (raw pickle)
            self._remember(digest, payload)
        try:
            result = pickle.loads(payload)
        except Exception:
            # Corrupt or incompatible entry: drop it and treat as a miss.
            self._drop(digest)
            self.stats.result_misses += 1
            return None
        self.stats.result_hits += 1
        return result

    def put(self, digest: str, result: SimulationResult) -> None:
        """Store ``result`` under ``digest`` (atomic, last writer wins)."""
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        framed = resil_atomic.frame_payload(payload)
        written = resil_chaos.maybe_corrupt(digest, framed)
        resil_atomic.atomic_write_bytes(self._path(digest), written)
        if written is framed:
            # A chaos-torn write models a crashed process, whose memory
            # is gone too — only intact writes enter the memory layer.
            self._remember(digest, payload)
        self.stats.result_stores += 1

    def _drop(self, digest: str) -> None:
        self._memory.pop(digest, None)
        try:
            self._path(digest).unlink()
        except OSError:
            pass

    def _remember(self, digest: str, payload: bytes) -> None:
        self._memory[digest] = payload
        while len(self._memory) > self._memory_entries:
            self._memory.pop(next(iter(self._memory)))

    def clear(self) -> int:
        """Delete every stored result; return the number removed."""
        removed = 0
        self._memory.clear()
        if self.directory.is_dir():
            for entry in self.directory.rglob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entry_count(self) -> int:
        """Number of results currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.rglob("*.pkl"))


#: Lazily constructed process-wide singleton (reset by :func:`configure`).
_RESULTS: Optional[ResultCache] = None


def result_cache() -> ResultCache:
    """The process-wide result cache against the current settings."""
    global _RESULTS
    if _RESULTS is None:
        # Worker-local memo by design: each process opens its own handle
        # onto the on-disk cache; entries round-trip through the disk,
        # never through this pointer.
        _RESULTS = ResultCache()  # noqa: REP011
    return _RESULTS


def lookup_result(digest: str) -> Optional[SimulationResult]:
    """Cache-aware get: ``None`` when disabled or missing."""
    if not cache_enabled():
        return None
    return result_cache().get(digest)


def store_result(digest: str, result: SimulationResult) -> None:
    """Cache-aware put: a no-op when caching is disabled."""
    if not cache_enabled():
        return
    try:
        result_cache().put(digest, result)
    except (OSError, RecursionError, pickle.PicklingError):
        pass  # an unwritable/unpicklable entry must never fail the run


# ----------------------------------------------------------------------
# Trace memoisation through the trace_io interchange format
# ----------------------------------------------------------------------


def trace_path(abbr: str, seed: int, scale: float) -> Path:
    """Where the memoised trace for these build inputs lives."""
    digest = trace_fingerprint(abbr, seed, scale)
    return cache_dir() / "traces" / f"{abbr.upper()}-{digest[:16]}.trace.gz"


def load_or_build_trace(abbr: str, seed: int, scale: float) -> Trace:
    """Return the application trace, reading/writing the disk memo.

    Falls back to a plain build whenever caching is off or the stored
    file is unreadable; the returned trace is identical either way (the
    simulator consumes only pages, name and pattern type, all of which
    round-trip through :mod:`repro.workloads.trace_io`).
    """
    from repro.workloads.suite import get_application

    cache = result_cache()
    if cache_enabled():
        path = trace_path(abbr, seed, scale)
        if path.is_file():
            try:
                trace = load_trace(path)
            except (TraceFormatError, OSError, EOFError):
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                cache.stats.trace_hits += 1
                return trace
    cache.stats.trace_misses += 1
    trace = get_application(abbr).build(seed=seed, scale=scale)
    if cache_enabled():
        try:
            path = trace_path(abbr, seed, scale)
            path.parent.mkdir(parents=True, exist_ok=True)
            # The tmp name must keep the .gz suffix so save_trace compresses.
            tmp = path.parent / f".{path.stem}.{os.getpid()}.tmp.gz"
            save_trace(trace, tmp)
            resil_atomic.replace_into(tmp, path)
        except OSError:
            pass
    return trace


def clear_all() -> int:
    """Remove every cached result and trace; return entries removed."""
    removed = result_cache().clear()
    traces = cache_dir() / "traces"
    if traces.is_dir():
        for entry in traces.glob("*.trace.gz"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def describe() -> dict:
    """Summary of the cache state (CLI ``cache info``)."""
    traces = cache_dir() / "traces"
    trace_files = list(traces.glob("*.trace.gz")) if traces.is_dir() else []
    result_dir = result_cache().directory
    result_files = (
        list(result_dir.rglob("*.pkl")) if result_dir.is_dir() else []
    )
    return {
        "enabled": cache_enabled(),
        "directory": str(cache_dir()),
        "schema_version": CACHE_SCHEMA_VERSION,
        "results": len(result_files),
        "result_bytes": sum(f.stat().st_size for f in result_files),
        "traces": len(trace_files),
        "trace_bytes": sum(f.stat().st_size for f in trace_files),
    }
