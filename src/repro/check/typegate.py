"""Strict typing gate (``repro typecheck``).

Two enforcement layers, so the gate degrades gracefully on machines
without mypy while CI still gets the full strict run:

1. **mypy strict** — when :mod:`mypy` is importable, run its API with
   the ``pyproject.toml`` configuration (strict on ``repro.core`` /
   ``repro.sim`` / ``repro.policies`` / ``repro.check`` /
   ``repro.resil``, permissive elsewhere).
2. **AST annotation-completeness** — always runs.  Every function and
   method in a strict package must annotate its return type and every
   parameter (``self``/``cls`` excepted, ``*args``/``**kwargs``
   included).  This is the invariant that makes the mypy-strict run
   meaningful: strict mode only checks bodies whose signatures are
   annotated.

Pure :mod:`ast` like the lint pass — nothing under ``src`` is imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Packages (relative to ``src/repro``) held to full annotation coverage.
STRICT_PACKAGES: tuple[str, ...] = (
    "core",
    "sim",
    "policies",
    "memory",
    "tlb",
    "uvm",
    "check",
    "resil",
    "scenarios",
    "obs",
    "serve",
)

#: Decorators whose functions are exempt (their signatures are fixed by
#: an external protocol, not by us).
_EXEMPT_DECORATORS = {"overload"}


@dataclass(frozen=True)
class TypeGap:
    """One missing annotation."""

    path: str
    line: int
    function: str
    missing: str  # "return" or the parameter name

    def render(self) -> str:
        what = (
            "return type" if self.missing == "return"
            else f"parameter '{self.missing}'"
        )
        return f"{self.path}:{self.line}: {self.function}() missing {what}"


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _function_gaps(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    path: str,
    qualname: str,
    is_method: bool,
) -> list[TypeGap]:
    if _decorator_names(node) & _EXEMPT_DECORATORS:
        return []
    gaps: list[TypeGap] = []
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    for index, arg in enumerate(positional):
        if is_method and index == 0 and arg.arg in {"self", "cls"}:
            continue
        if arg.annotation is None:
            gaps.append(TypeGap(path, arg.lineno, qualname, arg.arg))
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            gaps.append(TypeGap(path, arg.lineno, qualname, arg.arg))
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            gaps.append(TypeGap(path, star.lineno, qualname, star.arg))
    if node.returns is None:
        gaps.append(TypeGap(path, node.lineno, qualname, "return"))
    return gaps


def _walk_scope(
    body: Iterable[ast.stmt],
    path: str,
    prefix: str,
    in_class: bool,
    gaps: list[TypeGap],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{stmt.name}"
            gaps.extend(_function_gaps(stmt, path, qualname, in_class))
            # Nested defs (closures/factories): annotate those too.
            _walk_scope(stmt.body, path, f"{qualname}.", False, gaps)
        elif isinstance(stmt, ast.ClassDef):
            _walk_scope(
                stmt.body, path, f"{prefix}{stmt.name}.", True, gaps
            )


def annotation_gaps(path: Path) -> list[TypeGap]:
    """All missing annotations in one file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    gaps: list[TypeGap] = []
    _walk_scope(tree.body, str(path), "", False, gaps)
    return gaps


def default_package_root() -> Path:
    """``src/repro`` as installed — the directory containing this package."""
    return Path(__file__).resolve().parents[1]


def strict_files(package_root: Optional[Path] = None) -> list[Path]:
    """Every ``.py`` file held to full annotation coverage."""
    root = package_root or default_package_root()
    files: list[Path] = []
    for package in STRICT_PACKAGES:
        directory = root / package
        if directory.is_dir():
            files.extend(sorted(directory.rglob("*.py")))
    return files


def run_annotation_gate(
    package_root: Optional[Path] = None,
) -> list[TypeGap]:
    """AST annotation-completeness over all strict packages."""
    gaps: list[TypeGap] = []
    for file in strict_files(package_root):
        gaps.extend(annotation_gaps(file))
    return gaps


def mypy_available() -> bool:
    """Is mypy importable in this interpreter?"""
    try:
        import mypy.api  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(package_root: Optional[Path] = None) -> tuple[int, str]:
    """Run mypy's API over the strict packages; ``(exit_code, report)``.

    Configuration comes from ``pyproject.toml`` at the repo root (mypy
    discovers it from the analysed paths).  Returns ``(0, ...)`` when
    clean; callers must gate on :func:`mypy_available` first.
    """
    from mypy import api

    root = package_root or default_package_root()
    targets = [str(root / package) for package in STRICT_PACKAGES]
    stdout, stderr, exit_code = api.run(targets)
    return exit_code, (stdout + stderr).strip()


def run_typegate(
    package_root: Optional[Path] = None, *, verbose: bool = True
) -> int:
    """Full gate: annotation completeness always, mypy when available."""
    gaps = run_annotation_gate(package_root)
    for gap in gaps:
        if verbose:
            print(gap.render())
    failed = bool(gaps)
    if verbose and gaps:
        print(f"{len(gaps)} missing annotation(s)")
    if mypy_available():
        exit_code, report = run_mypy(package_root)
        if verbose and report:
            print(report)
        failed = failed or exit_code != 0
    elif verbose:
        print("mypy not installed — AST annotation gate only")
    if verbose and not failed:
        print("repro typecheck: clean")
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.check.typegate``."""
    return run_typegate()


if __name__ == "__main__":
    raise SystemExit(main())
