"""Call-graph construction and transitive closures over a :class:`Program`.

Resolution order for a call site, most precise first:

1. **Direct names** — imported symbols, module-level functions, class
   constructors (edges to ``__init__`` / dataclass ``__post_init__``).
2. **Module attributes** — ``fastpath2.replay(...)`` through an import.
3. **Typed receivers** — ``self``, annotated parameters, and simple
   assignment propagation (:func:`~repro.check.flow.model.infer_receiver_types`),
   with class-hierarchy fan-out: a call through an ``EvictionPolicy``
   receiver targets every subclass override, because the concrete
   policy is chosen at runtime.
4. **Duck fallback** — an unresolved ``x.frob()`` targets every program
   method named ``frob`` when few classes define it; wildly common
   names (container/str/numpy vocabulary) are skipped instead of
   fanning out to nonsense.

Property *reads* (``config.total_warps``) add edges too — the property
body runs on the fault path just like a call.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.check.flow.model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Program,
    infer_receiver_types,
    match_any,
)

#: A duck-typed method name fans out only when at most this many
#: program classes define it; beyond that it is counted as unresolved.
DUCK_FANOUT_LIMIT = 10

#: Attribute names never duck-resolved: container/str/numpy vocabulary
#: whose matches would be coincidental.
DUCK_SKIP = frozenset({
    "get", "items", "keys", "values", "append", "add", "pop", "update",
    "copy", "clear", "sort", "split", "join", "strip", "lower", "upper",
    "encode", "decode", "format", "read", "write", "close", "extend",
    "popitem", "setdefault", "move_to_end", "remove", "discard",
    "startswith", "endswith", "index", "count", "insert", "tolist",
    "astype", "sum", "min", "max", "mean", "any", "all", "nonzero",
    "cumsum", "searchsorted", "argsort", "reshape", "view", "fill",
    "item", "flatten", "ravel", "resolve", "exists", "mkdir", "open",
    "replace", "rstrip", "lstrip", "splitlines", "partition", "group",
    "match", "search", "hexdigest", "digest", "seek", "tell", "flush",
})


@dataclass
class CallGraph:
    """Edges between function qualnames, plus resolution diagnostics."""

    edges: dict[str, set[str]] = field(default_factory=dict)
    #: Attribute names that could not be resolved anywhere, with counts.
    unresolved: Counter = field(default_factory=Counter)

    def add(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)

    def closure(self, entries: Iterable[str]) -> set[str]:
        """Transitive closure of ``entries`` over the edges."""
        seen: set[str] = set()
        stack = [entry for entry in entries]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen


def _class_ctor_targets(program: Program, info: ClassInfo) -> list[str]:
    """Functions run when a class is instantiated."""
    targets: list[str] = []
    for ancestor in program.ancestors(info.qualname):
        if "__init__" in ancestor.methods:
            targets.append(ancestor.methods["__init__"].qualname)
            break
    for name in ("__post_init__",):
        for ancestor in program.ancestors(info.qualname):
            if name in ancestor.methods:
                targets.append(ancestor.methods[name].qualname)
                break
    return targets


def _immediate_body(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # nested defs are separate program functions
        for child in ast.iter_child_nodes(current):
            stack.append(child)


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class _FunctionResolver:
    """Resolves the call/read sites of one function into edges."""

    def __init__(
        self, program: Program, graph: CallGraph, func: FunctionInfo
    ) -> None:
        self.program = program
        self.graph = graph
        self.func = func
        self.module: ModuleInfo = program.modules[func.module]
        self.types = infer_receiver_types(program, func)

    def resolve(self) -> None:
        src = self.func.qualname
        # Nested defs run (or escape) from their parent — keep the edge.
        for stmt in self.func.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.graph.add(src, f"{src}.{stmt.name}")
        for node in _immediate_body(self.func.node):
            if isinstance(node, ast.Call):
                self._resolve_call(node)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._resolve_property_read(node)

    # -- call sites -------------------------------------------------------

    def _resolve_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._edge_to_symbol(func.id)
            return
        if not isinstance(func, ast.Attribute):
            return
        # super().method()
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.func.owner is not None
        ):
            owner = self.program.classes.get(self.func.owner)
            if owner is not None:
                for base in owner.bases:
                    for target in self.program.lookup_method(
                        base, func.attr, virtual=False
                    ):
                        self.graph.add(self.func.qualname, target.qualname)
            return
        receiver = _dotted(func.value)
        if receiver is not None and self._edge_via_receiver(
            receiver, func.attr
        ):
            return
        self._duck_edges(func.attr)

    def _edge_to_symbol(self, name: str) -> None:
        qualname = self.program.resolve(self.module, name)
        if qualname is None:
            return
        if qualname in self.program.classes:
            for target in _class_ctor_targets(
                self.program, self.program.classes[qualname]
            ):
                self.graph.add(self.func.qualname, target)
        elif qualname in self.program.functions:
            self.graph.add(self.func.qualname, qualname)

    def _edge_via_receiver(self, receiver: str, attr: str) -> bool:
        """Edges for ``receiver.attr(...)``; True when resolved."""
        program = self.program
        # Imported module or class attribute (fastpath2.replay, C.build).
        qualname = program.resolve(self.module, f"{receiver}.{attr}")
        if qualname is not None:
            if qualname in program.functions:
                self.graph.add(self.func.qualname, qualname)
                return True
            if qualname in program.classes:
                for target in _class_ctor_targets(
                    program, program.classes[qualname]
                ):
                    self.graph.add(self.func.qualname, target)
                return True
        # Typed receiver (self, annotated parameter, propagated local).
        receiver_class = self._receiver_class(receiver)
        if receiver_class is not None:
            targets = program.lookup_method(receiver_class, attr)
            if targets:
                for target in targets:
                    self.graph.add(self.func.qualname, target.qualname)
                return True
            # Typed receiver without such a method: external/dynamic
            # attribute — resolved enough, do not duck-fan-out.
            return True
        return False

    def _receiver_class(self, receiver: str) -> Optional[str]:
        if receiver in self.types:
            return self.types[receiver]
        head, _, rest = receiver.partition(".")
        if not rest:
            return None
        current = self.types.get(head)
        for part in rest.split("."):
            if current is None:
                return None
            current = _attr_class(self.program, current, part)
        return current

    def _duck_edges(self, attr: str) -> None:
        if attr.startswith("__") or attr in DUCK_SKIP:
            return
        implementations = self.program.methods_by_name.get(attr, [])
        owners = {impl.owner for impl in implementations if impl.owner}
        if not implementations:
            return
        if len(owners) > DUCK_FANOUT_LIMIT:
            self.graph.unresolved[attr] += 1
            return
        for impl in implementations:
            self.graph.add(self.func.qualname, impl.qualname)

    # -- property reads ---------------------------------------------------

    def _resolve_property_read(self, node: ast.Attribute) -> None:
        receiver = _dotted(node.value)
        if receiver is None:
            return
        receiver_class = self._receiver_class(receiver)
        if receiver_class is None:
            return
        for info in self.program.ancestors(receiver_class):
            method = info.methods.get(node.attr)
            if method is not None and method.is_property:
                self.graph.add(self.func.qualname, method.qualname)
                return


def _attr_class(
    program: Program, class_qualname: str, attr: str
) -> Optional[str]:
    for info in program.ancestors(class_qualname):
        if attr in info.attr_types:
            return info.attr_types[attr]
        if attr in info.field_types and info.field_types[attr]:
            return info.field_types[attr]
        if attr in info.methods and info.methods[attr].is_property:
            module = program.modules[info.module]
            resolved = program.resolve_annotation(
                module, info.methods[attr].node.returns
            )
            if resolved is not None:
                return resolved.qualname
    return None


def build_callgraph(
    program: Program, allowed_modules: Optional[set[str]] = None
) -> CallGraph:
    """Edges for every function whose module is in ``allowed_modules``.

    ``None`` means every module.  Edges *into* disallowed modules are
    still recorded (the closure helper filters); edges *from* them are
    not computed, which is what bounds the walk.
    """
    graph = CallGraph()
    for func in program.functions.values():
        if allowed_modules is not None and func.module not in allowed_modules:
            continue
        _FunctionResolver(program, graph, func).resolve()
    return graph


def module_closure(
    program: Program,
    entry_patterns: tuple[str, ...],
    exclude_patterns: tuple[str, ...] = (),
) -> tuple[set[str], CallGraph, set[str]]:
    """(closure function set, graph, allowed module set) for a boundary.

    Entries are *every* def in the modules matching ``entry_patterns``;
    modules matching ``exclude_patterns`` are outside the boundary —
    their functions never enter the closure and contribute no edges.
    """
    allowed: set[str] = set()
    for name, module in program.modules.items():
        if match_any(module.rel_name, exclude_patterns):
            continue
        allowed.add(name)
    graph = build_callgraph(program, allowed)
    entries = [
        func.qualname
        for func in program.functions.values()
        if match_any(
            program.modules[func.module].rel_name, entry_patterns
        )
    ]
    closure = {
        qualname
        for qualname in graph.closure(entries)
        if qualname in program.functions
        and program.functions[qualname].module in allowed
    }
    return closure, graph, allowed
