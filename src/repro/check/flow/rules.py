"""Flow rules REP010–REP012 over the fault-path closure.

======== ==============================================================
Code     Rule
======== ==============================================================
REP010   Spec-coverage taint: an attribute of ``GPUConfig`` /
         ``HPEConfig`` / ``ScenarioSpec`` is read inside the fault-path
         closure but never enters ``ScenarioSpec.canonical()`` — two
         runs differing only in that field would share one cache entry.
REP011   Worker safety: a function reachable from a supervised-worker
         entry point rebinds a module global.  Workers are forked (or
         spawned) processes — the rebind never propagates back, and the
         pre-fork value silently leaks in.
REP012   Determinism hazards on the fault path: wall-clock reads,
         ``os.environ`` reads, module-level numpy RNG, and iteration
         over unordered sets.  Cached results must be a pure function
         of the spec.
======== ==============================================================

Suppression works exactly like the per-file lint rules: ``# noqa`` /
``# noqa: REP01x`` on the flagged line, with the justification expected
in the trailing comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.check.flow.callgraph import _immediate_body, build_callgraph
from repro.check.flow.model import (
    FlowConfig,
    FunctionInfo,
    ModuleInfo,
    Program,
    _attribute_class,
    infer_expr_class,
    infer_receiver_types,
)
from repro.check.lint import _NOQA_RE, LintFinding

#: Wall-clock call targets (dotted text) that make cached results
#: depend on when — not just what — was run.
_TIME_CALLS = frozenset({
    "time.time", "time.monotonic", "time.perf_counter",
    "time.process_time", "time.time_ns", "time.monotonic_ns",
    "time.perf_counter_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: ``np.random.X`` members that construct *seeded* generators — these
#: are how seeded numpy randomness is supposed to enter.
_SEEDED_NP_MEMBERS = frozenset({
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "PCG64", "Philox",
})


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _rel_path(module: ModuleInfo) -> str:
    try:
        return str(module.path.relative_to(Path.cwd()))
    except ValueError:
        return str(module.path)


def _suppressed(module: ModuleInfo, line: int, code: str) -> bool:
    if not 1 <= line <= len(module.source_lines):
        return False
    match = _NOQA_RE.search(module.source_lines[line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return code.upper() in {c.strip().upper() for c in codes.split(",")}


class _Findings:
    """Collector applying noqa suppression per flagged line.

    Suppressed findings are kept on the side: the lint pass's stale-noqa
    audit (REP013) and ``--statistics`` need to know what every noqa
    actually silenced.
    """

    def __init__(self) -> None:
        self.items: list[LintFinding] = []
        self.suppressed: list[LintFinding] = []

    def report(
        self,
        module: ModuleInfo,
        node: ast.AST,
        code: str,
        message: str,
        line: Optional[int] = None,
    ) -> None:
        at = line if line is not None else getattr(node, "lineno", 1)
        finding = LintFinding(
            code=code,
            path=_rel_path(module),
            line=at,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )
        if _suppressed(module, at, code):
            self.suppressed.append(finding)
        else:
            self.items.append(finding)


def _receiver_class(
    program: Program, types: dict[str, str], receiver: str
) -> Optional[str]:
    """Class qualname behind dotted receiver text, where inferable."""
    if receiver in types:
        return types[receiver]
    head, _, rest = receiver.partition(".")
    if not rest:
        return None
    current: Optional[str] = types.get(head)
    for part in rest.split("."):
        if current is None:
            return None
        current = _attribute_class(program, current, part)
    return current


# -- REP010: spec-coverage taint -------------------------------------------


@dataclass
class SpecCoverage:
    """What ``ScenarioSpec.canonical()`` actually hashes."""

    #: class qualname -> attribute names entering the canonical string.
    covered: dict[str, set[str]] = field(default_factory=dict)
    #: Classes serialised whole (``stable_config_repr`` / ``asdict``).
    fully_covered: set[str] = field(default_factory=set)
    #: Functions walked while extracting coverage (the canonical method
    #: and the accessors it pulls in) — their own reads *are* coverage.
    visited: set[str] = field(default_factory=set)

    def covers(self, class_qualname: str, attr: str) -> bool:
        if class_qualname in self.fully_covered:
            return True
        return attr in self.covered.get(class_qualname, set())


def compute_spec_coverage(
    program: Program, config: FlowConfig
) -> SpecCoverage:
    """Walk ``canonical()`` (and the accessors it reads) for coverage.

    ``self.X`` reads mark field/property ``X`` covered on the owning
    class; properties are followed transitively; a call listed in
    ``config.cover_all_calls`` (``stable_config_repr`` — which iterates
    every dataclass field dynamically — or ``asdict``) marks its
    argument's class as fully covered.
    """
    coverage = SpecCoverage()
    mod_rel, class_name, method_name = config.canonical_method
    class_qualname = f"{config.full(mod_rel)}.{class_name}"
    info = program.classes.get(class_qualname)
    if info is None or method_name not in info.methods:
        return coverage
    queue: list[FunctionInfo] = [info.methods[method_name]]
    cover_all = set(config.cover_all_calls)
    while queue:
        func = queue.pop()
        if func.qualname in coverage.visited or func.owner is None:
            continue
        coverage.visited.add(func.qualname)
        owner = func.owner
        module = program.modules[func.module]
        types = infer_receiver_types(program, func)
        covered = coverage.covered.setdefault(owner, set())
        for node in _immediate_body(func.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                covered.add(node.attr)
                for ancestor in program.ancestors(owner):
                    member = ancestor.methods.get(node.attr)
                    if member is not None and member.is_property:
                        queue.append(member)
                        break
            elif isinstance(node, ast.Call):
                target = _dotted(node.func)
                if target is None:
                    continue
                if target.split(".")[-1] in cover_all:
                    for arg in node.args:
                        inferred = infer_expr_class(
                            program, module, arg, types
                        )
                        if inferred is not None:
                            coverage.fully_covered.add(inferred)
                elif target.startswith("self."):
                    for member in program.lookup_method(
                        owner, target.split(".", 1)[1], virtual=False
                    ):
                        queue.append(member)
    return coverage


def _tracked_maps(
    program: Program, config: FlowConfig
) -> tuple[dict[str, str], dict[str, str]]:
    """(tracked class qualname -> display name, alias -> qualname)."""
    tracked: dict[str, str] = {}
    aliases: dict[str, str] = {}
    for tc in config.tracked_classes:
        qualname = f"{config.full(tc.module)}.{tc.name}"
        if qualname not in program.classes:
            continue
        tracked[qualname] = tc.name
        for alias in tc.aliases:
            aliases[alias] = qualname
    return tracked, aliases


def _class_member_kind(
    program: Program, class_qualname: str, attr: str
) -> Optional[str]:
    """'field', 'property', 'method', or ``None`` (unknown attribute)."""
    for info in program.ancestors(class_qualname):
        if attr in info.field_types:
            return "field"
        if attr in info.methods:
            return (
                "property" if info.methods[attr].is_property else "method"
            )
    return None


def spec_coverage_findings(
    program: Program,
    config: FlowConfig,
    closure: Iterable[str],
    coverage: Optional[SpecCoverage] = None,
    collector: Optional[_Findings] = None,
) -> list[LintFinding]:
    """REP010 over every closure function."""
    if coverage is None:
        coverage = compute_spec_coverage(program, config)
    tracked, aliases = _tracked_maps(program, config)
    canonical_name = ".".join(config.canonical_method[1:])
    out = collector if collector is not None else _Findings()
    for qualname in sorted(set(closure)):
        if qualname in coverage.visited:
            continue
        func = program.functions[qualname]
        module = program.modules[func.module]
        types = infer_receiver_types(program, func)
        seen_sites: set[tuple[int, int]] = set()
        for node in _immediate_body(func.node):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            receiver = _dotted(node.value)
            if receiver is None:
                continue
            cls = _receiver_class(program, types, receiver)
            if cls is None and isinstance(node.value, ast.Name):
                cls = aliases.get(receiver)
            if cls is None or cls not in tracked:
                continue
            kind = _class_member_kind(program, cls, node.attr)
            if kind not in ("field", "property"):
                continue  # methods are checked through their own bodies
            if coverage.covers(cls, node.attr):
                continue
            site = (node.lineno, node.col_offset)
            if site in seen_sites:
                continue
            seen_sites.add(site)
            out.report(
                module, node, "REP010",
                f"{tracked[cls]}.{node.attr} is read on the fault path "
                f"but never enters {canonical_name}() — two runs "
                "differing only in this field share one cache entry; "
                "add it to the canonical string (and bump "
                "CACHE_SCHEMA_VERSION) or move the read off the fault "
                "path",
            )
    return out.items


# -- REP011: worker-global mutation ----------------------------------------


def worker_safety_findings(
    program: Program,
    config: FlowConfig,
    collector: Optional[_Findings] = None,
) -> list[LintFinding]:
    """REP011: module-global rebinds reachable from worker entries."""
    out = collector if collector is not None else _Findings()
    entries = [
        config.full(rel)
        for rel in config.worker_entries
        if config.full(rel) in program.functions
    ]
    if not entries:
        return out.items
    graph = build_callgraph(program)
    closure = {
        qualname
        for qualname in graph.closure(entries)
        if qualname in program.functions
    }
    for qualname in sorted(closure):
        func = program.functions[qualname]
        module = program.modules[func.module]
        declared: set[str] = set()
        for node in _immediate_body(func.node):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        if not declared:
            continue
        for node in _immediate_body(func.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    out.report(
                        module, node, "REP011",
                        f"{func.name}() rebinds module global "
                        f"`{target.id}` and is reachable from a "
                        "supervised-worker entry point — the rebind "
                        "never propagates across the process boundary "
                        "and fork-inherited state leaks in; pass state "
                        "explicitly or justify a worker-local memo "
                        "with a noqa",
                    )
    return out.items


# -- REP012: determinism hazards -------------------------------------------


def _is_unordered_iterable(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in {"set", "frozenset"}
    )


def determinism_findings(
    program: Program,
    closure: Iterable[str],
    collector: Optional[_Findings] = None,
) -> list[LintFinding]:
    """REP012 over every closure function."""
    out = collector if collector is not None else _Findings()
    for qualname in sorted(set(closure)):
        func = program.functions[qualname]
        module = program.modules[func.module]
        for node in _immediate_body(func.node):
            if isinstance(node, ast.Call):
                target = _dotted(node.func)
                if target is None:
                    continue
                if target in _TIME_CALLS:
                    out.report(
                        module, node, "REP012",
                        f"wall-clock read {target}() inside the "
                        "fault-path closure — cached results must be a "
                        "pure function of the spec; keep timing out of "
                        "key metrics or justify with a noqa",
                    )
                elif target == "os.getenv":
                    out.report(
                        module, node, "REP012",
                        "os.getenv() inside the fault-path closure — "
                        "environment state is not part of the spec "
                        "hash, so it must not steer cached behaviour",
                    )
                elif target.startswith(("np.random.", "numpy.random.")):
                    member = target.rsplit(".", 1)[-1]
                    if member not in _SEEDED_NP_MEMBERS:
                        out.report(
                            module, node, "REP012",
                            f"{target}() uses numpy's module-level "
                            "global RNG — construct a seeded "
                            "np.random.default_rng(seed) instead",
                        )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and _dotted(node) == "os.environ"
            ):
                out.report(
                    module, node, "REP012",
                    "os.environ read inside the fault-path closure — "
                    "environment state is not part of the spec hash, "
                    "so it must not steer cached behaviour",
                )
            elif isinstance(node, ast.For) and _is_unordered_iterable(
                node.iter
            ):
                out.report(
                    module, node, "REP012",
                    "iteration over an unordered set on the fault path "
                    "— wrap in sorted(...) or justify with a noqa when "
                    "element order provably cannot reach the results",
                )
            elif isinstance(
                node, ast.comprehension
            ) and _is_unordered_iterable(node.iter):
                out.report(
                    module, node.iter, "REP012",
                    "comprehension over an unordered set on the fault "
                    "path — wrap in sorted(...) or justify with a noqa "
                    "when element order provably cannot reach the "
                    "results",
                )
    return out.items
