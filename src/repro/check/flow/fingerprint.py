"""Fault-path behaviour fingerprints and the pinned closure manifest (REP009).

The cached-result story rests on an unwritten contract: *the code the
cache fingerprint does not capture must not change behaviour without a
``CACHE_SCHEMA_VERSION`` bump*.  This module makes that contract a
machine-checked gate:

1. compute the transitive call-graph closure from the simulation entry
   points (``sim.engine``, ``sim.fastpath2``, ``policies.*``, ``tlb.*``,
   ``uvm.*``, ``workloads.*``);
2. hash every closure function's *normalized* AST (docstrings stripped,
   positions ignored — comments and formatting never churn the digest),
   plus per-module ``__constants__`` and per-class ``__classvars__``
   pseudo-nodes so module-level tuning constants and dataclass defaults
   are fingerprinted too;
3. compare against the checked-in manifest
   (``src/repro/check/flow/flow_manifest.json``).

``hpe-repro flow staleness`` fails when the closure changed without a
schema bump *and* a deliberate re-pin (``hpe-repro flow pin``) — the
manifest diff is the reviewable artefact, exactly like the golden
snapshots and the scenario-digest manifest.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.check.flow.callgraph import CallGraph, module_closure
from repro.check.flow.model import (
    DEFAULT_FLOW_CONFIG,
    FlowConfig,
    Program,
    load_program,
)

#: Hex characters kept per function fingerprint (64 bits — ample for a
#: few hundred closure functions).
FINGERPRINT_HEX = 16


def _strip_docstrings(node: ast.AST) -> None:
    """Remove docstring statements, in place, at every nesting level."""
    for child in ast.walk(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module),
        ) and child.body:
            first = child.body[0]
            if (
                isinstance(first, ast.Expr)
                and isinstance(first.value, ast.Constant)
                and isinstance(first.value.value, str)
            ):
                child.body = child.body[1:] or [
                    ast.Pass(lineno=first.lineno, col_offset=0)
                ]


def normalized_hash(node: ast.AST) -> str:
    """Position-free, docstring-free digest of one AST subtree."""
    clone = copy.deepcopy(node)
    _strip_docstrings(clone)
    blob = ast.dump(clone, include_attributes=False).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:FINGERPRINT_HEX]


def _stmts_hash(stmts: list[ast.stmt]) -> str:
    module = ast.Module(body=list(stmts), type_ignores=[])
    return normalized_hash(module)


@dataclass
class FlowAnalysis:
    """One computed fault-path closure over one program."""

    program: Program
    config: FlowConfig
    closure: set[str]
    graph: CallGraph
    allowed_modules: set[str]


def analyze(
    package_root: Optional[Union[str, Path]] = None,
    config: FlowConfig = DEFAULT_FLOW_CONFIG,
    program: Optional[Program] = None,
) -> FlowAnalysis:
    """Load the program and compute the fault-path closure."""
    if program is None:
        root = (
            Path(package_root) if package_root is not None
            else default_package_root()
        )
        program = load_program(root, config.package)
    closure, graph, allowed = module_closure(
        program, config.entry_modules, config.closure_exclude
    )
    return FlowAnalysis(program, config, closure, graph, allowed)


def closure_fingerprints(analysis: FlowAnalysis) -> dict[str, str]:
    """qualname -> behaviour hash for every closure node.

    Besides the functions themselves, each contributing module gets a
    ``<module>.__constants__`` node (its top-level assignments: tuning
    constants change behaviour without touching any function body) and
    each class with closure methods a ``<Class>.__classvars__`` node
    (dataclass field defaults).
    """
    program = analysis.program
    out: dict[str, str] = {}
    touched_modules: set[str] = set()
    touched_classes: set[str] = set()
    for qualname in sorted(analysis.closure):
        func = program.functions[qualname]
        out[qualname] = normalized_hash(func.node)
        touched_modules.add(func.module)
        if func.owner is not None:
            touched_classes.add(func.owner)
    for module_name in sorted(touched_modules):
        module = program.modules[module_name]
        if module.module_var_stmts:
            out[f"{module_name}.__constants__"] = _stmts_hash(
                module.module_var_stmts
            )
    for class_name in sorted(touched_classes):
        info = program.classes[class_name]
        if info.class_var_stmts:
            out[f"{class_name}.__classvars__"] = _stmts_hash(
                info.class_var_stmts
            )
    return out


def closure_digest(fingerprints: dict[str, str]) -> str:
    """One digest over the whole closure (order-independent)."""
    blob = "\n".join(
        f"{name}={digest}" for name, digest in sorted(fingerprints.items())
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def read_schema_version(
    package_root: Path, config: FlowConfig = DEFAULT_FLOW_CONFIG
) -> Optional[int]:
    """The package's ``CACHE_SCHEMA_VERSION``, read without importing."""
    from repro.check.lint import _read_schema_version

    schema_file = package_root / config.schema_file
    if not schema_file.exists():
        return None
    return _read_schema_version(schema_file)


@dataclass
class FlowManifest:
    """The pinned (or freshly computed) closure state."""

    cache_schema_version: Optional[int]
    closure_digest: str
    functions: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "flow_manifest_version": 1,
                "cache_schema_version": self.cache_schema_version,
                "closure_digest": self.closure_digest,
                "functions": dict(sorted(self.functions.items())),
            },
            indent=1,
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FlowManifest":
        data = json.loads(text)
        return cls(
            cache_schema_version=data.get("cache_schema_version"),
            closure_digest=data["closure_digest"],
            functions=dict(data.get("functions", {})),
        )


def default_package_root() -> Path:
    """``src/repro`` as installed — two levels above this package."""
    return Path(__file__).resolve().parents[2]


def default_manifest_path() -> Path:
    """The checked-in manifest next to this module."""
    return Path(__file__).resolve().parent / "flow_manifest.json"


def compute_manifest(analysis: FlowAnalysis) -> FlowManifest:
    """The manifest the current tree would pin."""
    fingerprints = closure_fingerprints(analysis)
    return FlowManifest(
        cache_schema_version=read_schema_version(
            analysis.program.root, analysis.config
        ),
        closure_digest=closure_digest(fingerprints),
        functions=fingerprints,
    )


def load_manifest(path: Optional[Path] = None) -> Optional[FlowManifest]:
    """The pinned manifest, or ``None`` when never pinned."""
    manifest_path = path or default_manifest_path()
    if not manifest_path.exists():
        return None
    return FlowManifest.from_json(
        manifest_path.read_text(encoding="utf-8")
    )


def pin_manifest(
    analysis: FlowAnalysis, path: Optional[Path] = None
) -> FlowManifest:
    """Write the current closure state as the new pinned manifest."""
    manifest = compute_manifest(analysis)
    manifest_path = path or default_manifest_path()
    manifest_path.write_text(manifest.to_json(), encoding="utf-8")
    return manifest


@dataclass
class StalenessReport:
    """Outcome of comparing the live closure against the pin."""

    ok: bool
    current: FlowManifest
    pinned: Optional[FlowManifest]
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    changed: list[str] = field(default_factory=list)

    def lines(self) -> list[str]:
        """Human-readable report (CLI / CI output)."""
        if self.pinned is None:
            return [
                "no flow manifest pinned — run `hpe-repro flow pin` and "
                "commit src/repro/check/flow/flow_manifest.json",
            ]
        if self.ok:
            return [
                f"flow: closure matches the pinned manifest "
                f"({len(self.current.functions)} fingerprints, "
                f"schema v{self.current.cache_schema_version})",
            ]
        out = [
            "flow: REP009 — the fault-path closure changed since the "
            "manifest was pinned:",
        ]
        for name in self.changed:
            out.append(f"  changed  {name}")
        for name in self.added:
            out.append(f"  added    {name}")
        for name in self.removed:
            out.append(f"  removed  {name}")
        current_v = self.current.cache_schema_version
        pinned_v = self.pinned.cache_schema_version
        if current_v == pinned_v:
            out.append(
                f"cache schema is still v{current_v}: if these edits "
                "change any simulated metric, bump CACHE_SCHEMA_VERSION "
                "in repro/sim/cache.py first (stale cache entries and "
                "golden snapshots otherwise survive the edit); then "
                "re-pin with `hpe-repro flow pin`"
            )
        else:
            out.append(
                f"cache schema moved v{pinned_v} -> v{current_v}: "
                "re-pin with `hpe-repro flow pin` and commit the "
                "manifest diff"
            )
        return out


def check_staleness(
    analysis: FlowAnalysis, manifest_path: Optional[Path] = None
) -> StalenessReport:
    """REP009: does the live closure match the pinned manifest?"""
    current = compute_manifest(analysis)
    pinned = load_manifest(manifest_path)
    if pinned is None:
        return StalenessReport(ok=False, current=current, pinned=None)
    current_names = set(current.functions)
    pinned_names = set(pinned.functions)
    added = sorted(current_names - pinned_names)
    removed = sorted(pinned_names - current_names)
    changed = sorted(
        name
        for name in current_names & pinned_names
        if current.functions[name] != pinned.functions[name]
    )
    ok = (
        not added
        and not removed
        and not changed
        and current.cache_schema_version == pinned.cache_schema_version
    )
    return StalenessReport(
        ok=ok,
        current=current,
        pinned=pinned,
        added=added,
        removed=removed,
        changed=changed,
    )
