"""Whole-program AST model for the flow analyzer.

Everything downstream of this module — the call graph, the fault-path
behaviour fingerprints (REP009), the spec-coverage taint (REP010), and
the worker-safety/determinism rules (REP011/REP012) — operates on the
:class:`Program` built here: every module of a package parsed once,
with module/symbol resolution, a class hierarchy, and a deliberately
light type-inference layer that leans on the strict-typing gate (the
fault-path packages are fully annotated, so parameter annotations are
a reliable receiver-type oracle).

Pure :mod:`ast` like the lint pass and the typing gate: nothing under
``src`` is imported or executed, so the analyzer works on trees that do
not even import cleanly (and on fixture packages in tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional


def match_module(name: str, pattern: str) -> bool:
    """Does package-relative module ``name`` match ``pattern``?

    ``"sim.engine"`` matches exactly; ``"policies.*"`` matches
    ``policies`` itself and every submodule.
    """
    if pattern.endswith(".*"):
        head = pattern[:-2]
        return name == head or name.startswith(head + ".")
    return name == pattern


def match_any(name: str, patterns: tuple[str, ...]) -> bool:
    """Does ``name`` match any of ``patterns`` (see :func:`match_module`)?"""
    return any(match_module(name, pattern) for pattern in patterns)


@dataclass
class FunctionInfo:
    """One function, method, or nested def."""

    qualname: str  # repro.sim.engine.UVMSimulator.run
    module: str  # repro.sim.engine
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Enclosing class qualname for methods, ``None`` otherwise.
    owner: Optional[str] = None
    is_property: bool = False

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base expressions as dotted text (resolved to qualnames later).
    base_names: list[str] = field(default_factory=list)
    #: Resolved program-class qualnames of the bases.
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class-level non-function statements (dataclass fields, class vars).
    class_var_stmts: list[ast.stmt] = field(default_factory=list)
    #: ``name: annotation-qualname`` for annotated fields (dataclasses).
    field_types: dict[str, Optional[str]] = field(default_factory=dict)
    #: Instance attributes assigned in methods: name -> class qualname.
    attr_types: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False

    def field_names(self) -> list[str]:
        """Annotated field names in declaration order."""
        return list(self.field_types)


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str  # repro.sim.engine
    rel_name: str  # sim.engine ("" for the package root __init__)
    path: Path
    tree: ast.Module
    source_lines: list[str]
    #: alias -> module qualname or symbol qualname (all imports, any depth).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Top-level non-def statements (module constants and state).
    module_var_stmts: list[ast.stmt] = field(default_factory=list)


_PROPERTY_DECORATORS = {"property", "cached_property"}


@dataclass(frozen=True)
class TrackedClass:
    """A config/spec class whose fault-path reads REP010 taints."""

    name: str  # "GPUConfig"
    module: str  # package-relative: "sim.config"
    #: Receiver-name fallbacks when no annotation binds the receiver.
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class FlowConfig:
    """Analyzer boundary: entry points, exclusions, tracked identity.

    The default instance describes this repo; tests substitute fixture
    configurations to prove the rules fire without mutating ``src``.
    All module names are package-relative (``sim.engine``); patterns
    follow :func:`match_module`.
    """

    package: str = "repro"
    #: Every def in these modules seeds the fault-path closure.
    entry_modules: tuple[str, ...] = (
        "sim.engine",
        "sim.fastpath2",
        "policies.*",
        "tlb.*",
        "uvm.*",
        "workloads.*",
    )
    #: Modules outside the cached-behaviour boundary.  ``obs``/``check``
    #: runs bypass the result cache by design, ``resil`` affects
    #: execution but not results, and the harness/presentation layers
    #: never run inside a cached simulation.
    closure_exclude: tuple[str, ...] = (
        "obs.*",
        "check.*",
        "resil.*",
        "experiments.*",
        "analysis.*",
        "scenarios.registry",
        "scenarios.manifest",
        "cli",
        "__main__",
    )
    #: Package-relative qualnames that run inside supervised workers.
    worker_entries: tuple[str, ...] = (
        "resil.supervisor._worker_main",
        "experiments.runner._run_job",
    )
    tracked_classes: tuple[TrackedClass, ...] = (
        TrackedClass("GPUConfig", "sim.config",
                     aliases=("config", "gpu_config")),
        TrackedClass("HPEConfig", "core.hpe", aliases=("hpe_config",)),
        TrackedClass("ScenarioSpec", "scenarios.spec",
                     aliases=("spec", "cell", "scenario")),
    )
    #: (module, class, method) producing the one canonical identity.
    canonical_method: tuple[str, str, str] = (
        "scenarios.spec", "ScenarioSpec", "canonical",
    )
    #: Calls that serialise a whole dataclass into the identity — their
    #: argument's class counts as fully covered.
    cover_all_calls: tuple[str, ...] = ("stable_config_repr", "asdict")
    #: File (relative to the package root) carrying the integer
    #: ``CACHE_SCHEMA_VERSION`` constant.
    schema_file: str = "sim/cache.py"

    def full(self, rel: str) -> str:
        """Package-relative name -> full qualname."""
        return f"{self.package}.{rel}" if rel else self.package


#: The repo's own analyzer boundary.
DEFAULT_FLOW_CONFIG = FlowConfig()


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` text of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        text = _dotted(target)
        if text is not None:
            names.add(text.split(".")[-1])
    return names


class Program:
    """Every module of one package, cross-resolved."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        #: Every function by qualname (top-level, methods, nested defs).
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Method name -> implementations (for duck-typed resolution).
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: Class qualname -> direct subclasses.
        self.subclasses: dict[str, list[str]] = {}

    # -- lookup helpers ---------------------------------------------------

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        return self.modules.get(self.functions[qualname].module) \
            if qualname in self.functions else None

    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve dotted text in ``module``'s namespace to a qualname.

        The result may name a module, class, function, or class member
        of this program; ``None`` for builtins and external libraries.
        """
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        target: Optional[str] = None
        if head in module.imports:
            target = module.imports[head]
        elif head in module.functions:
            target = module.functions[head].qualname
        elif head in module.classes:
            target = module.classes[head].qualname
        elif dotted in self.modules:
            return dotted
        if target is None:
            return None
        for part in rest:
            if target in self.modules:
                inner = self.modules[target]
                if part in inner.functions:
                    target = inner.functions[part].qualname
                elif part in inner.classes:
                    target = inner.classes[part].qualname
                elif part in inner.imports:
                    target = inner.imports[part]
                else:
                    candidate = f"{target}.{part}"
                    if candidate in self.modules:
                        target = candidate
                    else:
                        return None
            elif target in self.classes:
                info = self.classes[target]
                if part in info.methods:
                    target = info.methods[part].qualname
                else:
                    return None
            else:
                candidate = f"{target}.{part}"
                if candidate in self.modules or candidate in self.classes \
                        or candidate in self.functions:
                    target = candidate
                else:
                    return None
        return target

    def resolve_class(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[ClassInfo]:
        """Resolve dotted text to a program class, if it names one."""
        qualname = self.resolve(module, dotted)
        if qualname is not None and qualname in self.classes:
            return self.classes[qualname]
        return None

    def resolve_annotation(
        self, module: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[ClassInfo]:
        """Program class named by an annotation, unwrapping Optional/str."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(
                    annotation.value, mode="eval"
                ).body
            except SyntaxError:
                return None
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            text = _dotted(annotation)
            return self.resolve_class(module, text) if text else None
        if isinstance(annotation, ast.Subscript):
            head = _dotted(annotation.value)
            if head and head.split(".")[-1] in {"Optional", "Union"}:
                inner = annotation.slice
                args = (
                    inner.elts if isinstance(inner, ast.Tuple) else [inner]
                )
                for arg in args:
                    resolved = self.resolve_annotation(module, arg)
                    if resolved is not None:
                        return resolved
        return None

    def ancestors(self, class_qualname: str) -> list[ClassInfo]:
        """The class and its transitive program-class bases (DFS order)."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            info = self.classes[current]
            out.append(info)
            stack.extend(info.bases)
        return out

    def descendants(self, class_qualname: str) -> list[ClassInfo]:
        """Transitive subclasses (excluding the class itself)."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = list(self.subclasses.get(class_qualname, ()))
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            out.append(self.classes[current])
            stack.extend(self.subclasses.get(current, ()))
        return out

    def lookup_method(
        self, class_qualname: str, name: str, *, virtual: bool = True
    ) -> list[FunctionInfo]:
        """Method implementations reachable from a receiver of this class.

        Class-hierarchy analysis: the statically-known owner's
        definition (searching ancestors) plus — when ``virtual`` —
        every subclass override, because the concrete policy/TLB object
        behind an annotated receiver is chosen at runtime.
        """
        targets: dict[str, FunctionInfo] = {}
        for info in self.ancestors(class_qualname):
            if name in info.methods:
                targets[info.methods[name].qualname] = info.methods[name]
                break
        if virtual:
            for info in self.descendants(class_qualname):
                if name in info.methods:
                    targets[info.methods[name].qualname] = info.methods[name]
        return list(targets.values())


def _module_name(package: str, root: Path, path: Path) -> tuple[str, str]:
    """(full, package-relative) dotted module name of one source file."""
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    rel_name = ".".join(parts)
    full = package if not rel_name else f"{package}.{rel_name}"
    return full, rel_name


def _collect_imports(
    module_name: str, tree: ast.Module, package: str
) -> dict[str, str]:
    """alias -> qualname for every import statement, at any nesting."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: anchor at the enclosing package.
                anchor = module_name.split(".")
                anchor = anchor[: len(anchor) - node.level]
                base = ".".join(anchor + ([node.module]
                                          if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base \
                    else alias.name
    return imports


def _register_functions(
    program: Program,
    module: ModuleInfo,
    body: list[ast.stmt],
    prefix: str,
    owner: Optional[str],
) -> dict[str, FunctionInfo]:
    """Register defs in one scope; returns the name -> info map."""
    out: dict[str, FunctionInfo] = {}
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{stmt.name}"
            info = FunctionInfo(
                qualname=qualname,
                module=module.name,
                name=stmt.name,
                node=stmt,
                owner=owner,
                is_property=bool(
                    _decorator_names(stmt) & _PROPERTY_DECORATORS
                ),
            )
            # Later defs shadow earlier ones (e.g. @overload stubs).
            out[stmt.name] = info
            program.functions[qualname] = info
            program.methods_by_name.setdefault(stmt.name, []).append(info)
            # Nested defs become their own nodes (closures/factories).
            _register_functions(
                program, module, stmt.body, f"{qualname}.", None
            )
    return out


def _register_class(
    program: Program, module: ModuleInfo, node: ast.ClassDef
) -> ClassInfo:
    qualname = f"{module.name}.{node.name}"
    info = ClassInfo(
        qualname=qualname,
        module=module.name,
        name=node.name,
        node=node,
    )
    for base in node.bases:
        text = _dotted(base)
        if text is not None:
            info.base_names.append(text)
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        text = _dotted(target)
        if text and text.split(".")[-1] == "dataclass":
            info.is_dataclass = True
    info.methods = _register_functions(
        program, module, node.body, f"{qualname}.", qualname
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and isinstance(stmt.value.value, str):
            continue  # docstring
        info.class_var_stmts.append(stmt)
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            info.field_types[stmt.target.id] = None  # resolved later
    return info


def infer_expr_class(
    program: Program,
    module: ModuleInfo,
    expr: ast.expr,
    local_types: dict[str, str],
) -> Optional[str]:
    """Class qualname an expression evaluates to, where inferable.

    Handles constructor calls (``GPUConfig()``), names bound in
    ``local_types``, attribute chains through inferred instance
    attributes / annotated properties / dataclass fields, and
    ``a or b`` defaults (``config or GPUConfig()``).
    """
    if isinstance(expr, ast.Call):
        text = _dotted(expr.func)
        if text is not None:
            resolved = program.resolve_class(module, text)
            if resolved is not None:
                return resolved.qualname
        return None
    if isinstance(expr, (ast.Name, ast.Attribute)):
        text = _dotted(expr)
        if text is None:
            return None
        if text in local_types:
            return local_types[text]
        head, _, rest = text.partition(".")
        if not rest:
            return None
        owner = local_types.get(head)
        current = owner
        for part in rest.split("."):
            if current is None or current not in program.classes:
                return None
            current = _attribute_class(program, current, part)
        return current
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
        for value in expr.values:
            inferred = infer_expr_class(program, module, value, local_types)
            if inferred is not None:
                return inferred
    return None


def _attribute_class(
    program: Program, class_qualname: str, attr: str
) -> Optional[str]:
    """Class of ``<instance of class_qualname>.attr``, where inferable."""
    for info in program.ancestors(class_qualname):
        if attr in info.attr_types:
            return info.attr_types[attr]
        if attr in info.field_types and info.field_types[attr]:
            return info.field_types[attr]
        if attr in info.methods and info.methods[attr].is_property:
            returns = info.methods[attr].node.returns
            module = program.modules[info.module]
            resolved = program.resolve_annotation(module, returns)
            if resolved is not None:
                return resolved.qualname
    return None


def infer_receiver_types(
    program: Program, func: FunctionInfo
) -> dict[str, str]:
    """Dotted receiver text -> class qualname, for one function body.

    Seeds from parameter annotations (the strict-typing gate keeps the
    fault path fully annotated) and ``self``, then propagates through
    simple assignments in statement order.
    """
    module = program.modules[func.module]
    types: dict[str, str] = {}
    if func.owner is not None:
        types["self"] = func.owner
        types["cls"] = func.owner
    args = func.node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        resolved = program.resolve_annotation(module, arg.annotation)
        if resolved is not None:
            types[arg.arg] = resolved.qualname
    for stmt in ast.walk(func.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = _dotted(stmt.targets[0])
            if target is None:
                continue
            inferred = infer_expr_class(program, module, stmt.value, types)
            if inferred is not None:
                types[target] = inferred
        elif isinstance(stmt, ast.AnnAssign) and stmt.target is not None:
            target = _dotted(stmt.target)
            if target is None:
                continue
            resolved = program.resolve_annotation(module, stmt.annotation)
            if resolved is not None:
                types[target] = resolved.qualname
    return types


def _infer_instance_attrs(program: Program, info: ClassInfo) -> None:
    """Populate ``info.attr_types`` from ``self.X = ...`` assignments."""
    for method in info.methods.values():
        types = infer_receiver_types(program, method)
        module = program.modules[info.module]
        for stmt in ast.walk(method.node):
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            inferred = infer_expr_class(program, module, stmt.value, types)
            if inferred is not None and target.attr not in info.attr_types:
                info.attr_types[target.attr] = inferred


def iter_source_files(root: Path) -> Iterator[Path]:
    """Every ``.py`` file of the package rooted at ``root``, sorted."""
    yield from sorted(root.rglob("*.py"))


def load_program(root: Path, package: str = "repro") -> Program:
    """Parse every module under ``root`` and cross-resolve the package."""
    program = Program(package, root)
    for path in iter_source_files(root):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue  # the lint pass reports REP000 for these
        full, rel_name = _module_name(package, root, path)
        module = ModuleInfo(
            name=full,
            rel_name=rel_name,
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
        )
        module.imports = _collect_imports(full, tree, package)
        module.functions = _register_functions(
            program, module, tree.body, f"{full}.", None
        )
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                info = _register_class(program, module, stmt)
                module.classes[stmt.name] = info
                program.classes[info.qualname] = info
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ) and isinstance(stmt.value.value, str):
                continue  # module docstring
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                module.module_var_stmts.append(stmt)
        program.modules[full] = module
    # Second pass: resolve bases, dataclass field types, instance attrs.
    for module in program.modules.values():
        for info in module.classes.values():
            for base_name in info.base_names:
                resolved = program.resolve(module, base_name)
                if resolved is not None and resolved in program.classes:
                    info.bases.append(resolved)
                    program.subclasses.setdefault(resolved, []).append(
                        info.qualname
                    )
            for stmt in info.class_var_stmts:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    resolved_cls = program.resolve_annotation(
                        module, stmt.annotation
                    )
                    info.field_types[stmt.target.id] = (
                        resolved_cls.qualname if resolved_cls else None
                    )
    for info in program.classes.values():
        _infer_instance_attrs(program, info)
    return program
