"""Whole-program flow analyzer: fault-path fingerprints and flow rules.

Public surface:

- :func:`analyze` — parse ``src/repro``, build the call graph, and
  compute the fault-path closure (one :class:`FlowAnalysis`).
- :func:`check_staleness` / :func:`pin_manifest` — the REP009 gate
  against the checked-in ``flow_manifest.json``.
- :func:`run_flow_rules` — REP010 (spec-coverage taint), REP011
  (worker-global mutation), REP012 (determinism hazards), as ordinary
  lint findings.

See :mod:`repro.check.flow.model` for the program model and
``DESIGN.md`` §11 for the analyzer design and rule table.
"""

from __future__ import annotations

from repro.check.flow.callgraph import (
    CallGraph,
    build_callgraph,
    module_closure,
)
from repro.check.flow.fingerprint import (
    FlowAnalysis,
    FlowManifest,
    StalenessReport,
    analyze,
    check_staleness,
    closure_digest,
    closure_fingerprints,
    compute_manifest,
    default_manifest_path,
    load_manifest,
    normalized_hash,
    pin_manifest,
)
from repro.check.flow.model import (
    DEFAULT_FLOW_CONFIG,
    FlowConfig,
    Program,
    TrackedClass,
    load_program,
)
from repro.check.flow.rules import (
    SpecCoverage,
    _Findings,
    compute_spec_coverage,
    determinism_findings,
    spec_coverage_findings,
    worker_safety_findings,
)
from repro.check.lint import LintFinding

__all__ = [
    "CallGraph",
    "DEFAULT_FLOW_CONFIG",
    "FlowAnalysis",
    "FlowConfig",
    "FlowManifest",
    "Program",
    "SpecCoverage",
    "StalenessReport",
    "TrackedClass",
    "analyze",
    "build_callgraph",
    "check_staleness",
    "closure_digest",
    "closure_fingerprints",
    "compute_manifest",
    "compute_spec_coverage",
    "default_manifest_path",
    "determinism_findings",
    "load_manifest",
    "load_program",
    "module_closure",
    "normalized_hash",
    "pin_manifest",
    "run_flow_rules",
    "run_flow_rules_report",
    "spec_coverage_findings",
    "worker_safety_findings",
]


def run_flow_rules_report(
    analysis: FlowAnalysis,
) -> tuple[list[LintFinding], list[LintFinding]]:
    """(active, noqa-suppressed) REP010–REP012 findings.

    The suppressed list feeds the lint pass's stale-noqa audit
    (REP013) and ``--statistics``.
    """
    program, config = analysis.program, analysis.config
    collector = _Findings()
    spec_coverage_findings(
        program, config, analysis.closure, collector=collector
    )
    worker_safety_findings(program, config, collector=collector)
    determinism_findings(program, analysis.closure, collector=collector)
    def key(f: LintFinding) -> tuple[str, int, int, str]:
        return (f.path, f.line, f.col, f.code)

    return sorted(collector.items, key=key), sorted(
        collector.suppressed, key=key
    )


def run_flow_rules(analysis: FlowAnalysis) -> list[LintFinding]:
    """REP010 + REP011 + REP012 over one computed analysis."""
    return run_flow_rules_report(analysis)[0]
