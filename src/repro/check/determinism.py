"""Determinism checker: run twice, diff the ``key_metrics()`` digests.

The whole experiment pipeline leans on runs being reproducible — the
persistent result cache returns a pickled result instead of simulating,
and the parallel matrix collects worker results assuming they equal the
serial ones.  A single unseeded RNG or iteration over an unordered set
anywhere in the fault path silently breaks that contract.

``repro check determinism APP [POLICY] [RATE]`` replays the same
(application × policy × rate) simulation twice — cache bypassed — and
compares SHA-256 digests of the canonical-JSON ``key_metrics()``.  On a
mismatch the differing metric paths are reported, not just the digests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional


def metrics_digest(metrics: dict) -> str:
    """SHA-256 over the canonical JSON form of one ``key_metrics()``."""
    canonical = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def diff_metrics(
    first: dict, second: dict, prefix: str = ""
) -> list[str]:
    """Paths whose values differ between two ``key_metrics()`` dicts."""
    paths: list[str] = []
    for key in sorted(set(first) | set(second)):
        path = f"{prefix}{key}"
        if key not in first or key not in second:
            paths.append(f"{path} (missing on one side)")
            continue
        a, b = first[key], second[key]
        if isinstance(a, dict) and isinstance(b, dict):
            paths.extend(diff_metrics(a, b, prefix=f"{path}."))
        elif a != b:
            paths.append(f"{path}: {a!r} != {b!r}")
    return paths


@dataclass
class DeterminismReport:
    """Outcome of one run-twice-and-compare check."""

    app: str
    policy: str
    rate: float
    first_digest: str
    second_digest: str
    differences: list[str] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """``True`` when both replays produced identical metrics."""
        return self.first_digest == self.second_digest

    def render(self) -> str:
        """Human-readable verdict for the CLI."""
        head = (
            f"{self.app} / {self.policy} @ {self.rate:.0%}: "
            f"{'deterministic' if self.deterministic else 'NON-DETERMINISTIC'}"
        )
        lines = [head, f"  digest 1: {self.first_digest}",
                 f"  digest 2: {self.second_digest}"]
        for path in self.differences[:20]:
            lines.append(f"  differs: {path}")
        if len(self.differences) > 20:
            lines.append(f"  ... and {len(self.differences) - 20} more")
        return "\n".join(lines)


def check_determinism(
    app: str,
    policy: str = "hpe",
    rate: float = 0.75,
    *,
    seed: Optional[int] = None,
    scale: float = 1.0,
    sanitize: bool = False,
) -> DeterminismReport:
    """Simulate ``(app, policy, rate)`` twice and compare the metrics.

    Both replays bypass the persistent result cache (a cache hit would
    trivially compare equal) and can optionally run sanitized.
    """
    from repro import check as check_module
    from repro.experiments.runner import DEFAULT_SEED, run_application

    if seed is None:
        seed = DEFAULT_SEED
    if sanitize:
        check_module.configure(enabled=True)
    try:
        runs: list[dict[str, Any]] = [
            run_application(
                app, policy, rate, seed=seed, scale=scale, use_cache=False
            ).key_metrics()
            for _ in range(2)
        ]
    finally:
        if sanitize:
            check_module.configure(enabled=False)
    first, second = runs
    report = DeterminismReport(
        app=app.upper(),
        policy=policy,
        rate=rate,
        first_digest=metrics_digest(first),
        second_digest=metrics_digest(second),
    )
    if not report.deterministic:
        report.differences = diff_metrics(first, second)
    return report
