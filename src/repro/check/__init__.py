"""repro.check — correctness tooling: sanitizer, lint, typing gate.

Three layers, all runnable from the CLI and CI:

* **Runtime sanitizer** (:mod:`repro.check.invariants`) — an
  :class:`InvariantChecker` hooked into the engine/driver fault path
  (``REPRO_SANITIZE=1`` / ``--sanitize``) that validates the simulator's
  cross-structure invariants every N faults and at interval boundaries,
  raising :class:`InvariantViolation` with a state snapshot.
* **Custom AST lint** (:mod:`repro.check.lint`, ``repro lint``) —
  repo-specific rules (seeded RNG only, no mutable default arguments,
  complete policy interfaces, the single ``is not None`` obs guard,
  no float ``==``, cache-schema version bumps).
* **Typing gate** (:mod:`repro.check.typegate`, ``repro typecheck``) —
  runs mypy strict on ``core``/``sim``/``policies`` when mypy is
  installed and always enforces an AST annotation-completeness gate, so
  the strict packages stay fully annotated even on machines without
  mypy.

Like the observability layer, sanitizing is off by default and adds one
``is not None`` pointer check per fault when off; a sanitized run's
``key_metrics()`` is bit-identical to an unsanitized one.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.check.invariants import (
    DEFAULT_CHECK_EVERY,
    FAST_MODE_MAX_FAULTS,
    CheckerStats,
    InvariantChecker,
    InvariantViolation,
)

if TYPE_CHECKING:
    from repro.sim.engine import UVMSimulator

#: Environment variable enabling the runtime sanitizer (``1``/``on``).
ENV_SANITIZE = "REPRO_SANITIZE"

#: Environment variable overriding the fault sampling period.
ENV_SANITIZE_EVERY = "REPRO_SANITIZE_EVERY"

#: Environment variable selecting fast mode (first 2k faults only).
ENV_SANITIZE_FAST = "REPRO_SANITIZE_FAST"

_TRUTHY = {"1", "on", "true", "yes", "enabled"}

#: Process-level override set by :func:`configure` (CLI ``--sanitize``);
#: ``None`` means "defer to the environment".
_enabled_override: Optional[bool] = None
_fast_override: Optional[bool] = None


def configure(
    enabled: Optional[bool] = None, fast: Optional[bool] = None
) -> None:
    """Override sanitizing for this process (wins over ``REPRO_SANITIZE``)."""
    global _enabled_override, _fast_override
    if enabled is not None:
        _enabled_override = enabled
    if fast is not None:
        _fast_override = fast


def sanitize_enabled() -> bool:
    """Is the sanitizer on (configure() override, then ``REPRO_SANITIZE``)?"""
    if _enabled_override is not None:
        return _enabled_override
    raw = os.environ.get(ENV_SANITIZE, "").strip().lower()
    return raw in _TRUTHY


def sanitize_fast() -> bool:
    """Is fast (first-2k-faults) mode selected?"""
    if _fast_override is not None:
        return _fast_override
    raw = os.environ.get(ENV_SANITIZE_FAST, "").strip().lower()
    return raw in _TRUTHY


def sanitize_every() -> int:
    """Fault sampling period (``REPRO_SANITIZE_EVERY``, default 64)."""
    raw = os.environ.get(ENV_SANITIZE_EVERY, "").strip()
    try:
        value = int(raw) if raw else DEFAULT_CHECK_EVERY
    except ValueError:
        value = DEFAULT_CHECK_EVERY
    return value if value > 0 else DEFAULT_CHECK_EVERY


def make_checker(simulator: "UVMSimulator") -> InvariantChecker:
    """Build an :class:`InvariantChecker` honouring the env/CLI settings."""
    return InvariantChecker(
        simulator,
        check_every=sanitize_every(),
        max_faults=FAST_MODE_MAX_FAULTS if sanitize_fast() else None,
    )


__all__ = [
    "DEFAULT_CHECK_EVERY",
    "ENV_SANITIZE",
    "ENV_SANITIZE_EVERY",
    "ENV_SANITIZE_FAST",
    "FAST_MODE_MAX_FAULTS",
    "CheckerStats",
    "InvariantChecker",
    "InvariantViolation",
    "configure",
    "make_checker",
    "sanitize_enabled",
    "sanitize_every",
    "sanitize_fast",
]
