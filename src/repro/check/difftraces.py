"""Seeded synthetic traces for the differential-testing harness.

The ``tests/diff`` harness replays every trace here through the three
equivalent simulator loops (reference, v1, v2 — see
:mod:`repro.sim.fastpath2`) and asserts bit-identical results.  Each
generator stresses a different part of the batch kernel:

``phased``
    Long distinct-page phases with periodic revisits — maximal
    segments, long hit runs, and capacity eviction chains.
``strided``
    Interleaved strided sweeps (the paper's type II thrashing shape) —
    TLB-set collisions, pressure-based unflagging, and deferred-fill
    batches that hit :meth:`repro.tlb.tlb.TLB.apply_batched_misses`'
    clear path.
``pointer_chase``
    A permutation walk over a hot core plus cold excursions —
    irregular residency mixes and mid-segment classification flips.
``adversarial``
    Division-heavy worst case: near-period-one repeats, tiny distinct
    prefixes (defeating segmentation), and same-L2-set bursts — drives
    the scalar fallbacks, ``MIN_SEGMENT`` chunking, and shootdown
    degradation paths.

Everything is a pure function of ``(seed, length)`` over the stdlib
``random.Random``, so corpus entries and golden snapshots reproduce on
any machine.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.workloads.base import PatternType, Trace

#: Default episode count — big enough for eviction chains, HIR
#: transfers (every 16th fault) and HPE interval boundaries (every
#: 64th), small enough that the full differential matrix stays fast.
DEFAULT_LENGTH = 4096


def phased(seed: int, length: int = DEFAULT_LENGTH) -> Trace:
    """Distinct-page phases with revisits (long segments, hit runs)."""
    rng = random.Random(f"{seed}:phased")
    pages: list[int] = []
    base = 0
    while len(pages) < length:
        span = rng.randrange(192, 640)
        phase = [base + offset for offset in range(span)]
        pages.extend(phase)
        # Revisit a prefix of the phase (resident → hit-class events),
        # sometimes shuffled so the LRU order is exercised too.
        revisit = phase[: rng.randrange(0, span)]
        if revisit and rng.random() < 0.5:
            rng.shuffle(revisit)
        pages.extend(revisit)
        # Phases overlap partially: some pages stay hot across phases.
        base += rng.randrange(span // 2, span + 1)
    return Trace(name=f"diff-phased-{seed}", pages=pages[:length],
                 pattern_type=PatternType.PART_REPETITIVE)


def strided(seed: int, length: int = DEFAULT_LENGTH) -> Trace:
    """Interleaved strided sweeps (set collisions, thrashing)."""
    rng = random.Random(f"{seed}:strided")
    pages: list[int] = []
    footprint = rng.randrange(900, 1400)
    while len(pages) < length:
        stride = rng.choice([1, 2, 4, 8, 16, 32])
        start = rng.randrange(0, footprint)
        count = rng.randrange(64, 512)
        pages.extend(
            (start + index * stride) % footprint for index in range(count)
        )
    return Trace(name=f"diff-strided-{seed}", pages=pages[:length],
                 pattern_type=PatternType.THRASHING)


def pointer_chase(seed: int, length: int = DEFAULT_LENGTH) -> Trace:
    """Permutation walk over a hot core with cold excursions."""
    rng = random.Random(f"{seed}:chase")
    hot = rng.randrange(256, 768)
    successor = list(range(hot))
    rng.shuffle(successor)
    cold_base = hot
    pages: list[int] = []
    node = 0
    while len(pages) < length:
        pages.append(node)
        if rng.random() < 0.08:
            # Cold excursion: a short run of fresh pages, then return.
            span = rng.randrange(4, 48)
            pages.extend(range(cold_base, cold_base + span))
            cold_base += span
        node = successor[node]
    return Trace(name=f"diff-chase-{seed}", pages=pages[:length],
                 pattern_type=PatternType.REGION_MOVING)


def adversarial(seed: int, length: int = DEFAULT_LENGTH) -> Trace:
    """Division-heavy worst case for the segmenting batch kernel."""
    rng = random.Random(f"{seed}:adversarial")
    pages: list[int] = []
    l2_sets = 32  # the default L2 TLB geometry (512 entries, 16-way)
    while len(pages) < length:
        shape = rng.random()
        if shape < 0.35:
            # Near-period-one repeats: segments collapse to duplicates.
            page = rng.randrange(0, 2048)
            repeat = rng.randrange(2, 24)
            for _ in range(repeat):
                pages.append(page)
                if rng.random() < 0.3:
                    pages.append(rng.randrange(0, 2048))
        elif shape < 0.65:
            # Same-L2-set burst: distinct pages all mapping to one set,
            # forcing the batched-fill clear path and set pressure.
            target_set = rng.randrange(0, l2_sets)
            burst = rng.randrange(16, 64)
            start = rng.randrange(0, 64)
            pages.extend(
                target_set + (start + index) * l2_sets
                for index in range(burst)
            )
        else:
            # Tiny distinct prefixes separated by duplicates.
            span = rng.randrange(2, 32)
            start = rng.randrange(0, 2048)
            pages.extend(start + index for index in range(span))
            pages.append(pages[-1])
    return Trace(name=f"diff-adversarial-{seed}", pages=pages[:length],
                 pattern_type=PatternType.REPETITIVE_THRASHING)


#: Name → generator, in report order.
GENERATORS: "dict[str, Callable[..., Trace]]" = {
    "phased": phased,
    "strided": strided,
    "pointer-chase": pointer_chase,
    "adversarial": adversarial,
}


def build(kind: str, seed: int, length: int = DEFAULT_LENGTH) -> Trace:
    """Build the ``kind`` generator's trace for ``seed``."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown diff-trace generator {kind!r}; "
            f"known: {', '.join(GENERATORS)}"
        ) from None
    return generator(seed, length)
