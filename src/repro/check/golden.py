"""Golden key-metrics snapshots for the differential harness.

``tests/diff/test_golden.py`` freezes the exact ``key_metrics()`` of
every policy on every :mod:`repro.check.difftraces` generator at 75%
and 50% memory-to-footprint ratios.  The differential matrix proves the
three simulator tiers agree *with each other*; the goldens pin what
they agree *on*, so a change that shifts all tiers in lockstep (a
semantic regression the differ is blind to) still fails loudly.

Snapshots live in ``tests/diff/golden/<generator>.json``.  After an
intentional semantic change, regenerate with::

    hpe-repro golden --update

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Sequence, Union

#: The one seed all golden traces derive from — changing it invalidates
#: every snapshot, so it is part of the frozen contract.
GOLDEN_SEED = 101

#: Episodes per golden trace; long enough for eviction chains and HPE
#: interval boundaries, short enough that the full sweep stays quick.
GOLDEN_LENGTH = 2048

#: Memory-to-footprint ratios, matching the paper's headline operating
#: points.
GOLDEN_RATES = (0.75, 0.5)


def default_golden_dir() -> Path:
    """``tests/diff/golden`` for a source checkout of this repo."""
    return Path(__file__).resolve().parents[3] / "tests" / "diff" / "golden"


def _policies() -> "tuple[str, ...]":
    from repro.experiments.runner import POLICY_NAMES

    return POLICY_NAMES


def golden_spec(kind: str, policy: str, rate: float) -> "Any":
    """The :class:`~repro.scenarios.spec.ScenarioSpec` of one golden cell.

    Goldens are ``family="golden"`` scenarios: the generator name is the
    workload and the trace length travels in ``params``, so the snapshot
    identity is derived from the same canonical form as every cache
    fingerprint and run id.  A canonical-form or schema change therefore
    fails the golden check loudly (``spec_digest`` mismatch) instead of
    silently comparing against snapshots of a different identity regime.
    """
    from repro.scenarios.spec import GOLDEN_FAMILY, ScenarioSpec

    return ScenarioSpec(
        workload=kind,
        policy=policy,
        rate=rate,
        seed=GOLDEN_SEED,
        family=GOLDEN_FAMILY,
        params=(("length", GOLDEN_LENGTH),),
    )


def compute_golden(
    kinds: "Optional[Sequence[str]]" = None,
) -> "dict[str, dict[str, Any]]":
    """Run the golden matrix and return ``{generator: snapshot}``.

    Each snapshot records the generator parameters alongside the
    metrics so a stale snapshot (older seed/length) is detected as a
    mismatch rather than silently compared against the wrong trace.
    """
    from repro.check.diffrun import run_level
    from repro.check.difftraces import GENERATORS, build
    from repro.sim.config import resolve_fastpath_level

    level = resolve_fastpath_level(None)
    snapshots: "dict[str, dict[str, Any]]" = {}
    for kind in kinds if kinds is not None else GENERATORS:
        trace = build(kind, GOLDEN_SEED, GOLDEN_LENGTH)
        entries: "dict[str, Any]" = {}
        spec_digests: "dict[str, str]" = {}
        for policy in _policies():
            for rate in GOLDEN_RATES:
                capacity = max(8, int(trace.footprint_pages * rate))
                run = run_level(trace.pages, policy, capacity, level,
                                workload_name=trace.name)
                key = f"{policy}@{rate}"
                entries[key] = run.metrics
                spec_digests[key] = golden_spec(kind, policy, rate).digest()
        snapshots[kind] = {
            "seed": GOLDEN_SEED,
            "length": GOLDEN_LENGTH,
            "footprint_pages": trace.footprint_pages,
            "spec_digests": spec_digests,
            "entries": entries,
        }
    return snapshots


def write_golden(
    directory: "Optional[Union[str, Path]]" = None,
    kinds: "Optional[Sequence[str]]" = None,
) -> "list[Path]":
    """Regenerate the snapshot files (``hpe-repro golden --update``)."""
    directory = Path(directory) if directory is not None \
        else default_golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for kind, snapshot in compute_golden(kinds).items():
        path = directory / f"{kind}.json"
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        written.append(path)
    return written


def check_golden(
    directory: "Optional[Union[str, Path]]" = None,
    kinds: "Optional[Sequence[str]]" = None,
) -> "list[str]":
    """Compare a fresh run against the snapshots; return mismatches."""
    directory = Path(directory) if directory is not None \
        else default_golden_dir()
    problems: "list[str]" = []
    fresh = compute_golden(kinds)
    for kind, snapshot in fresh.items():
        path = directory / f"{kind}.json"
        if not path.is_file():
            problems.append(f"{kind}: missing snapshot {path}")
            continue
        with open(path, encoding="ascii") as stream:
            expected = json.load(stream)
        for meta in ("seed", "length", "footprint_pages", "spec_digests"):
            if expected.get(meta) != snapshot[meta]:
                problems.append(
                    f"{kind}: snapshot {meta}={expected.get(meta)!r} "
                    f"but current harness produces {snapshot[meta]!r} "
                    "(regenerate with: hpe-repro golden --update)"
                )
        want = expected.get("entries", {})
        have = snapshot["entries"]
        for key in sorted(set(want) | set(have)):
            if key not in want:
                problems.append(f"{kind}/{key}: not in snapshot")
            elif key not in have:
                problems.append(f"{kind}/{key}: snapshot-only entry")
            elif want[key] != have[key]:
                fields = sorted(
                    field
                    for field in set(want[key]) | set(have[key])
                    if want[key].get(field) != have[key].get(field)
                )
                problems.append(
                    f"{kind}/{key}: metrics differ on {', '.join(fields)}"
                )
    return problems
