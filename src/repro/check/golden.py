"""Golden key-metrics snapshots for the differential harness.

``tests/diff/test_golden.py`` freezes the exact ``key_metrics()`` of
every policy on every :mod:`repro.check.difftraces` generator at 75%
and 50% memory-to-footprint ratios.  The differential matrix proves the
three simulator tiers agree *with each other*; the goldens pin what
they agree *on*, so a change that shifts all tiers in lockstep (a
semantic regression the differ is blind to) still fails loudly.

Snapshots live in ``tests/diff/golden/<generator>.json``.  After an
intentional semantic change, regenerate with::

    hpe-repro golden --update

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Sequence, Union

#: The one seed all golden traces derive from — changing it invalidates
#: every snapshot, so it is part of the frozen contract.
GOLDEN_SEED = 101

#: Episodes per golden trace; long enough for eviction chains and HPE
#: interval boundaries, short enough that the full sweep stays quick.
GOLDEN_LENGTH = 2048

#: Memory-to-footprint ratios, matching the paper's headline operating
#: points.
GOLDEN_RATES = (0.75, 0.5)


#: Policy orderings the paper's claims rest on, checked as *trends* at
#: the relaxed tier: ``(better, worse)`` — "better" must stay cheaper.
GOLDEN_TREND_PAIRS = (("hpe", "lru"), ("hpe", "random"))

#: Paper-suite applications added to the trend matrix.  The synthetic
#: diff generators exercise the kernels but show no decisive policy
#: gaps at golden length; the paper traces are where HPE actually beats
#: LRU, so they carry the non-vacuous half of the trend gate.
TREND_PAPER_APPS = ("BFS", "STN")

#: Scale factor for paper-suite trend traces (keeps the sweep quick).
TREND_PAPER_SCALE = 0.5

#: Metrics a golden trend is evaluated on (flattened ``driver.*`` form).
GOLDEN_TREND_METRICS = ("cycles", "driver.faults")

#: The relaxed tier golden trends gate (DESIGN §13).
TREND_LEVEL = 3

#: The bit-exact tier trend references are computed at.
TREND_REFERENCE_LEVEL = 1


def default_golden_dir() -> Path:
    """``tests/diff/golden`` for a source checkout of this repo."""
    return Path(__file__).resolve().parents[3] / "tests" / "diff" / "golden"


def default_trend_dir() -> Path:
    """``tests/diff/golden_trends`` for a source checkout of this repo."""
    return Path(__file__).resolve().parents[3] / "tests" / "diff" \
        / "golden_trends"


def _policies() -> "tuple[str, ...]":
    from repro.experiments.runner import POLICY_NAMES

    return POLICY_NAMES


def golden_spec(kind: str, policy: str, rate: float) -> "Any":
    """The :class:`~repro.scenarios.spec.ScenarioSpec` of one golden cell.

    Goldens are ``family="golden"`` scenarios: the generator name is the
    workload and the trace length travels in ``params``, so the snapshot
    identity is derived from the same canonical form as every cache
    fingerprint and run id.  A canonical-form or schema change therefore
    fails the golden check loudly (``spec_digest`` mismatch) instead of
    silently comparing against snapshots of a different identity regime.
    """
    from repro.scenarios.spec import GOLDEN_FAMILY, ScenarioSpec

    return ScenarioSpec(
        workload=kind,
        policy=policy,
        rate=rate,
        seed=GOLDEN_SEED,
        family=GOLDEN_FAMILY,
        params=(("length", GOLDEN_LENGTH),),
    )


def compute_golden(
    kinds: "Optional[Sequence[str]]" = None,
) -> "dict[str, dict[str, Any]]":
    """Run the golden matrix and return ``{generator: snapshot}``.

    Each snapshot records the generator parameters alongside the
    metrics so a stale snapshot (older seed/length) is detected as a
    mismatch rather than silently compared against the wrong trace.
    """
    from repro.check.diffrun import run_level
    from repro.check.difftraces import GENERATORS, build
    from repro.sim.config import resolve_fastpath_level

    level = resolve_fastpath_level(None)
    snapshots: "dict[str, dict[str, Any]]" = {}
    for kind in kinds if kinds is not None else GENERATORS:
        trace = build(kind, GOLDEN_SEED, GOLDEN_LENGTH)
        entries: "dict[str, Any]" = {}
        spec_digests: "dict[str, str]" = {}
        for policy in _policies():
            for rate in GOLDEN_RATES:
                capacity = max(8, int(trace.footprint_pages * rate))
                run = run_level(trace.pages, policy, capacity, level,
                                workload_name=trace.name)
                key = f"{policy}@{rate}"
                entries[key] = run.metrics
                spec_digests[key] = golden_spec(kind, policy, rate).digest()
        snapshots[kind] = {
            "seed": GOLDEN_SEED,
            "length": GOLDEN_LENGTH,
            "footprint_pages": trace.footprint_pages,
            "spec_digests": spec_digests,
            "entries": entries,
        }
    return snapshots


def write_golden(
    directory: "Optional[Union[str, Path]]" = None,
    kinds: "Optional[Sequence[str]]" = None,
) -> "list[Path]":
    """Regenerate the snapshot files (``hpe-repro golden --update``)."""
    directory = Path(directory) if directory is not None \
        else default_golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for kind, snapshot in compute_golden(kinds).items():
        path = directory / f"{kind}.json"
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        written.append(path)
    return written


def golden_trend_spec(kind: str, policy: str, rate: float) -> "Any":
    """Spec of one relaxed-tier trend cell (``fastpath=3`` in identity).

    Unlike :func:`golden_spec`, the relaxed tier participates in the
    digest: tier-3 metrics may drift within the §13 tolerances, so a
    trend snapshot must never share identity with an exact golden.
    ``kind`` is either a diff-generator name or ``paper-<APP>``.
    """
    from repro.scenarios.spec import (
        GOLDEN_FAMILY, PAPER_FAMILY, ScenarioSpec,
    )

    if kind.startswith("paper-"):
        return ScenarioSpec(
            workload=kind[len("paper-"):],
            policy=policy,
            rate=rate,
            scale=TREND_PAPER_SCALE,
            family=PAPER_FAMILY,
            fastpath=TREND_LEVEL,
        )
    return ScenarioSpec(
        workload=kind,
        policy=policy,
        rate=rate,
        seed=GOLDEN_SEED,
        family=GOLDEN_FAMILY,
        fastpath=TREND_LEVEL,
        params=(("length", GOLDEN_LENGTH),),
    )


def trend_kinds() -> "list[str]":
    """Every trend-snapshot kind: diff generators + ``paper-<APP>``."""
    from repro.check.difftraces import GENERATORS

    return list(GENERATORS) + [f"paper-{app}" for app in TREND_PAPER_APPS]


def _trend_trace(kind: str) -> "Any":
    """Build the trace behind one trend kind (generator or paper app)."""
    from repro.check.difftraces import build

    if kind.startswith("paper-"):
        from repro.workloads.suite import get_application

        return get_application(kind[len("paper-"):]).build(
            scale=TREND_PAPER_SCALE
        )
    return build(kind, GOLDEN_SEED, GOLDEN_LENGTH)


def compute_golden_trends(
    kinds: "Optional[Sequence[str]]" = None,
) -> "dict[str, dict[str, Any]]":
    """Evaluate the trend matrix and return ``{kind: snapshot}``.

    For every kind × rate × ``(better, worse)`` pair × metric the
    snapshot records the **bit-exact reference values** (tier 1), whether
    the ordering is *decisive* there (the gap exceeds what the §13
    tolerances could legitimately move), and whether the relaxed tier
    preserves it.  The exact reference values make staleness loud: a
    semantic change shifts them and the snapshot mismatches before any
    trend comparison happens.
    """
    from repro.check.diffrun import (
        RELAXED_TOLERANCES, Tolerance, flatten_metrics, run_level,
    )

    snapshots: "dict[str, dict[str, Any]]" = {}
    for kind in kinds if kinds is not None else trend_kinds():
        trace = _trend_trace(kind)
        cells: "dict[str, Any]" = {}
        spec_digests: "dict[str, str]" = {}
        for rate in GOLDEN_RATES:
            capacity = max(8, int(trace.footprint_pages * rate))
            policies = sorted({p for pair in GOLDEN_TREND_PAIRS
                               for p in pair})
            flat: "dict[tuple[str, int], dict[str, Any]]" = {}
            for policy in policies:
                spec_digests[f"{policy}@{rate}"] = \
                    golden_trend_spec(kind, policy, rate).digest()
                for level in (TREND_REFERENCE_LEVEL, TREND_LEVEL):
                    run = run_level(trace.pages, policy, capacity, level,
                                    workload_name=trace.name)
                    flat[(policy, level)] = flatten_metrics(run.metrics)
            for better, worse in GOLDEN_TREND_PAIRS:
                for metric in GOLDEN_TREND_METRICS:
                    tolerance = RELAXED_TOLERANCES.get(
                        metric, Tolerance(rtol=0.05)
                    )
                    ref_b = flat[(better, TREND_REFERENCE_LEVEL)][metric]
                    ref_w = flat[(worse, TREND_REFERENCE_LEVEL)][metric]
                    rel_b = flat[(better, TREND_LEVEL)][metric]
                    rel_w = flat[(worse, TREND_LEVEL)][metric]
                    margin = max(
                        tolerance.rtol * (abs(ref_b) + abs(ref_w)),
                        2 * tolerance.atol,
                    )
                    decisive = ref_w - ref_b > margin
                    key = f"{better}<{worse}:{metric}@{rate}"
                    cells[key] = {
                        "reference": {better: ref_b, worse: ref_w},
                        "relaxed": {better: rel_b, worse: rel_w},
                        "decisive": decisive,
                        "holds": (not decisive) or rel_b < rel_w,
                    }
        snapshots[kind] = {
            "seed": GOLDEN_SEED,
            "length": len(trace.pages),
            "footprint_pages": trace.footprint_pages,
            "reference_level": TREND_REFERENCE_LEVEL,
            "relaxed_level": TREND_LEVEL,
            "spec_digests": spec_digests,
            "trends": cells,
        }
    return snapshots


def write_golden_trends(
    directory: "Optional[Union[str, Path]]" = None,
    kinds: "Optional[Sequence[str]]" = None,
) -> "list[Path]":
    """Regenerate trend snapshots (``hpe-repro golden --update``)."""
    directory = Path(directory) if directory is not None \
        else default_trend_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for kind, snapshot in compute_golden_trends(kinds).items():
        path = directory / f"{kind}.json"
        path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        written.append(path)
    return written


def check_golden_trends(
    directory: "Optional[Union[str, Path]]" = None,
    kinds: "Optional[Sequence[str]]" = None,
) -> "list[str]":
    """Re-run the trend matrix against the snapshots; return problems.

    Three failure classes, from stalest to most serious:

    * snapshot metadata or *bit-exact reference values* moved — the
      harness changed; regenerate and review;
    * a recorded ``decisive`` ordering no longer **holds** at the
      relaxed tier — the v3 kernel broke a paper-level claim;
    * the snapshot itself records ``holds: false`` — it should never
      have been committed.
    """
    directory = Path(directory) if directory is not None \
        else default_trend_dir()
    problems: "list[str]" = []
    fresh = compute_golden_trends(kinds)
    for kind, snapshot in fresh.items():
        path = directory / f"{kind}.json"
        if not path.is_file():
            problems.append(f"{kind}: missing trend snapshot {path}")
            continue
        with open(path, encoding="ascii") as stream:
            expected = json.load(stream)
        for meta in ("seed", "length", "footprint_pages",
                     "reference_level", "relaxed_level", "spec_digests"):
            if expected.get(meta) != snapshot[meta]:
                problems.append(
                    f"{kind}: trend snapshot {meta}={expected.get(meta)!r} "
                    f"but current harness produces {snapshot[meta]!r} "
                    "(regenerate with: hpe-repro golden --update)"
                )
        want = expected.get("trends", {})
        have = snapshot["trends"]
        for key in sorted(set(want) | set(have)):
            if key not in want:
                problems.append(f"{kind}/{key}: not in trend snapshot")
                continue
            if key not in have:
                problems.append(f"{kind}/{key}: snapshot-only trend")
                continue
            if want[key].get("reference") != have[key]["reference"]:
                problems.append(
                    f"{kind}/{key}: bit-exact reference values moved "
                    f"({have[key]['reference']!r} vs snapshot "
                    f"{want[key].get('reference')!r})"
                )
            if not want[key].get("holds", True):
                problems.append(
                    f"{kind}/{key}: snapshot records a broken trend "
                    "(holds=false must never be committed)"
                )
            if want[key].get("decisive") and not have[key]["holds"]:
                relaxed = have[key]["relaxed"]
                problems.append(
                    f"{kind}/{key}: decisive ordering flipped at the "
                    f"relaxed tier ({relaxed!r})"
                )
    return problems


def check_golden(
    directory: "Optional[Union[str, Path]]" = None,
    kinds: "Optional[Sequence[str]]" = None,
) -> "list[str]":
    """Compare a fresh run against the snapshots; return mismatches."""
    directory = Path(directory) if directory is not None \
        else default_golden_dir()
    problems: "list[str]" = []
    fresh = compute_golden(kinds)
    for kind, snapshot in fresh.items():
        path = directory / f"{kind}.json"
        if not path.is_file():
            problems.append(f"{kind}: missing snapshot {path}")
            continue
        with open(path, encoding="ascii") as stream:
            expected = json.load(stream)
        for meta in ("seed", "length", "footprint_pages", "spec_digests"):
            if expected.get(meta) != snapshot[meta]:
                problems.append(
                    f"{kind}: snapshot {meta}={expected.get(meta)!r} "
                    f"but current harness produces {snapshot[meta]!r} "
                    "(regenerate with: hpe-repro golden --update)"
                )
        want = expected.get("entries", {})
        have = snapshot["entries"]
        for key in sorted(set(want) | set(have)):
            if key not in want:
                problems.append(f"{kind}/{key}: not in snapshot")
            elif key not in have:
                problems.append(f"{kind}/{key}: snapshot-only entry")
            elif want[key] != have[key]:
                fields = sorted(
                    field
                    for field in set(want[key]) | set(have[key])
                    if want[key].get(field) != have[key].get(field)
                )
                problems.append(
                    f"{kind}/{key}: metrics differ on {', '.join(fields)}"
                )
    return problems
