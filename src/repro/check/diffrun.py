"""Differential execution: one run, four loops, bounded drift.

The simulator has four inner loops — the reference oracle (tier 0),
the flattened v1 loop (tier 1), the vectorized batch kernel (tier 2,
:mod:`repro.sim.fastpath2`), and the relaxed *metric-equivalent*
kernel (tier 3, :mod:`repro.sim.fastpath3`).  This module replays the
same trace through any subset of them and reports every observable
difference:

* ``key_metrics()`` (the determinism-digest payload);
* the **eviction sequence** (victim pages in eviction order — batching
  must not reorder evictions, DESIGN.md §9);
* final structural state: frame map, valid page-table entries, and the
  exact per-set LRU order of every TLB;
* optionally the **observation event stream** (observed runs are not
  batch-eligible, so tier 2 must fall back to the v1 loop and still
  produce the identical stream).

Tiers 0–2 are compared for **equality** (:func:`compare_levels`).
Tier 3 is compared under the declared §13 tolerance table instead
(:func:`compare_relaxed`): a fixed set of identity metrics must stay
exact, every drifting metric must land inside its
:class:`Tolerance`, and the executed tier is checked so a silent
fallback can never masquerade as a passing relaxed run.
:func:`check_trend` adds the golden *trend* gate — a policy ordering
that is decisive at the reference tier (HPE beats LRU, say) must
survive the relaxation.

``tests/diff`` drives this against the seeded generators in
:mod:`repro.check.difftraces`; ``scripts/_diffcheck.py``-style ad-hoc
sweeps can call :func:`compare_levels` directly.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.policies.lru import LRUPolicy
from repro.sim.engine import UVMSimulator
from repro.sim.results import SimulationResult


class _RecordingChain(OrderedDict):
    """An LRU chain that logs left-end pops (= LRU victim selections).

    The batch kernel inlines the stock LRU policy's victim pop
    (``_chain.popitem(last=False)``) without calling
    ``select_victim``, so recording at the chain level sees every
    eviction on every tier through the same probe.
    """

    def __init__(self, log: "list[int]") -> None:
        super().__init__()
        self.log = log

    def popitem(  # type: ignore[override]
        self, last: bool = True
    ) -> "tuple[int, Any]":
        item = OrderedDict.popitem(self, last)
        if not last:
            self.log.append(item[0])
        return item


class MemoryEventSink:
    """Duck-typed stand-in for ``JSONLEventTrace`` collecting in memory."""

    def __init__(self) -> None:
        self.events: "list[tuple[str, tuple]]" = []

    def emit(self, event_type: str, **fields: object) -> None:
        self.events.append((event_type, tuple(sorted(fields.items()))))

    def close(self) -> None:
        pass


@dataclass
class LevelRun:
    """Everything observable from one tier's replay."""

    level: int
    metrics: "dict[str, Any]"
    evictions: "list[int]"
    frame_map: "dict[int, int]"
    page_table: "dict[int, tuple[int, int, int]]"
    tlb_orders: "list[tuple[int, ...]]"
    events: "Optional[list[tuple[str, tuple]]]" = None
    result: Optional[SimulationResult] = None

    @property
    def executed_tier(self) -> Optional[int]:
        """The tier that actually replayed the trace, if recorded.

        ``None`` when the engine predates the ``extras["fastpath"]``
        record (or the result was not captured); otherwise the executed
        level after any eligibility fallback — compare against
        :attr:`level` to detect a silent downgrade.
        """
        if self.result is None:
            return None
        record = self.result.extras.get("fastpath")
        if not isinstance(record, dict):
            return None
        executed = record.get("executed")
        return int(executed) if executed is not None else None


@dataclass
class DiffReport:
    """Comparison of one trace across tiers; empty ``mismatches`` = ok."""

    policy: str
    capacity: int
    runs: "list[LevelRun]" = field(default_factory=list)
    mismatches: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _structural_state(sim: UVMSimulator) -> tuple:
    """(frame map, valid PTEs, per-set TLB orders) after a run.

    Invalid page-table tombstones are excluded: the v2 kernel deletes
    and reuses them (observably identical — the collector reads
    counters, never entry identity), so only *valid* translations are
    part of the equivalence contract.
    """
    frame_map = dict(sim.frame_pool._frame_of_page)
    page_table = {
        page: (entry.frame, entry.faulted_at, entry.walk_hits)
        for page, entry in sim.page_table._entries.items()
        if entry.valid
    }
    orders: "list[tuple[int, ...]]" = []
    for tlb in [*sim.hierarchy.l1_tlbs, sim.hierarchy.l2_tlb]:
        for entries in tlb._sets:
            orders.append(tuple(entries))
    return frame_map, page_table, orders


def run_level(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    level: int,
    *,
    seed: int = 7,
    observe: bool = False,
    sanitize: bool = False,
    workload_name: str = "diff",
) -> LevelRun:
    """Replay ``pages`` once at ``level`` and capture every observable."""
    from repro.experiments.runner import make_policy
    from repro.obs import Observation

    policy = make_policy(policy_name, capacity, seed=seed)
    eviction_log: "list[int]" = []
    if type(policy) is LRUPolicy:
        # Chain-level probe: sees both select_victim and the kernel's
        # inlined pop, without perturbing the exact-type specialization.
        policy._chain = _RecordingChain(eviction_log)
    else:
        original_select = policy.select_victim

        def recording_select() -> int:
            victim = original_select()
            eviction_log.append(victim)
            return victim

        policy.select_victim = recording_select  # type: ignore[method-assign]
    sink = MemoryEventSink() if observe else None
    observation = Observation(trace=sink) if observe else None  # type: ignore[arg-type]
    simulator = UVMSimulator(policy, capacity, obs=observation,
                             sanitize=sanitize)
    result = simulator.run(list(pages), workload_name=workload_name,
                           fast=level)
    frame_map, page_table, orders = _structural_state(simulator)
    return LevelRun(
        level=level,
        metrics=result.key_metrics(),
        evictions=eviction_log,
        frame_map=frame_map,
        page_table=page_table,
        tlb_orders=orders,
        events=sink.events if sink is not None else None,
        result=result,
    )


def compare_levels(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    *,
    levels: Sequence[int] = (0, 1, 2),
    seed: int = 7,
    observe: bool = False,
    sanitize: bool = False,
    workload_name: str = "diff",
) -> DiffReport:
    """Replay at each tier and diff every observable against tier 0."""
    report = DiffReport(policy=policy_name, capacity=capacity)
    for level in levels:
        report.runs.append(run_level(
            pages, policy_name, capacity, level,
            seed=seed, observe=observe, sanitize=sanitize,
            workload_name=workload_name,
        ))
    reference = report.runs[0]
    for run in report.runs[1:]:
        tag = f"level {run.level} vs {reference.level} [{policy_name}]"
        if run.metrics != reference.metrics:
            diff_keys = sorted(
                key
                for key in set(run.metrics) | set(reference.metrics)
                if run.metrics.get(key) != reference.metrics.get(key)
            )
            report.mismatches.append(f"{tag}: key_metrics differ on "
                                     f"{', '.join(diff_keys)}")
        if run.evictions != reference.evictions:
            where = next(
                (index for index, (a, b) in
                 enumerate(zip(run.evictions, reference.evictions))
                 if a != b),
                min(len(run.evictions), len(reference.evictions)),
            )
            report.mismatches.append(
                f"{tag}: eviction sequences diverge at index {where} "
                f"(lengths {len(run.evictions)} vs "
                f"{len(reference.evictions)})"
            )
        if run.frame_map != reference.frame_map:
            report.mismatches.append(f"{tag}: final frame maps differ")
        if run.page_table != reference.page_table:
            report.mismatches.append(f"{tag}: valid page-table entries "
                                     "differ")
        if run.tlb_orders != reference.tlb_orders:
            report.mismatches.append(f"{tag}: TLB set contents/order "
                                     "differ")
        if run.events != reference.events:
            report.mismatches.append(f"{tag}: observation event streams "
                                     "differ")
    return report


# --- tolerance-gated comparison for the relaxed tier ---------------------


@dataclass(frozen=True)
class Tolerance:
    """Allowed drift for one metric: relative bound with an absolute floor.

    A drift passes when ``|actual - reference|`` is at most
    ``max(atol, rtol * |reference|)``.  The absolute floor keeps
    small-base metrics honest: a walker-hit count of 2 vs 4 is 100%
    relative drift but is noise, while the same ratio on a count of
    40 000 is a real divergence the relative bound catches.
    """

    rtol: float
    atol: float = 0.0

    def allows(self, actual: float, reference: float) -> bool:
        return abs(actual - reference) <= max(
            self.atol, self.rtol * abs(reference)
        )


#: ``key_metrics()`` entries that must stay **exact** at every tier,
#: including the relaxed one (DESIGN §13): run identity, trace shape,
#: and the eviction-independent counters.
EXACT_METRICS: "tuple[str, ...]" = (
    "policy", "workload", "capacity_pages", "footprint_pages",
    "trace_length", "instructions",
)

#: Driver counters that must stay exact (first-touch classification and
#: prefetch issue do not depend on victim choice).
EXACT_DRIVER_METRICS: "tuple[str, ...]" = (
    "compulsory_faults", "prefetches",
)

#: The §13 tolerance table for tier 3, keyed by flattened metric name
#: (``driver.*`` for the driver block).  Calibrated against the worst
#: measured drift over the full generator × policy × seed × rate matrix
#: (see DESIGN §13.3) with roughly 2× relative headroom; the absolute
#: floors absorb small-base noise (counts in the tens).
RELAXED_TOLERANCES: "dict[str, Tolerance]" = {
    "cycles": Tolerance(rtol=0.06),
    "l1_tlb_hits": Tolerance(rtol=0.12, atol=64),
    "l2_tlb_hits": Tolerance(rtol=0.12, atol=64),
    "walker_hits": Tolerance(rtol=0.10, atol=64),
    "driver.faults": Tolerance(rtol=0.06, atol=8),
    # Loosest entry by design: whether a fault is *capacity* depends on
    # whether the page was ever evicted, so a reordered victim turns a
    # never-faulting page into a refaulting one — total faults stay
    # within 6% but their classification moves the most.
    "driver.capacity_faults": Tolerance(rtol=0.20, atol=48),
    "driver.evictions": Tolerance(rtol=0.10, atol=16),
    "driver.bytes_migrated_in": Tolerance(rtol=0.06, atol=65536),
    "driver.bytes_evicted_out": Tolerance(rtol=0.10, atol=65536),
}


def flatten_metrics(metrics: "dict[str, Any]") -> "dict[str, Any]":
    """``key_metrics()`` with the ``driver`` block inlined as ``driver.*``."""
    flat: "dict[str, Any]" = {}
    for key, value in metrics.items():
        if key == "driver" and isinstance(value, dict):
            for sub, subvalue in value.items():
                flat[f"driver.{sub}"] = subvalue
        else:
            flat[key] = value
    return flat


def relaxed_drift(
    reference: "dict[str, Any]", relaxed: "dict[str, Any]"
) -> "dict[str, float]":
    """Per-metric relative drift of ``relaxed`` against ``reference``.

    Both arguments are ``key_metrics()`` dicts; only the metrics in
    :data:`RELAXED_TOLERANCES` are reported.  The denominator is
    floored at 1 so zero-reference cells stay finite.
    """
    ref_flat = flatten_metrics(reference)
    rel_flat = flatten_metrics(relaxed)
    return {
        key: abs(rel_flat[key] - ref_flat[key]) / max(1.0, abs(ref_flat[key]))
        for key in RELAXED_TOLERANCES
    }


def compare_relaxed(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    *,
    reference_level: int = 1,
    relaxed_level: int = 3,
    tolerances: "Optional[dict[str, Tolerance]]" = None,
    expect_executed: Optional[int] = 3,
    seed: int = 7,
    workload_name: str = "diff",
) -> DiffReport:
    """Gate the relaxed tier against a bit-exact tier under the §13 table.

    Three checks, in order of severity:

    1. every metric in :data:`EXACT_METRICS` / :data:`EXACT_DRIVER_METRICS`
       must be **equal** — these are exact even under relaxation;
    2. every metric in the tolerance table must drift within its
       :class:`Tolerance`;
    3. when ``expect_executed`` is not ``None``, the relaxed run must
       report that executed tier in ``extras["fastpath"]`` — a silent
       eligibility fallback to a bit-exact tier would otherwise pass
       the drift gate vacuously and hide that nothing was tested.

    Structural state and eviction sequences are deliberately **not**
    compared: the relaxed kernel's victim batching is allowed to change
    both (that is the §13 contract), and HPE's batched drain bypasses
    ``select_victim`` so its eviction log is empty at tier 3.
    """
    table = RELAXED_TOLERANCES if tolerances is None else tolerances
    report = DiffReport(policy=policy_name, capacity=capacity)
    reference = run_level(pages, policy_name, capacity, reference_level,
                          seed=seed, workload_name=workload_name)
    relaxed = run_level(pages, policy_name, capacity, relaxed_level,
                        seed=seed, workload_name=workload_name)
    report.runs = [reference, relaxed]
    tag = f"level {relaxed_level} vs {reference_level} [{policy_name}]"
    if expect_executed is not None:
        executed = relaxed.executed_tier
        if executed != expect_executed:
            report.mismatches.append(
                f"{tag}: executed tier {executed} != expected "
                f"{expect_executed} (silent fallback)"
            )
    ref_flat = flatten_metrics(reference.metrics)
    rel_flat = flatten_metrics(relaxed.metrics)
    for key in EXACT_METRICS:
        if ref_flat.get(key) != rel_flat.get(key):
            report.mismatches.append(
                f"{tag}: exact metric {key} differs "
                f"({rel_flat.get(key)!r} != {ref_flat.get(key)!r})"
            )
    for sub in EXACT_DRIVER_METRICS:
        key = f"driver.{sub}"
        if ref_flat.get(key) != rel_flat.get(key):
            report.mismatches.append(
                f"{tag}: exact metric {key} differs "
                f"({rel_flat.get(key)!r} != {ref_flat.get(key)!r})"
            )
    for key, tolerance in sorted(table.items()):
        ref_value = ref_flat.get(key)
        rel_value = rel_flat.get(key)
        if ref_value is None or rel_value is None:
            report.mismatches.append(f"{tag}: metric {key} missing")
            continue
        if not tolerance.allows(rel_value, ref_value):
            drift = abs(rel_value - ref_value) / max(1.0, abs(ref_value))
            report.mismatches.append(
                f"{tag}: {key} drifted {drift:.4f} "
                f"({rel_value} vs {ref_value}, rtol={tolerance.rtol}, "
                f"atol={tolerance.atol})"
            )
    return report


def check_trend(
    pages: Sequence[int],
    capacity: int,
    *,
    metric: str = "cycles",
    better: str = "hpe",
    worse: str = "lru",
    relaxed_level: int = 3,
    reference_level: int = 1,
    seed: int = 7,
    workload_name: str = "diff",
) -> Optional[str]:
    """Does a decisive policy ordering survive the relaxed tier?

    Runs ``better`` and ``worse`` at both tiers and, **iff** the
    reference-tier ordering is decisive (the gap exceeds the metric's
    relative tolerance, so tier drift cannot legitimately flip it),
    requires the relaxed tier to preserve it.  Returns ``None`` when the
    trend holds or the reference gap is inside the noise band, else a
    message describing the flip.  This is the qualitative half of the
    §13 gate: HPE must still beat LRU everywhere it beat it exactly.
    """
    tolerance = RELAXED_TOLERANCES.get(metric, Tolerance(rtol=0.05))
    values: "dict[tuple[str, int], float]" = {}
    for policy_name in (better, worse):
        for level in (reference_level, relaxed_level):
            run = run_level(pages, policy_name, capacity, level,
                            seed=seed, workload_name=workload_name)
            values[(policy_name, level)] = flatten_metrics(run.metrics)[metric]
    ref_better = values[(better, reference_level)]
    ref_worse = values[(worse, reference_level)]
    # Decisive = the gap survives worst-case drift on both sides.
    margin = tolerance.rtol * (abs(ref_better) + abs(ref_worse))
    if ref_worse - ref_better <= max(margin, 2 * tolerance.atol):
        return None
    rel_better = values[(better, relaxed_level)]
    rel_worse = values[(worse, relaxed_level)]
    if rel_better < rel_worse:
        return None
    return (
        f"trend flip on {metric}: {better} beat {worse} at tier "
        f"{reference_level} ({ref_better} < {ref_worse}) but not at tier "
        f"{relaxed_level} ({rel_better} >= {rel_worse})"
    )


# --- failure shrinking and the regression corpus -------------------------


def shrink_failure(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    *,
    levels: Sequence[int] = (0, 1, 2),
    seed: int = 7,
    still_fails: "Optional[Callable[[list[int]], bool]]" = None,
) -> "list[int]":
    """ddmin-lite: delete chunks while the tier mismatch reproduces.

    ``capacity`` stays **absolute** during shrinking — recomputing it
    from the shrinking trace's footprint would change the scenario under
    test and mask the bug.  The result is 1-minimal with respect to
    single-chunk deletion, which in practice collapses a 4096-episode
    trace to a few dozen episodes — small enough to read and to check
    in under :data:`CORPUS_DIR`-style directories.
    """
    if still_fails is None:
        def still_fails(candidate: "list[int]") -> bool:
            if not candidate:
                return False
            try:
                return not compare_levels(
                    candidate, policy_name, capacity,
                    levels=levels, seed=seed,
                ).ok
            except Exception:
                # A crash in any tier is also a reportable divergence.
                return True

    current = list(pages)
    if not still_fails(current):
        return current
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        removed_any = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and still_fails(candidate):
                current = candidate
                removed_any = True
            else:
                index += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk //= 2
    return current


def save_corpus_entry(
    directory: Union[str, Path],
    name: str,
    *,
    policy: str,
    capacity: int,
    pages: Sequence[int],
    description: str,
    seed: int = 7,
) -> Path:
    """Persist a shrunk repro so the mismatch stays fixed forever."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(
        {
            "name": name,
            "policy": policy,
            "capacity": capacity,
            "seed": seed,
            "description": description,
            "pages": list(pages),
        },
        indent=2,
    ) + "\n", encoding="ascii")
    return path


def iter_corpus(
    directory: Union[str, Path],
) -> "Iterator[dict[str, Any]]":
    """Yield every checked-in repro under ``directory`` (sorted)."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        with open(path, encoding="ascii") as stream:
            entry = json.load(stream)
        entry.setdefault("seed", 7)
        entry["_path"] = str(path)
        yield entry
