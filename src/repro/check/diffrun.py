"""Differential execution: one run, three equivalent loops, zero drift.

The simulator has three inner loops — the reference oracle (tier 0),
the flattened v1 loop (tier 1), and the vectorized batch kernel
(tier 2, :mod:`repro.sim.fastpath2`).  This module replays the same
trace through any subset of them and reports every observable
difference:

* ``key_metrics()`` (the determinism-digest payload);
* the **eviction sequence** (victim pages in eviction order — batching
  must not reorder evictions, DESIGN.md §9);
* final structural state: frame map, valid page-table entries, and the
  exact per-set LRU order of every TLB;
* optionally the **observation event stream** (observed runs are not
  batch-eligible, so tier 2 must fall back to the v1 loop and still
  produce the identical stream).

``tests/diff`` drives this against the seeded generators in
:mod:`repro.check.difftraces`; ``scripts/_diffcheck.py``-style ad-hoc
sweeps can call :func:`compare_levels` directly.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.policies.lru import LRUPolicy
from repro.sim.engine import UVMSimulator
from repro.sim.results import SimulationResult


class _RecordingChain(OrderedDict):
    """An LRU chain that logs left-end pops (= LRU victim selections).

    The batch kernel inlines the stock LRU policy's victim pop
    (``_chain.popitem(last=False)``) without calling
    ``select_victim``, so recording at the chain level sees every
    eviction on every tier through the same probe.
    """

    def __init__(self, log: "list[int]") -> None:
        super().__init__()
        self.log = log

    def popitem(  # type: ignore[override]
        self, last: bool = True
    ) -> "tuple[int, Any]":
        item = OrderedDict.popitem(self, last)
        if not last:
            self.log.append(item[0])
        return item


class MemoryEventSink:
    """Duck-typed stand-in for ``JSONLEventTrace`` collecting in memory."""

    def __init__(self) -> None:
        self.events: "list[tuple[str, tuple]]" = []

    def emit(self, event_type: str, **fields: object) -> None:
        self.events.append((event_type, tuple(sorted(fields.items()))))

    def close(self) -> None:
        pass


@dataclass
class LevelRun:
    """Everything observable from one tier's replay."""

    level: int
    metrics: "dict[str, Any]"
    evictions: "list[int]"
    frame_map: "dict[int, int]"
    page_table: "dict[int, tuple[int, int, int]]"
    tlb_orders: "list[tuple[int, ...]]"
    events: "Optional[list[tuple[str, tuple]]]" = None
    result: Optional[SimulationResult] = None


@dataclass
class DiffReport:
    """Comparison of one trace across tiers; empty ``mismatches`` = ok."""

    policy: str
    capacity: int
    runs: "list[LevelRun]" = field(default_factory=list)
    mismatches: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _structural_state(sim: UVMSimulator) -> tuple:
    """(frame map, valid PTEs, per-set TLB orders) after a run.

    Invalid page-table tombstones are excluded: the v2 kernel deletes
    and reuses them (observably identical — the collector reads
    counters, never entry identity), so only *valid* translations are
    part of the equivalence contract.
    """
    frame_map = dict(sim.frame_pool._frame_of_page)
    page_table = {
        page: (entry.frame, entry.faulted_at, entry.walk_hits)
        for page, entry in sim.page_table._entries.items()
        if entry.valid
    }
    orders: "list[tuple[int, ...]]" = []
    for tlb in [*sim.hierarchy.l1_tlbs, sim.hierarchy.l2_tlb]:
        for entries in tlb._sets:
            orders.append(tuple(entries))
    return frame_map, page_table, orders


def run_level(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    level: int,
    *,
    seed: int = 7,
    observe: bool = False,
    sanitize: bool = False,
    workload_name: str = "diff",
) -> LevelRun:
    """Replay ``pages`` once at ``level`` and capture every observable."""
    from repro.experiments.runner import make_policy
    from repro.obs import Observation

    policy = make_policy(policy_name, capacity, seed=seed)
    eviction_log: "list[int]" = []
    if type(policy) is LRUPolicy:
        # Chain-level probe: sees both select_victim and the kernel's
        # inlined pop, without perturbing the exact-type specialization.
        policy._chain = _RecordingChain(eviction_log)
    else:
        original_select = policy.select_victim

        def recording_select() -> int:
            victim = original_select()
            eviction_log.append(victim)
            return victim

        policy.select_victim = recording_select  # type: ignore[method-assign]
    sink = MemoryEventSink() if observe else None
    observation = Observation(trace=sink) if observe else None  # type: ignore[arg-type]
    simulator = UVMSimulator(policy, capacity, obs=observation,
                             sanitize=sanitize)
    result = simulator.run(list(pages), workload_name=workload_name,
                           fast=level)
    frame_map, page_table, orders = _structural_state(simulator)
    return LevelRun(
        level=level,
        metrics=result.key_metrics(),
        evictions=eviction_log,
        frame_map=frame_map,
        page_table=page_table,
        tlb_orders=orders,
        events=sink.events if sink is not None else None,
        result=result,
    )


def compare_levels(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    *,
    levels: Sequence[int] = (0, 1, 2),
    seed: int = 7,
    observe: bool = False,
    sanitize: bool = False,
    workload_name: str = "diff",
) -> DiffReport:
    """Replay at each tier and diff every observable against tier 0."""
    report = DiffReport(policy=policy_name, capacity=capacity)
    for level in levels:
        report.runs.append(run_level(
            pages, policy_name, capacity, level,
            seed=seed, observe=observe, sanitize=sanitize,
            workload_name=workload_name,
        ))
    reference = report.runs[0]
    for run in report.runs[1:]:
        tag = f"level {run.level} vs {reference.level} [{policy_name}]"
        if run.metrics != reference.metrics:
            diff_keys = sorted(
                key
                for key in set(run.metrics) | set(reference.metrics)
                if run.metrics.get(key) != reference.metrics.get(key)
            )
            report.mismatches.append(f"{tag}: key_metrics differ on "
                                     f"{', '.join(diff_keys)}")
        if run.evictions != reference.evictions:
            where = next(
                (index for index, (a, b) in
                 enumerate(zip(run.evictions, reference.evictions))
                 if a != b),
                min(len(run.evictions), len(reference.evictions)),
            )
            report.mismatches.append(
                f"{tag}: eviction sequences diverge at index {where} "
                f"(lengths {len(run.evictions)} vs "
                f"{len(reference.evictions)})"
            )
        if run.frame_map != reference.frame_map:
            report.mismatches.append(f"{tag}: final frame maps differ")
        if run.page_table != reference.page_table:
            report.mismatches.append(f"{tag}: valid page-table entries "
                                     "differ")
        if run.tlb_orders != reference.tlb_orders:
            report.mismatches.append(f"{tag}: TLB set contents/order "
                                     "differ")
        if run.events != reference.events:
            report.mismatches.append(f"{tag}: observation event streams "
                                     "differ")
    return report


# --- failure shrinking and the regression corpus -------------------------


def shrink_failure(
    pages: Sequence[int],
    policy_name: str,
    capacity: int,
    *,
    levels: Sequence[int] = (0, 1, 2),
    seed: int = 7,
    still_fails: "Optional[Callable[[list[int]], bool]]" = None,
) -> "list[int]":
    """ddmin-lite: delete chunks while the tier mismatch reproduces.

    ``capacity`` stays **absolute** during shrinking — recomputing it
    from the shrinking trace's footprint would change the scenario under
    test and mask the bug.  The result is 1-minimal with respect to
    single-chunk deletion, which in practice collapses a 4096-episode
    trace to a few dozen episodes — small enough to read and to check
    in under :data:`CORPUS_DIR`-style directories.
    """
    if still_fails is None:
        def still_fails(candidate: "list[int]") -> bool:
            if not candidate:
                return False
            try:
                return not compare_levels(
                    candidate, policy_name, capacity,
                    levels=levels, seed=seed,
                ).ok
            except Exception:
                # A crash in any tier is also a reportable divergence.
                return True

    current = list(pages)
    if not still_fails(current):
        return current
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        removed_any = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and still_fails(candidate):
                current = candidate
                removed_any = True
            else:
                index += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk //= 2
    return current


def save_corpus_entry(
    directory: Union[str, Path],
    name: str,
    *,
    policy: str,
    capacity: int,
    pages: Sequence[int],
    description: str,
    seed: int = 7,
) -> Path:
    """Persist a shrunk repro so the mismatch stays fixed forever."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(
        {
            "name": name,
            "policy": policy,
            "capacity": capacity,
            "seed": seed,
            "description": description,
            "pages": list(pages),
        },
        indent=2,
    ) + "\n", encoding="ascii")
    return path


def iter_corpus(
    directory: Union[str, Path],
) -> "Iterator[dict[str, Any]]":
    """Yield every checked-in repro under ``directory`` (sorted)."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        with open(path, encoding="ascii") as stream:
            entry = json.load(stream)
        entry.setdefault("seed", 7)
        entry["_path"] = str(path)
        yield entry
