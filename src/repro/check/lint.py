"""Custom AST lint pass (``repro lint``) — repo-specific correctness rules.

Generic linters cannot know that this simulator's reproducibility rests
on a handful of local conventions, so this pass encodes them directly:

======== ==============================================================
Code     Rule
======== ==============================================================
REP001   No unseeded randomness: ``random.Random()`` without a seed and
         module-level ``random.*`` calls (which share interpreter-global
         state) are forbidden; construct ``random.Random(seed)``.
REP002   No mutable default arguments (``def f(x=[])`` aliases one list
         across calls — use ``None`` + ``field(default_factory=...)``).
REP003   Every direct ``EvictionPolicy`` subclass must define both
         ``on_page_in`` and ``select_victim`` in its own body; relying
         on inheritance hides an incomplete policy until runtime.
REP004   Observability calls (``*.obs.emit`` / ``obs.emit``) must sit
         under the single ``is not None`` guard pattern so the fault
         path stays one pointer check when observation is off.
REP005   No float ``==`` / ``!=`` against float literals — metric
         comparisons must use tolerances or integer counters.
REP006   The pickled result-cache dataclasses (``SimulationResult``,
         ``DriverStats``, ``HIRStats``) are fingerprinted per
         ``CACHE_SCHEMA_VERSION``; changing their fields without
         bumping the version would let stale cache pickles load.
REP007   No raw atomic-rename plumbing (``os.replace`` / ``os.rename``
         / ``tempfile.mkstemp``) outside :mod:`repro.resil.atomic` —
         every persistent write must go through the one blessed
         fsync'd, checksummed implementation so crash-safety is
         provable in a single place.
REP008   No hand-rolled canonical identity strings: a ``"|".join``
         whose parts carry spec-identity prefixes (``schema=``,
         ``family=``, ``policy=``, ...) outside
         :mod:`repro.scenarios.spec` re-creates the three-hash drift
         bug that module exists to end — derive the hash from
         ``ScenarioSpec.canonical()`` / ``MatrixSpec.canonical()``.
REP009   Fault-path closure fingerprints (``hpe-repro flow
         staleness``): see :mod:`repro.check.flow.fingerprint`.
REP010   Spec-coverage taint — config/spec fields read on the fault
         path must enter ``ScenarioSpec.canonical()``: see
         :mod:`repro.check.flow.rules`.
REP011   No module-global rebinds reachable from supervised-worker
         entry points: see :mod:`repro.check.flow.rules`.
REP012   No wall-clock / ``os.environ`` / module-level-RNG /
         unordered-set-iteration hazards on the fault path: see
         :mod:`repro.check.flow.rules`.
REP013   No stale suppressions: a ``# noqa`` / ``# noqa: REPxxx``
         comment that suppresses nothing must be removed — dead
         suppressions hide the next real finding on that line.
======== ==============================================================

REP010–REP012 are whole-program rules computed by the flow analyzer
(:mod:`repro.check.flow`) and folded into :func:`run_lint` whenever the
linted files include the installed package.

Suppression: append ``# noqa`` or ``# noqa: REP00x`` to the flagged
line.  The pass is pure :mod:`ast` — nothing is imported or executed, so
it lints files that do not even import cleanly.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Module-level ``random.*`` functions that mutate the shared global RNG.
_GLOBAL_RNG_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "triangular",
}

#: Receiver name tails treated as observation handles for REP004.
_OBS_NAMES = {"obs", "_obs"}

#: ``name:annotation`` field fingerprints of the cache-pickled
#: dataclasses, keyed by the ``CACHE_SCHEMA_VERSION`` they belong to.
#: When a field list changes, the computed fingerprint stops matching
#: and REP006 fires until the version is bumped *and* this table gains
#: the new row — making "bump the schema version" a reviewable diff.
CACHE_FINGERPRINTS: dict[int, dict[str, str]] = {
    2: {
        "SimulationResult": "1f9e70077f183cbbacab3608373573f7",
        "DriverStats": "abc847a51741580eb5fc7f7a23e581a4",
        "HIRStats": "b9cb92bd0f4dace77a34b7ab5af36749",
    },
    # v3 changed prefetch-migration ordering, not any pickled shape.
    3: {
        "SimulationResult": "1f9e70077f183cbbacab3608373573f7",
        "DriverStats": "abc847a51741580eb5fc7f7a23e581a4",
        "HIRStats": "b9cb92bd0f4dace77a34b7ab5af36749",
    },
    # v4 moved the canonical identity string to ScenarioSpec.canonical()
    # (gained family/params fields); the pickled shapes are unchanged.
    4: {
        "SimulationResult": "1f9e70077f183cbbacab3608373573f7",
        "DriverStats": "abc847a51741580eb5fc7f7a23e581a4",
        "HIRStats": "b9cb92bd0f4dace77a34b7ab5af36749",
    },
}

#: Where the fingerprinted dataclasses live, relative to ``src/repro``.
_CACHED_DATACLASSES = {
    "SimulationResult": "sim/results.py",
    "DriverStats": "uvm/driver.py",
    "HIRStats": "core/hir.py",
}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.I)

#: A *directive* is a comment that starts with the noqa marker (the
#: suppression check above searches anywhere; the staleness audit must
#: not fire on prose that merely mentions "# noqa").
_NOQA_DIRECTIVE_RE = re.compile(
    r"^#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.I
)

#: Codes this pass owns; foreign codes (flake8's BLE001, F401, ...)
#: belong to other tools and are never audited for staleness.
_REP_CODE_RE = re.compile(r"^REP\d{3}$")

#: Rules not enforced in test files: tests assert exact float values on
#: deterministic outputs on purpose, construct observations whose
#: non-None-ness the test itself established, and may write scratch
#: files without the atomic-persistence discipline.
_RELAXED_IN_TESTS = {"REP004", "REP005", "REP007"}

#: Calls REP007 forbids outside the blessed module.
_RAW_PERSISTENCE_CALLS = {"os.replace", "os.rename", "tempfile.mkstemp"}

#: Key prefixes that mark a ``"|".join`` as a canonical identity string
#: for REP008.  Two or more of these in one join is the spec-string
#: idiom; one alone (e.g. a progress line) is not flagged.
_CANONICAL_PREFIXES = (
    "schema=", "journal-schema=", "cache-schema=", "family=",
    "workload=", "policy=", "policies=", "app=", "apps=", "rate=",
    "rates=",
)


def _is_test_file(path: str) -> bool:
    parts = Path(path).parts
    return "tests" in parts or Path(path).name.startswith("test_")


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _literal_prefix(node: ast.AST) -> str:
    """Leading literal text of a string constant or f-string, else ``""``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if (
        isinstance(node, ast.JoinedStr)
        and node.values
        and isinstance(node.values[0], ast.Constant)
        and isinstance(node.values[0].value, str)
    ):
        return node.values[0].value
    return ""


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` text of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id in {
            "list", "dict", "set", "bytearray", "defaultdict", "deque",
        }
    return False


def _terminates(body: Sequence[ast.stmt]) -> bool:
    """Does this block unconditionally leave the enclosing scope/loop?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _none_test(test: ast.expr, receiver: str) -> Optional[str]:
    """Classify ``test`` against ``receiver``: 'is-not', 'is', or None."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
        and _dotted(test.left) == receiver
    ):
        if isinstance(test.ops[0], ast.IsNot):
            return "is-not"
        if isinstance(test.ops[0], ast.Is):
            return "is"
    return None


class _FileLinter(ast.NodeVisitor):
    """Single-file REP001–REP005, REP007, REP008 visitor.

    The tree is walked once with a parent map so REP004 can climb from an
    ``emit`` call to its guarding ``if``.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: list[LintFinding] = []
        #: Findings silenced by a noqa — kept so the staleness audit
        #: and ``--statistics`` know what each suppression actually did.
        self.suppressed: list[LintFinding] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- reporting -------------------------------------------------------

    def _suppressed(self, line: int, code: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True  # bare "# noqa" silences everything on the line
        return code.upper() in {c.strip().upper() for c in codes.split(",")}

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        finding = LintFinding(
            code=code,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )
        if self._suppressed(line, code):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)

    # -- REP001: seeded randomness only ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = _dotted(node.func)
        if target == "random.Random" and not node.args and not node.keywords:
            self._report(
                node, "REP001",
                "unseeded random.Random() — pass an explicit seed",
            )
        elif (
            target is not None
            and target.startswith("random.")
            and target.split(".", 1)[1] in _GLOBAL_RNG_FUNCS
        ):
            self._report(
                node, "REP001",
                f"module-level {target}() uses shared global RNG state; "
                "use a seeded random.Random instance",
            )
        self._check_obs_guard(node)
        self._check_raw_persistence(node, target)
        self._check_canonical_join(node)
        self.generic_visit(node)

    # -- REP007: atomic persistence goes through resil.atomic -------------

    def _check_raw_persistence(
        self, node: ast.Call, target: Optional[str]
    ) -> None:
        if target not in _RAW_PERSISTENCE_CALLS:
            return
        posix = Path(self.path).as_posix()
        if posix.endswith("resil/atomic.py"):
            return  # the blessed implementation itself
        self._report(
            node, "REP007",
            f"raw {target}() — persistent writes must go through "
            "repro.resil.atomic (atomic_write_* / replace_into) so "
            "fsync + checksum discipline stays in one place",
        )

    # -- REP008: canonical spec strings come from repro.scenarios.spec ----

    def _check_canonical_join(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and isinstance(func.value, ast.Constant)
            and func.value.value == "|"
            and len(node.args) == 1
            and isinstance(node.args[0], (ast.List, ast.Tuple))
        ):
            return
        posix = Path(self.path).as_posix()
        if posix.endswith("scenarios/spec.py"):
            return  # the one blessed canonical-form implementation
        hits = sum(
            1
            for element in node.args[0].elts
            if _literal_prefix(element).startswith(_CANONICAL_PREFIXES)
        )
        if hits >= 2:
            self._report(
                node, "REP008",
                "hand-rolled canonical identity string — derive hashes "
                "from ScenarioSpec.canonical() / MatrixSpec.canonical() "
                "(repro.scenarios.spec) so every identity normalises "
                "the same way",
            )

    # -- REP002: mutable default arguments --------------------------------

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and _is_mutable_literal(default):
                self._report(
                    default, "REP002",
                    f"mutable default argument in {node.name}() is shared "
                    "across calls; default to None instead",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- REP003: complete policy interfaces -------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = {_dotted(base) for base in node.bases}
        if bases & {"EvictionPolicy", "base.EvictionPolicy"}:
            defined = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for required in ("on_page_in", "select_victim"):
                if required not in defined:
                    self._report(
                        node, "REP003",
                        f"policy {node.name} does not define {required}(); "
                        "every EvictionPolicy subclass must implement both "
                        "abstract methods itself",
                    )
        self.generic_visit(node)

    # -- REP004: the single obs guard pattern -----------------------------

    def _check_obs_guard(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            return
        receiver = _dotted(func.value)
        if receiver is None:
            return
        if receiver.split(".")[-1] not in _OBS_NAMES:
            return
        if self._obs_guarded(node, receiver):
            return
        self._report(
            node, "REP004",
            f"{receiver}.emit() outside an `if {receiver} is not None:` "
            "guard — observation must stay one pointer check when off",
        )

    def _obs_guarded(self, node: ast.Call, receiver: str) -> bool:
        child: ast.AST = node
        parent = self._parents.get(child)
        while parent is not None:
            if isinstance(parent, ast.If):
                kind = _none_test(parent.test, receiver)
                in_body = any(child is stmt or self._contains(stmt, child)
                              for stmt in parent.body)
                if kind == "is-not" and in_body:
                    return True
                if kind == "is" and not in_body:
                    return True  # else-branch of `if obs is None:`
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Helper pattern: the obs handle is a parameter, checked
                # at every call site (e.g. HPE._snapshot_interval).
                params = {a.arg for a in (*parent.args.posonlyargs,
                                          *parent.args.args,
                                          *parent.args.kwonlyargs)}
                if receiver in params:
                    return True
                # Early-exit pattern: `if obs is None: return` earlier in
                # the same function body.
                for stmt in parent.body:
                    if stmt.lineno >= node.lineno:
                        break
                    if (
                        isinstance(stmt, ast.If)
                        and _none_test(stmt.test, receiver) == "is"
                        and _terminates(stmt.body)
                    ):
                        return True
                return False
            child, parent = parent, self._parents.get(parent)
        return False

    @staticmethod
    def _contains(root: ast.AST, target: ast.AST) -> bool:
        return any(n is target for n in ast.walk(root))

    # -- REP005: no float equality ----------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, right in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                self._report(
                    right, "REP005",
                    "float equality comparison — use math.isclose or an "
                    "explicit tolerance",
                )
                break
        self.generic_visit(node)


@dataclass(frozen=True)
class NoqaDirective:
    """One ``# noqa`` comment: where it is and what it claims to silence."""

    path: str
    line: int
    col: int
    #: Upper-cased codes after the colon; ``None`` for a bare ``# noqa``.
    codes: Optional[frozenset[str]]

    def auditable(self) -> bool:
        """Is this pass entitled to judge the directive's staleness?

        Bare directives and all-REP directives are ours; anything
        carrying a foreign code (flake8 etc.) is another tool's
        business.
        """
        if self.codes is None:
            return True
        return all(_REP_CODE_RE.match(code) for code in self.codes)


def scan_noqa_directives(path: str, source: str) -> list[NoqaDirective]:
    """Every comment *starting* with the noqa marker, via tokenize.

    Tokenizing (rather than regexing lines) keeps string literals and
    docstrings that merely mention ``# noqa`` out of the audit.
    """
    out: list[NoqaDirective] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_DIRECTIVE_RE.match(tok.string)
            if match is None:
                continue
            codes_text = match.group("codes")
            codes = (
                frozenset(
                    c.strip().upper()
                    for c in codes_text.split(",")
                    if c.strip()
                )
                if codes_text is not None
                else None
            )
            out.append(
                NoqaDirective(
                    path=path,
                    line=tok.start[0],
                    col=tok.start[1] + 1,
                    codes=codes,
                )
            )
    except tokenize.TokenizeError:
        pass  # REP000 already covers files that do not parse
    return out


@dataclass
class FileLintReport:
    """Per-file rule results plus the inputs the noqa audit needs."""

    findings: list[LintFinding] = field(default_factory=list)
    suppressed: list[LintFinding] = field(default_factory=list)
    directives: list[NoqaDirective] = field(default_factory=list)


def lint_source_report(path: str, source: str) -> FileLintReport:
    """Per-file rules (REP001–REP005, REP007, REP008) over one file."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileLintReport(findings=[
            LintFinding(
                code="REP000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ])
    linter = _FileLinter(path, source, tree)
    linter.visit(tree)
    findings, suppressed = linter.findings, linter.suppressed
    if _is_test_file(path):
        findings = [f for f in findings if f.code not in _RELAXED_IN_TESTS]
        suppressed = [f for f in suppressed
                      if f.code not in _RELAXED_IN_TESTS]
    return FileLintReport(
        findings=findings,
        suppressed=suppressed,
        directives=scan_noqa_directives(path, source),
    )


def lint_source(path: str, source: str) -> list[LintFinding]:
    """Run the per-file rules over one file's source text."""
    return lint_source_report(path, source).findings


def lint_file(path: Path) -> list[LintFinding]:
    """Lint one file from disk."""
    return lint_source(str(path), path.read_text(encoding="utf-8"))


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories named ``fixtures`` are skipped: they hold deliberately
    rule-violating corpora for the lint tests, not shipped code.
    """
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(
                f for f in path.rglob("*.py")
                if "fixtures" not in f.relative_to(path).parts
            )
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


# -- REP006: cache schema fingerprints ------------------------------------


def dataclass_fingerprint(tree: ast.Module, class_name: str) -> Optional[str]:
    """32-hex-char digest of a dataclass's ordered ``name:annotation`` list.

    AST-only on purpose: importing the module would execute it, and the
    fingerprint must not depend on runtime state.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = [
                f"{stmt.target.id}:{ast.unparse(stmt.annotation)}"
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
            blob = ";".join(fields).encode("utf-8")
            return hashlib.sha256(blob).hexdigest()[:32]
    return None


def _read_schema_version(cache_py: Path) -> Optional[int]:
    tree = ast.parse(cache_py.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "CACHE_SCHEMA_VERSION"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value
    return None


def current_fingerprints(package_root: Path) -> dict[str, Optional[str]]:
    """Compute the live fingerprint of each cache-pickled dataclass."""
    out: dict[str, Optional[str]] = {}
    for name, rel in _CACHED_DATACLASSES.items():
        source_file = package_root / rel
        if not source_file.exists():
            out[name] = None
            continue
        tree = ast.parse(source_file.read_text(encoding="utf-8"))
        out[name] = dataclass_fingerprint(tree, name)
    return out


def check_cache_schema(package_root: Path) -> list[LintFinding]:
    """REP006: cached dataclass changes require a schema version bump."""
    cache_py = package_root / "sim" / "cache.py"
    if not cache_py.exists():
        return []
    version = _read_schema_version(cache_py)
    if version is None:
        return [
            LintFinding(
                "REP006", str(cache_py), 1, 1,
                "CACHE_SCHEMA_VERSION not found as an integer constant",
            )
        ]
    expected = CACHE_FINGERPRINTS.get(version)
    if expected is None:
        return [
            LintFinding(
                "REP006", str(cache_py), 1, 1,
                f"CACHE_SCHEMA_VERSION={version} has no fingerprint row in "
                "repro/check/lint.py CACHE_FINGERPRINTS — record the new "
                "schema (repro lint --fingerprints prints it)",
            )
        ]
    findings: list[LintFinding] = []
    for name, fingerprint in current_fingerprints(package_root).items():
        want = expected.get(name)
        if fingerprint is None:
            findings.append(
                LintFinding(
                    "REP006", str(package_root / _CACHED_DATACLASSES[name]),
                    1, 1, f"cached dataclass {name} not found",
                )
            )
        elif fingerprint != want:
            findings.append(
                LintFinding(
                    "REP006", str(package_root / _CACHED_DATACLASSES[name]),
                    1, 1,
                    f"fields of pickled dataclass {name} changed "
                    f"(fingerprint {fingerprint}, schema v{version} expects "
                    f"{want}); bump CACHE_SCHEMA_VERSION and add a "
                    "CACHE_FINGERPRINTS row",
                )
            )
    return findings


def default_package_root() -> Path:
    """``src/repro`` as installed — the directory containing this package."""
    return Path(__file__).resolve().parents[1]


@dataclass
class LintReport:
    """Everything one lint run learned, beyond the findings list."""

    findings: list[LintFinding] = field(default_factory=list)
    suppressed: list[LintFinding] = field(default_factory=list)
    directives: list[NoqaDirective] = field(default_factory=list)

    def statistics(self) -> dict[str, tuple[int, int]]:
        """code -> (active findings, suppressed findings), sorted."""
        codes = sorted(
            {f.code for f in self.findings}
            | {f.code for f in self.suppressed}
        )
        return {
            code: (
                sum(1 for f in self.findings if f.code == code),
                sum(1 for f in self.suppressed if f.code == code),
            )
            for code in codes
        }

    def render_statistics(self) -> list[str]:
        """``--statistics`` table lines."""
        stats = self.statistics()
        out = [f"{'rule':8s} {'findings':>8s} {'suppressed':>10s}"]
        for code, (active, silenced) in stats.items():
            out.append(f"{code:8s} {active:8d} {silenced:10d}")
        out.append(
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppression(s), "
            f"{len(self.directives)} noqa directive(s)"
        )
        return out


def _stale_noqa_findings(
    directives: Iterable[NoqaDirective],
    suppressed: Iterable[LintFinding],
) -> list[LintFinding]:
    """REP013: directives whose line silences no finding of this pass."""
    silenced_at: dict[tuple[Path, int], set[str]] = {}
    for finding in suppressed:
        key = (Path(finding.path).resolve(), finding.line)
        silenced_at.setdefault(key, set()).add(finding.code)
    out: list[LintFinding] = []
    for directive in directives:
        if not directive.auditable():
            continue
        codes_here = silenced_at.get(
            (Path(directive.path).resolve(), directive.line), set()
        )
        if directive.codes is None:
            if codes_here:
                continue
            detail = "bare `# noqa`"
        else:
            if directive.codes & codes_here:
                continue
            detail = f"`# noqa: {', '.join(sorted(directive.codes))}`"
        out.append(
            LintFinding(
                code="REP013",
                path=directive.path,
                line=directive.line,
                col=directive.col,
                message=f"stale {detail} — it suppresses nothing on "
                        "this line; remove it so it cannot mask the "
                        "next real finding",
            )
        )
    return out


def run_lint_report(
    paths: Optional[Sequence[Path]] = None,
    *,
    include_schema_check: bool = True,
    include_flow: bool = True,
) -> LintReport:
    """Lint ``paths`` (default: the whole ``repro`` package).

    Adds REP006 (cache schema), the whole-program flow rules
    REP010–REP012 when the linted files include the installed package,
    and the REP013 stale-noqa audit over every linted file.
    """
    root = default_package_root()
    targets = [Path(p) for p in paths] if paths else [root]
    report = LintReport()
    files = iter_python_files(targets)
    for file in files:
        file_report = lint_source_report(
            str(file), file.read_text(encoding="utf-8")
        )
        report.findings.extend(file_report.findings)
        report.suppressed.extend(file_report.suppressed)
        report.directives.extend(file_report.directives)
    if include_schema_check:
        report.findings.extend(check_cache_schema(root))
    resolved_root = root.resolve()
    if include_flow and any(
        file.resolve().is_relative_to(resolved_root) for file in files
    ):
        # Imported lazily: repro.check.flow imports this module.
        from repro.check import flow

        analysis = flow.analyze(package_root=root)
        active, silenced = flow.run_flow_rules_report(analysis)
        report.findings.extend(active)
        report.suppressed.extend(silenced)
    report.findings.extend(
        _stale_noqa_findings(report.directives, report.suppressed)
    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    *,
    include_schema_check: bool = True,
    include_flow: bool = True,
) -> list[LintFinding]:
    """Lint ``paths`` (default: the whole ``repro`` package)."""
    return run_lint_report(
        paths,
        include_schema_check=include_schema_check,
        include_flow=include_flow,
    ).findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.check.lint [--fingerprints] [--statistics]
    [paths...]``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if "--fingerprints" in args:
        for name, fingerprint in current_fingerprints(
            default_package_root()
        ).items():
            print(f"{name}: {fingerprint}")
        return 0
    statistics = "--statistics" in args
    args = [a for a in args if a != "--statistics"]
    report = run_lint_report([Path(a) for a in args] or None)
    for finding in report.findings:
        print(finding.render())
    if statistics:
        for line in report.render_statistics():
            print(line)
    if report.findings:
        print(f"{len(report.findings)} problem(s) found")
        return 1
    if not statistics:
        print("repro lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
