"""Schema validation for ``BENCH_matrix.json`` (no jsonschema dep).

CI's ``matrix-smoke`` job runs ``bench_matrix_wallclock`` and then
validates the artifact with :func:`validate_bench_matrix` so a drive-by
edit cannot silently drop a metric the dashboards read.  Mirrors
:mod:`repro.serve.bench_schema` (the ``BENCH_service.json`` checker):
a small hand-rolled walker over required keys, types, and bounds.

The ``fastpath`` section must carry all three recorded tiers — v1, v2
(bit-identical batch kernel), and v3 (the relaxed tier, DESIGN §13) —
and each ``*_over_v1_speedup`` must be consistent with the recorded
seconds, so a stale hand-edit of one field is caught.
"""

from __future__ import annotations

from typing import Mapping, Optional

#: Required numeric fields of the top-level (cold vs. warm) record and
#: their inclusive lower bounds.
_TOP_NUMERIC_FIELDS: dict[str, float] = {
    "scale": 0.01,
    "jobs": 1,
    "cold_seconds": 0,
    "warm_seconds": 0,
    "warm_speedup": 0,
}

#: Required numeric fields of the nested ``fastpath`` record.
_FASTPATH_NUMERIC_FIELDS: dict[str, float] = {
    "scale": 0.01,
    "jobs": 1,
    "v1_seconds": 0,
    "v2_seconds": 0,
    "v2_over_v1_speedup": 0,
    "v1_serial_seconds": 0,
    "v3_seconds": 0,
    "v3_over_v1_speedup": 0,
}

#: Required non-empty list-of-X fields of both records.
_LIST_FIELDS: dict[str, type] = {
    "apps": str,
    "policies": str,
    "rates": float,
}

#: Recorded speedups are rounded to 2 decimals and the seconds to 4, so
#: a recomputed ratio can differ slightly; anything past this slack is
#: a hand-edit or a partial re-record.
_SPEEDUP_SLACK = 0.05

#: (speedup field, numerator field, denominator field) consistency
#: triples inside the ``fastpath`` record.
_SPEEDUP_TRIPLES = (
    ("v2_over_v1_speedup", "v1_seconds", "v2_seconds"),
    # v3 is benched against its own serial baseline (per-spec loops,
    # not the matrix engine), recorded as v1_serial_seconds.
    ("v3_over_v1_speedup", "v1_serial_seconds", "v3_seconds"),
)


def _number(value: object) -> Optional[float]:
    """The value as a float, or ``None`` when it is not a real number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _check_record(
    record: Mapping[str, object],
    numeric_fields: Mapping[str, float],
    prefix: str,
) -> list[str]:
    """Violations of one record's numeric and list field requirements."""
    problems: list[str] = []
    for name, lower in numeric_fields.items():
        value = _number(record.get(name))
        if value is None:
            problems.append(
                f"{prefix}{name}: expected a number, got "
                f"{record.get(name)!r}"
            )
        elif value < lower:
            problems.append(
                f"{prefix}{name}: {value} below lower bound {lower}"
            )
    for name, element_type in _LIST_FIELDS.items():
        value = record.get(name)
        if not isinstance(value, list) or not value:
            problems.append(f"{prefix}{name}: expected a non-empty list")
            continue
        for element in value:
            ok = (
                isinstance(element, (int, float))
                and not isinstance(element, bool)
                if element_type is float
                else isinstance(element, element_type)
            )
            if not ok:
                problems.append(
                    f"{prefix}{name}: element {element!r} is not "
                    f"{element_type.__name__}"
                )
                break
    return problems


def validate_bench_matrix(data: object) -> list[str]:
    """Every schema violation in ``data`` (empty list == valid).

    Expected shape::

        {"apps": [...], "policies": [...], "rates": [...],
         "scale": x, "jobs": N,
         "cold_seconds": x, "warm_seconds": x, "warm_speedup": x,
         "fastpath": {
             "apps": [...], "policies": [...], "rates": [...],
             "scale": x, "jobs": N,
             "v1_seconds": x, "v2_seconds": x, "v2_over_v1_speedup": x,
             "v1_serial_seconds": x, "v3_seconds": x,
             "v3_over_v1_speedup": x,
         }}
    """
    if not isinstance(data, Mapping):
        return [f"top level must be an object, got {type(data).__name__}"]
    problems = _check_record(data, _TOP_NUMERIC_FIELDS, "")
    fastpath = data.get("fastpath")
    if not isinstance(fastpath, Mapping):
        problems.append("missing or non-object 'fastpath' section")
        return problems
    problems.extend(
        _check_record(fastpath, _FASTPATH_NUMERIC_FIELDS, "fastpath.")
    )
    for speedup_field, numerator_field, denominator_field in _SPEEDUP_TRIPLES:
        speedup = _number(fastpath.get(speedup_field))
        numerator = _number(fastpath.get(numerator_field))
        denominator = _number(fastpath.get(denominator_field))
        if (
            speedup is None or numerator is None or denominator is None
            or denominator <= 0
        ):
            continue  # the field checks above already reported these
        if abs(speedup - numerator / denominator) > _SPEEDUP_SLACK:
            problems.append(
                f"fastpath.{speedup_field}: {speedup} inconsistent with "
                f"{numerator_field}/{denominator_field} = "
                f"{numerator / denominator:.4f} — partial re-record or "
                f"hand edit"
            )
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    """CLI shim: ``python -m repro.check.bench_schema BENCH_matrix.json``."""
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        description="validate a BENCH_matrix.json artifact"
    )
    parser.add_argument("path", help="path to BENCH_matrix.json")
    options = parser.parse_args(argv)
    try:
        with open(options.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable artifact: {exc}", file=sys.stderr)
        return 2
    problems = validate_bench_matrix(data)
    for problem in problems:
        print(f"schema violation: {problem}", file=sys.stderr)
    if not problems:
        print(f"{options.path}: ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
