"""Runtime invariant sanitizer for the UVM simulator (``REPRO_SANITIZE``).

Modeled on the ASan/TSan wiring of compiled runtimes: the instrumented
binary is bit-identical in behaviour, but a shadow checker validates the
data structures the hot path mutates.  Here an :class:`InvariantChecker`
is attached to one :class:`~repro.sim.engine.UVMSimulator` and, every
``check_every`` faults plus at every HPE interval boundary, walks the
simulator's state and asserts the invariants the paper's correctness
rests on (frame table ↔ page table bijection, page-set chain integrity,
saturation caps, HIR bounds, …).

Any broken invariant raises :class:`InvariantViolation` carrying a
structured state snapshot, so a failure pinpoints *which* rule broke and
*what* the surrounding state looked like — instead of a wrong Fig. 11
bar three experiment layers later.

The checker is strictly read-only: it never calls an API that bumps a
statistic (e.g. it reads ``HistoryBuffer._records`` instead of
``primary_mask()``, which counts lookups), so a sanitized run's
``key_metrics()`` is bit-identical to an unsanitized one — the test
suite and CI both assert this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core import soa
from repro.core.hir import COUNTER_MAX as HIR_COUNTER_MAX
from repro.core.hpe import HPEPolicy
from repro.core.pageset import COUNTER_CAP, PageSetEntry, SetPart

if TYPE_CHECKING:
    from repro.sim.engine import UVMSimulator

#: Default fault sampling period (one full sweep per ``check_every``
#: faults; interval boundaries are always checked in addition).
DEFAULT_CHECK_EVERY = 64

#: Fault cap for ``--fast`` smoke mode: sanitize only the first 2k
#: faults, then stand down (tier-1 tests stay quick; CI runs full mode).
FAST_MODE_MAX_FAULTS = 2000


class InvariantViolation(AssertionError):
    """One broken simulator invariant, with a structured state snapshot.

    Parameters
    ----------
    code:
        Stable rule identifier (e.g. ``chain-resident``), suitable for
        tests to assert on.
    message:
        Human-readable description of what broke.
    snapshot:
        Structured state captured at detection time (fault number,
        partition sizes, the offending entry, …).
    """

    def __init__(
        self, code: str, message: str, snapshot: Optional[dict] = None
    ) -> None:
        self.code = code
        self.snapshot = snapshot or {}
        super().__init__(f"[{code}] {message}")

    def render(self) -> str:
        """Multi-line report: the message plus the snapshot, sorted."""
        lines = [str(self)]
        for key in sorted(self.snapshot):
            lines.append(f"  {key} = {self.snapshot[key]!r}")
        return "\n".join(lines)


def _entry_summary(entry: PageSetEntry) -> dict:
    """Compact, JSON-able view of one chain entry for snapshots."""
    return {
        "tag": entry.tag,
        "part": entry.part.value,
        "counter": entry.counter,
        "bit_vector": entry.bit_vector,
        "resident_mask": entry.resident_mask,
        "member_mask": entry.member_mask,
        "divided": entry.divided,
    }


@dataclass
class CheckerStats:
    """How much sanitizing one run performed (reported by the CLI)."""

    sweeps: int = 0
    interval_sweeps: int = 0
    invariants_checked: int = 0
    faults_seen: int = 0
    #: ``True`` once a fast-mode cap stopped per-fault sweeps.
    capped: bool = False


@dataclass
class _MonotonicShadow:
    """Last-seen values for counters that must never decrease."""

    driver: dict = field(default_factory=dict)
    registry: dict = field(default_factory=dict)
    intervals: int = 0


class InvariantChecker:
    """Validates a simulator's cross-structure invariants on demand.

    Parameters
    ----------
    simulator:
        The :class:`~repro.sim.engine.UVMSimulator` under test; the
        checker reads its frame pool, page table, TLBs, policy and
        optional observation registry.
    check_every:
        Run a full sweep every N faults (default 64, one HPE interval).
    max_faults:
        Stop per-fault sweeps after this many faults (``--fast`` smoke
        mode); the end-of-run sweep still happens.  ``None`` = no cap.
    """

    def __init__(
        self,
        simulator: "UVMSimulator",
        check_every: int = DEFAULT_CHECK_EVERY,
        max_faults: Optional[int] = None,
    ) -> None:
        if check_every <= 0:
            raise ValueError(
                f"check_every must be positive, got {check_every}"
            )
        if max_faults is not None and max_faults <= 0:
            raise ValueError("max_faults must be positive or None")
        self.simulator = simulator
        self.check_every = check_every
        self.max_faults = max_faults
        self.stats = CheckerStats()
        self._shadow = _MonotonicShadow()

    # ------------------------------------------------------------------
    # Hook points (driver fault path + engine end-of-run)
    # ------------------------------------------------------------------

    def after_fault(self, page: int) -> None:
        """Driver hook: called once per serviced fault.

        Sweeps every ``check_every`` faults and at every interval
        boundary; in fast mode, stands down past ``max_faults``.
        """
        stats = self.stats
        stats.faults_seen += 1
        if self.max_faults is not None and stats.faults_seen > self.max_faults:
            stats.capped = True
            return
        policy = self.simulator.policy
        boundary = False
        if isinstance(policy, HPEPolicy):
            intervals = policy.chain.intervals
            if intervals != self._shadow.intervals:
                boundary = True
        if boundary or stats.faults_seen % self.check_every == 0:
            self.check_all()
            if boundary:
                stats.interval_sweeps += 1

    def final_check(self) -> None:
        """Engine hook: one unconditional full sweep at end of run."""
        self.check_all()

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------

    def check_all(self) -> int:
        """Run every applicable invariant; return the number checked."""
        before = self.stats.invariants_checked
        self.stats.sweeps += 1
        self._check_frame_bijection()
        self._check_page_table_residency()
        self._check_residency_bitmap()
        self._check_capacity()
        self._check_tlb_subset()
        self._check_policy_residency()
        self._check_driver_monotonic()
        policy = self.simulator.policy
        if isinstance(policy, HPEPolicy):
            self._check_chain_partitions(policy)
            self._check_chain_interval_monotonic(policy)
            self._check_chain_entries(policy)
            self._check_divided_disjoint(policy)
            self._check_hpe_residency_map(policy)
            self._check_hir_bounds(policy)
            self._check_history(policy)
        obs = self.simulator.obs
        if obs is not None:
            self._check_registry_monotonic(obs.registry)
        return self.stats.invariants_checked - before

    def _fail(self, code: str, message: str, **snapshot: Any) -> None:
        snapshot.setdefault("fault_number", self.stats.faults_seen)
        raise InvariantViolation(code, message, snapshot)

    def _tick(self) -> None:
        self.stats.invariants_checked += 1

    # -- core (policy-agnostic) ----------------------------------------

    def _check_frame_bijection(self) -> None:
        """frame ↔ page maps are exact inverses and capacity-bounded."""
        self._tick()
        pool = self.simulator.frame_pool
        frame_of_page = pool._frame_of_page
        page_of_frame = pool._page_of_frame
        if len(frame_of_page) != len(page_of_frame):
            self._fail(
                "frame-bijection",
                "frame→page and page→frame maps have different sizes",
                pages=len(frame_of_page), frames=len(page_of_frame),
            )
        for page, frame in frame_of_page.items():
            if page_of_frame.get(frame) != page:
                self._fail(
                    "frame-bijection",
                    f"frame {frame} does not map back to page {page:#x}",
                    page=page, frame=frame,
                    reverse=page_of_frame.get(frame),
                )
            if not 0 <= frame < pool.capacity:
                self._fail(
                    "frame-bijection",
                    f"frame {frame} out of range [0, {pool.capacity})",
                    page=page, frame=frame,
                )
        free = set(pool._free)
        if len(free) != len(pool._free):
            self._fail(
                "frame-bijection", "free list contains duplicate frames",
                free_list_length=len(pool._free), distinct=len(free),
            )
        if free & set(page_of_frame):
            self._fail(
                "frame-bijection",
                "free list overlaps occupied frames",
                overlap=sorted(free & set(page_of_frame))[:8],
            )
        if len(free) + len(page_of_frame) != pool.capacity:
            self._fail(
                "frame-bijection",
                "free + occupied frames do not cover capacity",
                free=len(free), used=len(page_of_frame),
                capacity=pool.capacity,
            )

    def _check_residency_bitmap(self) -> None:
        """The pool's flat SoA residency view mirrors the frame map."""
        self._tick()
        pool = self.simulator.frame_pool
        bitmap_pages = set(pool.residency)
        map_pages = set(pool._frame_of_page)
        if bitmap_pages != map_pages:
            self._fail(
                "residency-bitmap",
                "flat residency bitmap disagrees with the frame map",
                only_in_bitmap=sorted(bitmap_pages - map_pages)[:8],
                only_in_map=sorted(map_pages - bitmap_pages)[:8],
            )

    def _check_page_table_residency(self) -> None:
        """Valid PTEs ↔ resident pages, with matching frame numbers."""
        self._tick()
        pool = self.simulator.frame_pool
        table = self.simulator.page_table
        valid = {
            page: entry
            for page, entry in table._entries.items()
            if entry.valid
        }
        resident = pool._frame_of_page
        if valid.keys() != resident.keys():
            only_table = sorted(valid.keys() - resident.keys())[:8]
            only_pool = sorted(resident.keys() - valid.keys())[:8]
            self._fail(
                "page-table-residency",
                "valid page-table entries and resident pages differ",
                only_in_page_table=only_table, only_in_frame_pool=only_pool,
            )
        for page, entry in valid.items():
            if entry.frame != resident[page]:
                self._fail(
                    "page-table-residency",
                    f"PTE frame for page {page:#x} disagrees with pool",
                    page=page, pte_frame=entry.frame,
                    pool_frame=resident[page],
                )

    def _check_capacity(self) -> None:
        """Resident-page count never exceeds GPU memory capacity."""
        self._tick()
        pool = self.simulator.frame_pool
        if pool.used > pool.capacity:
            self._fail(
                "capacity",
                f"{pool.used} resident pages exceed capacity {pool.capacity}",
                used=pool.used, capacity=pool.capacity,
            )

    def _check_tlb_subset(self) -> None:
        """No TLB holds a translation for an unmapped (evicted) page."""
        self._tick()
        table = self.simulator.page_table
        hierarchy = self.simulator.hierarchy
        entries_of = table._entries
        tlbs = [(f"l1[{sm}]", tlb)
                for sm, tlb in enumerate(hierarchy.l1_tlbs)]
        tlbs.append(("l2", hierarchy.l2_tlb))
        for label, tlb in tlbs:
            for tlb_set in tlb._sets:
                for page in tlb_set:
                    pte = entries_of.get(page)
                    if pte is None or not pte.valid:
                        self._fail(
                            "tlb-subset",
                            f"{label} TLB caches evicted page {page:#x} "
                            "(missed shootdown)",
                            tlb=label, page=page,
                        )

    def _check_policy_residency(self) -> None:
        """The policy's resident count agrees with the frame pool."""
        self._tick()
        policy = self.simulator.policy
        count = policy.resident_count()
        if count is None:
            return
        used = self.simulator.frame_pool.used
        if count != used:
            self._fail(
                "policy-residency",
                f"policy {policy.name!r} tracks {count} resident pages, "
                f"frame pool holds {used}",
                policy=policy.name, policy_count=count, pool_used=used,
            )

    def _check_driver_monotonic(self) -> None:
        """Driver counters only grow, and stay mutually consistent."""
        self._tick()
        stats = self.simulator.driver.stats
        current = {
            "faults": stats.faults,
            "compulsory_faults": stats.compulsory_faults,
            "capacity_faults": stats.capacity_faults,
            "evictions": stats.evictions,
            "bytes_migrated_in": stats.bytes_migrated_in,
            "bytes_evicted_out": stats.bytes_evicted_out,
            "prefetches": stats.prefetches,
        }
        shadow = self._shadow.driver
        for name, value in current.items():
            if value < shadow.get(name, 0):
                self._fail(
                    "counter-monotonic",
                    f"driver counter {name} decreased "
                    f"({shadow.get(name, 0)} -> {value})",
                    counter=name, previous=shadow.get(name, 0), now=value,
                )
        shadow.update(current)
        if stats.compulsory_faults + stats.capacity_faults != stats.faults:
            self._fail(
                "counter-monotonic",
                "compulsory + capacity faults do not sum to total faults",
                **current,
            )
        if stats.evictions > stats.faults + stats.prefetches:
            self._fail(
                "counter-monotonic",
                "more evictions than migrations could have forced",
                **current,
            )

    def _check_registry_monotonic(self, registry: Any) -> None:
        """Observability counters and histogram counts never decrease."""
        self._tick()
        shadow = self._shadow.registry
        for name, value in registry._counters.items():
            if value < shadow.get(("c", name), 0):
                self._fail(
                    "counter-monotonic",
                    f"obs counter {name!r} decreased",
                    counter=name,
                    previous=shadow.get(("c", name), 0), now=value,
                )
            shadow[("c", name)] = value
        for name, histogram in registry._histograms.items():
            if histogram.count < shadow.get(("h", name), 0):
                self._fail(
                    "counter-monotonic",
                    f"obs histogram {name!r} count decreased",
                    histogram=name,
                    previous=shadow.get(("h", name), 0),
                    now=histogram.count,
                )
            shadow[("h", name)] = histogram.count

    # -- HPE-specific ---------------------------------------------------

    def _check_chain_partitions(self, policy: HPEPolicy) -> None:
        """Each key lives in exactly one partition, under its own key."""
        self._tick()
        chain = policy.chain
        partitions = (
            ("old", soa.OLD), ("middle", soa.MIDDLE), ("new", soa.NEW),
        )
        seen: dict = {}
        for name, partition in partitions:
            for key, entry in chain.partition_items(partition):
                if entry.key != key:
                    self._fail(
                        "chain-partition",
                        f"entry filed under {key!r} reports key "
                        f"{entry.key!r} ({name} partition)",
                        partition=name, filed_key=str(key),
                        entry=_entry_summary(entry),
                    )
                if key in seen:
                    self._fail(
                        "chain-partition",
                        f"key {key!r} present in both {seen[key]} and "
                        f"{name} partitions (P1/P2 pointer corruption)",
                        partition=name, other_partition=seen[key],
                        entry=_entry_summary(entry),
                    )
                seen[key] = name
        if len(seen) != len(chain):
            self._fail(
                "chain-partition",
                "partition sizes disagree with chain length",
                distinct_keys=len(seen), chain_length=len(chain),
            )

    def _check_chain_interval_monotonic(self, policy: HPEPolicy) -> None:
        """P1/P2 advance monotonically: the interval count never rewinds."""
        self._tick()
        intervals = policy.chain.intervals
        if intervals < self._shadow.intervals:
            self._fail(
                "chain-interval",
                f"chain intervals went backwards "
                f"({self._shadow.intervals} -> {intervals})",
                previous=self._shadow.intervals, now=intervals,
            )
        self._shadow.intervals = intervals

    def _check_chain_entries(self, policy: HPEPolicy) -> None:
        """Per-entry invariants (Fig. 5/6): masks nested, counters capped,
        no fully-evicted entry left in the chain."""
        self._tick()
        size = policy.config.page_set_size
        full_mask = (1 << size) - 1
        for entry in policy.chain.iter_entries():
            if entry.resident_mask == 0:
                self._fail(
                    "chain-resident",
                    f"page set {entry.tag:#x}/{entry.part.value} has no "
                    "resident page but is still chained",
                    entry=_entry_summary(entry),
                )
            if entry.resident_mask & ~entry.bit_vector:
                self._fail(
                    "bitvector-subset",
                    f"page set {entry.tag:#x}/{entry.part.value} has "
                    "resident pages that never faulted "
                    "(resident_mask ⊄ bit_vector)",
                    entry=_entry_summary(entry),
                )
            if entry.bit_vector & ~entry.member_mask:
                self._fail(
                    "bitvector-subset",
                    f"page set {entry.tag:#x}/{entry.part.value} has "
                    "populated bits outside its member mask",
                    entry=_entry_summary(entry),
                )
            if entry.member_mask & ~full_mask:
                self._fail(
                    "bitvector-subset",
                    f"page set {entry.tag:#x}/{entry.part.value} member "
                    f"mask exceeds the {size}-page set width",
                    entry=_entry_summary(entry),
                )
            if not 0 <= entry.counter <= COUNTER_CAP:
                self._fail(
                    "counter-cap",
                    f"page set {entry.tag:#x}/{entry.part.value} counter "
                    f"{entry.counter} outside [0, {COUNTER_CAP}]",
                    entry=_entry_summary(entry),
                )

    def _check_divided_disjoint(self, policy: HPEPolicy) -> None:
        """Divided sets: primary and secondary halves never overlap."""
        self._tick()
        chain = policy.chain
        full_mask = policy._full_mask
        secondaries = [
            entry for entry in chain.iter_entries()
            if entry.part is SetPart.SECONDARY
        ]
        for secondary in secondaries:
            primary = chain.get((secondary.tag, SetPart.PRIMARY))
            if primary is None:
                continue  # primary fully evicted; history keeps its mask
            if primary.member_mask & secondary.member_mask:
                self._fail(
                    "divided-disjoint",
                    f"divided page set {secondary.tag:#x}: primary and "
                    "secondary member masks overlap",
                    primary=_entry_summary(primary),
                    secondary=_entry_summary(secondary),
                )
            if not primary.divided:
                self._fail(
                    "divided-disjoint",
                    f"page set {secondary.tag:#x} has a secondary but its "
                    "primary is not marked divided",
                    primary=_entry_summary(primary),
                    secondary=_entry_summary(secondary),
                )
            if (primary.member_mask | secondary.member_mask) & ~full_mask:
                self._fail(
                    "divided-disjoint",
                    f"divided page set {secondary.tag:#x}: halves exceed "
                    "the page-set width",
                    primary=_entry_summary(primary),
                    secondary=_entry_summary(secondary),
                )

    def _check_hpe_residency_map(self, policy: HPEPolicy) -> None:
        """Chain resident bits ↔ frame-pool residency, page by page."""
        self._tick()
        pool = self.simulator.frame_pool
        geometry = policy.geometry
        chain_resident = 0
        seen_pages: set = set()
        for entry in policy.chain.iter_entries():
            first = geometry.first_page_of(entry.tag)
            mask = entry.resident_mask
            offset = 0
            while mask:
                if mask & 1:
                    page = first + offset
                    chain_resident += 1
                    if page in seen_pages:
                        self._fail(
                            "hpe-residency",
                            f"page {page:#x} marked resident by two chain "
                            "entries",
                            page=page, entry=_entry_summary(entry),
                        )
                    seen_pages.add(page)
                    if not pool.is_resident(page):
                        self._fail(
                            "hpe-residency",
                            f"chain marks page {page:#x} resident but the "
                            "frame pool does not hold it",
                            page=page, entry=_entry_summary(entry),
                        )
                mask >>= 1
                offset += 1
        if chain_resident != policy._resident_pages:
            self._fail(
                "hpe-residency",
                "HPE resident-page counter disagrees with chain bits",
                counter=policy._resident_pages, chain_bits=chain_resident,
            )
        if chain_resident != pool.used:
            self._fail(
                "hpe-residency",
                "chain resident bits disagree with frame-pool occupancy",
                chain_bits=chain_resident, pool_used=pool.used,
            )

    def _check_hir_bounds(self, policy: HPEPolicy) -> None:
        """HIR lines: 2-bit counter caps, way bounds, touch-order sync."""
        self._tick()
        hir = policy.hir
        touched = 0
        for index, lines in enumerate(hir._sets):
            if len(lines) > hir.associativity:
                self._fail(
                    "hir-bounds",
                    f"HIR set {index} holds {len(lines)} lines, over "
                    f"associativity {hir.associativity}",
                    set_index=index, lines=len(lines),
                    associativity=hir.associativity,
                )
            touched += len(lines)
            for tag, line in lines.items():
                if line.tag != tag:
                    self._fail(
                        "hir-bounds",
                        f"HIR line filed under tag {tag:#x} reports tag "
                        f"{line.tag:#x}",
                        set_index=index, filed_tag=tag, line_tag=line.tag,
                    )
                for offset, counter in enumerate(line.counters):
                    if not 0 <= counter <= HIR_COUNTER_MAX:
                        self._fail(
                            "hir-bounds",
                            f"HIR counter for tag {tag:#x} offset {offset} "
                            f"is {counter}, outside the 2-bit range "
                            f"[0, {HIR_COUNTER_MAX}]",
                            tag=tag, offset=offset, counter=counter,
                        )
        order = hir._touch_order
        if touched != len(order) or len(set(order)) != len(order):
            self._fail(
                "hir-bounds",
                "HIR touch order out of sync with populated lines",
                touched_lines=touched, touch_order=len(order),
                distinct=len(set(order)),
            )

    def _check_history(self, policy: HPEPolicy) -> None:
        """History records hold non-empty masks within the set width."""
        self._tick()
        full_mask = policy._full_mask
        # Read the raw dict: HistoryBuffer.primary_mask() counts lookups
        # and the sanitizer must not perturb statistics.
        for tag, mask in policy.history._records.items():
            if mask == 0 or mask & ~full_mask:
                self._fail(
                    "history-mask",
                    f"history mask for tag {tag:#x} is empty or exceeds "
                    "the page-set width",
                    tag=tag, mask=mask, full_mask=full_mask,
                )
