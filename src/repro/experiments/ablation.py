"""Ablation studies for HPE's design choices.

DESIGN.md calls out five load-bearing mechanisms; each ablation disables
or replaces one of them and reruns the suite, quantifying how much that
mechanism contributes to HPE's headline speedup over LRU:

* ``full``            — HPE as evaluated (reference);
* ``no-hir``          — the ideal hit-information model: hits reach the
  driver immediately instead of batched through HIR (upper bound on what
  better hit plumbing could buy);
* ``no-hits``         — HIR disabled entirely: the chain sees faults only
  (what the driver can do without any hardware support);
* ``no-adjustment``   — classification only, no Algorithm 1 switching;
* ``no-division``     — page sets never divide (NW's even/odd problem);
* ``relaxed-division``— divide at counter 32 instead of 64 (the paper's
  "relaxing the division requirement" remark about NW);
* ``always-lru`` / ``always-mru-c`` — pin one strategy, measuring what
  the classification machinery itself is worth.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.hpe import HPEConfig
from repro.core.strategies import StrategyKind
from repro.experiments.figures import FigureResult, _apps
from repro.experiments.runner import (
    DEFAULT_SEED,
    arithmetic_mean,
    run_application,
)


#: Ablation variant name → HPE configuration.  ``no-hits`` sets a
#: transfer interval the run can never reach, so the HIR is present but
#: its contents never arrive at the driver.
VARIANTS: dict[str, HPEConfig] = {
    "full": HPEConfig(),
    "no-hir": HPEConfig(use_hir=False),
    "no-hits": HPEConfig(transfer_interval=10**9),
    "no-adjustment": HPEConfig(enable_adjustment=False),
    "no-division": HPEConfig(enable_division=False),
    "relaxed-division": HPEConfig(division_threshold=32),
    "always-lru": HPEConfig(forced_strategy=StrategyKind.LRU),
    "always-mru-c": HPEConfig(forced_strategy=StrategyKind.MRU_C),
}


def ablation(
    apps: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    rate: float = 0.75,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Mean HPE-over-LRU speedup and eviction ratio per variant."""
    apps = _apps(apps)
    names = list(variants) if variants is not None else list(VARIANTS)
    unknown = [name for name in names if name not in VARIANTS]
    if unknown:
        raise ValueError(
            f"unknown ablation variant(s) {unknown}; "
            f"known: {', '.join(VARIANTS)}"
        )
    lru = {
        app: run_application(app, "lru", rate, seed=seed, scale=scale)
        for app in apps
    }
    rows: list[list[object]] = []
    for name in names:
        speedups: list[float] = []
        eviction_ratios: list[float] = []
        for app in apps:
            result = run_application(
                app, "hpe", rate, seed=seed, scale=scale,
                hpe_config=VARIANTS[name],
            )
            speedups.append(result.speedup_over(lru[app]))
            eviction_ratios.append(
                result.evictions_normalized_to(lru[app])
            )
        rows.append([
            name,
            arithmetic_mean(speedups),
            min(speedups),
            arithmetic_mean(eviction_ratios),
        ])
    return FigureResult(
        "Ablation", f"HPE design-choice ablations vs LRU ({rate:.0%} OS)",
        ["variant", "mean speedup", "worst app", "evictions/LRU"], rows,
        ["'full' is the evaluated configuration; each other row removes "
         "or replaces one mechanism from DESIGN.md"],
    )
