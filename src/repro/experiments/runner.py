"""Generic (application × policy × oversubscription) experiment engine.

Every figure/table harness is a thin layer over :func:`run_application`
and :class:`ResultMatrix`.  Policies are constructed per run by name; RRIP
receives the paper's per-pattern configuration (distant insertion and a
128-fault delay threshold for type II applications, long insertion and no
threshold otherwise — Section V-B), and CLOCK-Pro is sized to the run's
capacity with the paper's fixed ``m_c = 128``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.hpe import HPEConfig, HPEPolicy
from repro.policies import (
    ARCPolicy,
    CARPolicy,
    ClockProPolicy,
    EvictionPolicy,
    FIFOPolicy,
    IdealPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    RRIPConfig,
    RRIPPolicy,
    WSClockPolicy,
)
from repro.sim.config import GPUConfig
from repro.sim.engine import UVMSimulator
from repro.sim.results import SimulationResult
from repro.workloads.base import Trace
from repro.workloads.suite import APPLICATION_ORDER, ApplicationSpec, get_application

#: Policy names accepted by :func:`make_policy`, in report order.
POLICY_NAMES = (
    "ideal", "lru", "random", "rrip", "clock-pro", "hpe",
    "fifo", "lfu", "arc", "car", "wsclock",
)

#: The two oversubscription rates the paper evaluates (Section V).
PAPER_RATES = (0.75, 0.50)

#: Default RNG seed for trace generation (fixed for reproducibility).
DEFAULT_SEED = 7


def make_policy(
    name: str,
    capacity: int,
    spec: Optional[ApplicationSpec] = None,
    hpe_config: Optional[HPEConfig] = None,
    seed: int = DEFAULT_SEED,
) -> EvictionPolicy:
    """Construct a fresh policy instance for one run."""
    name = name.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    if name == "rrip":
        thrashing = spec.is_thrashing_type if spec is not None else False
        return RRIPPolicy(RRIPConfig.for_pattern(thrashing))
    if name == "clock-pro":
        return ClockProPolicy(capacity=capacity)
    if name == "ideal":
        return IdealPolicy()
    if name == "hpe":
        return HPEPolicy(hpe_config or HPEConfig())
    if name == "fifo":
        return FIFOPolicy()
    if name == "lfu":
        return LFUPolicy()
    if name == "arc":
        return ARCPolicy(capacity=capacity)
    if name == "car":
        return CARPolicy(capacity=capacity)
    if name == "wsclock":
        return WSClockPolicy()
    raise ValueError(f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation run."""

    app: str
    policy: str
    rate: float


class TraceCache:
    """Builds and memoises application traces per (abbr, seed, scale)."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, int, float], Trace] = {}

    def get(self, abbr: str, seed: int = DEFAULT_SEED, scale: float = 1.0) -> Trace:
        key = (abbr.upper(), seed, scale)
        if key not in self._cache:
            self._cache[key] = get_application(abbr).build(seed=seed, scale=scale)
        return self._cache[key]

    def clear(self) -> None:
        self._cache.clear()


#: Module-level cache shared by all harnesses in one process.
_TRACES = TraceCache()


def run_application(
    app: str,
    policy: str,
    rate: float,
    *,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
) -> SimulationResult:
    """Run one (application, policy, oversubscription-rate) simulation."""
    spec = get_application(app)
    trace = _TRACES.get(app, seed, scale)
    capacity = trace.capacity_for(rate)
    policy_obj = make_policy(
        policy, capacity, spec=spec, hpe_config=hpe_config, seed=seed
    )
    simulator = UVMSimulator(policy_obj, capacity, config)
    result = simulator.run(trace.pages, workload_name=spec.abbr)
    result.extras["policy"] = policy_obj
    result.extras["pattern_type"] = spec.pattern_type
    result.extras["rate"] = rate
    return result


@dataclass
class ResultMatrix:
    """Results keyed by (app, policy, rate) with derived-metric helpers."""

    results: dict[RunKey, SimulationResult] = field(default_factory=dict)

    def put(self, key: RunKey, result: SimulationResult) -> None:
        self.results[key] = result

    def get(self, app: str, policy: str, rate: float) -> SimulationResult:
        return self.results[RunKey(app.upper(), policy, rate)]

    def speedup(self, app: str, policy: str, baseline: str, rate: float) -> float:
        """IPC of ``policy`` over ``baseline`` for one app and rate."""
        return self.get(app, policy, rate).speedup_over(
            self.get(app, baseline, rate)
        )

    def eviction_ratio(self, app: str, policy: str, baseline: str, rate: float) -> float:
        """Evictions of ``policy`` relative to ``baseline``."""
        return self.get(app, policy, rate).evictions_normalized_to(
            self.get(app, baseline, rate)
        )

    def apps(self) -> list[str]:
        seen: list[str] = []
        for key in self.results:
            if key.app not in seen:
                seen.append(key.app)
        return seen


def run_matrix(
    policies: Sequence[str],
    rates: Sequence[float] = PAPER_RATES,
    apps: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
    progress: bool = False,
) -> ResultMatrix:
    """Run the cartesian product and collect a :class:`ResultMatrix`."""
    apps = list(apps) if apps is not None else list(APPLICATION_ORDER)
    matrix = ResultMatrix()
    for rate in rates:
        for app in apps:
            for policy in policies:
                if progress:
                    print(f"running {app} / {policy} @ {rate:.0%} ...", flush=True)
                result = run_application(
                    app, policy, rate,
                    seed=seed, scale=scale,
                    config=config, hpe_config=hpe_config,
                )
                matrix.put(RunKey(app.upper(), policy, rate), result)
    return matrix


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive values defensively."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean (the paper reports arithmetic averages)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
