"""Generic (application × policy × oversubscription) experiment engine.

Every figure/table harness is a thin layer over :func:`run_application`
and :class:`ResultMatrix`.  Policies are constructed per run by name; RRIP
receives the paper's per-pattern configuration (distant insertion and a
128-fault delay threshold for type II applications, long insertion and no
threshold otherwise — Section V-B), and CLOCK-Pro is sized to the run's
capacity with the paper's fixed ``m_c = 128``.
"""

from __future__ import annotations

import math
import os
import sys
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.hpe import HPEConfig, HPEPolicy
from repro import obs as obs_module
from repro.obs import MetricsRegistry, Observation
from repro.sim import cache as sim_cache
from repro.policies import (
    ARCPolicy,
    CARPolicy,
    ClockProPolicy,
    EvictionPolicy,
    FIFOPolicy,
    IdealPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    RRIPConfig,
    RRIPPolicy,
    WSClockPolicy,
)
from repro.sim.config import GPUConfig
from repro.sim.engine import UVMSimulator
from repro.sim.results import SimulationResult
from repro.workloads.base import Trace
from repro.workloads.suite import APPLICATION_ORDER, ApplicationSpec, get_application

#: Policy names accepted by :func:`make_policy`, in report order.
POLICY_NAMES = (
    "ideal", "lru", "random", "rrip", "clock-pro", "hpe",
    "fifo", "lfu", "arc", "car", "wsclock",
)

#: The two oversubscription rates the paper evaluates (Section V).
PAPER_RATES = (0.75, 0.50)

#: Default RNG seed for trace generation (fixed for reproducibility).
DEFAULT_SEED = 7

#: Environment variable selecting the default worker count for
#: :func:`run_matrix` (``0`` means "one worker per CPU").
ENV_JOBS = "REPRO_JOBS"


def make_policy(
    name: str,
    capacity: int,
    spec: Optional[ApplicationSpec] = None,
    hpe_config: Optional[HPEConfig] = None,
    seed: int = DEFAULT_SEED,
) -> EvictionPolicy:
    """Construct a fresh policy instance for one run."""
    name = name.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    if name == "rrip":
        thrashing = spec.is_thrashing_type if spec is not None else False
        return RRIPPolicy(RRIPConfig.for_pattern(thrashing))
    if name == "clock-pro":
        return ClockProPolicy(capacity=capacity)
    if name == "ideal":
        return IdealPolicy()
    if name == "hpe":
        return HPEPolicy(hpe_config or HPEConfig())
    if name == "fifo":
        return FIFOPolicy()
    if name == "lfu":
        return LFUPolicy()
    if name == "arc":
        return ARCPolicy(capacity=capacity)
    if name == "car":
        return CARPolicy(capacity=capacity)
    if name == "wsclock":
        return WSClockPolicy()
    raise ValueError(f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation run."""

    app: str
    policy: str
    rate: float


class TraceCache:
    """In-memory LRU of built traces per (abbr, seed, scale).

    Misses fall through to the persistent disk memo
    (:func:`repro.sim.cache.load_or_build_trace`), so a trace is
    generated at most once per machine.  The in-memory layer is bounded:
    the full 23-application suite fits comfortably, but long-lived
    sessions sweeping seeds/scales no longer grow without limit.
    """

    #: Default bound — the whole suite at two (seed, scale) settings.
    DEFAULT_MAX_ENTRIES = 64

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._cache: OrderedDict[tuple[str, int, float], Trace] = OrderedDict()

    def get(self, abbr: str, seed: int = DEFAULT_SEED, scale: float = 1.0) -> Trace:
        key = (abbr.upper(), seed, scale)
        trace = self._cache.get(key)
        if trace is not None:
            self._cache.move_to_end(key)
            return trace
        trace = sim_cache.load_or_build_trace(abbr, seed, scale)
        self._cache[key] = trace
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return trace

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


#: Module-level cache shared by all harnesses in one process.
_TRACES = TraceCache()


def clear_trace_cache() -> None:
    """Drop every in-memory trace (the CLI ``cache clear`` entry point)."""
    _TRACES.clear()


def run_application(
    app: str,
    policy: str,
    rate: float,
    *,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
    use_cache: Optional[bool] = None,
    obs=None,
) -> SimulationResult:
    """Run one (application, policy, oversubscription-rate) simulation.

    Results are memoised in the persistent cache (see
    :mod:`repro.sim.cache`) keyed by every input that can change them;
    ``use_cache=False`` forces a fresh simulation for this call only.

    ``obs`` selects observability for this run: ``None`` consults the
    process-wide setting (``REPRO_OBS`` / ``--obs``), ``False`` forces
    it off, ``True`` builds a fresh registry-only
    :class:`~repro.obs.Observation`, and an ``Observation`` instance is
    used as-is (event traces included).  Observed runs always simulate —
    a cached result has no trace or time-series to offer — and are not
    stored back, keeping cache entries free of observation payloads.
    """
    if obs is None:
        obs = obs_module.enabled()
    if obs is False:
        observation = None
    elif obs is True:
        observation = Observation()
    else:
        observation = obs
    caching = sim_cache.cache_enabled() if use_cache is None else use_cache
    if observation is not None:
        caching = False
    digest = sim_cache.fingerprint(
        app, policy, rate,
        seed=seed, scale=scale, config=config, hpe_config=hpe_config,
    )
    if caching:
        cached = sim_cache.result_cache().get(digest)
        if cached is not None:
            return cached
    spec = get_application(app)
    trace = _TRACES.get(app, seed, scale)
    capacity = trace.capacity_for(rate)
    policy_obj = make_policy(
        policy, capacity, spec=spec, hpe_config=hpe_config, seed=seed
    )
    simulator = UVMSimulator(policy_obj, capacity, config, obs=observation)
    result = simulator.run(trace.pages, workload_name=spec.abbr)
    result.extras["policy"] = policy_obj
    result.extras["pattern_type"] = spec.pattern_type
    result.extras["rate"] = rate
    if observation is not None:
        sim_cache.result_cache().stats.observe_into(observation.registry)
        result.extras["metrics"] = observation.registry.to_dict()
    if caching:
        try:
            sim_cache.result_cache().put(digest, result)
        except (OSError, RecursionError):
            pass  # an unwritable/unpicklable entry must never fail the run
    return result


@dataclass
class ResultMatrix:
    """Results keyed by (app, policy, rate) with derived-metric helpers."""

    results: dict[RunKey, SimulationResult] = field(default_factory=dict)
    #: Union of the per-run metric registries (observed runs only).
    #: Parallel workers serialise their registries inside
    #: ``extras["metrics"]``; :meth:`put` folds them back here, so the
    #: parent process sees one merged registry for the whole matrix.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def put(self, key: RunKey, result: SimulationResult) -> None:
        self.results[key] = result
        run_metrics = result.extras.get("metrics")
        if run_metrics:
            self.metrics.merge(MetricsRegistry.from_dict(run_metrics))

    def get(self, app: str, policy: str, rate: float) -> SimulationResult:
        return self.results[RunKey(app.upper(), policy, rate)]

    def speedup(self, app: str, policy: str, baseline: str, rate: float) -> float:
        """IPC of ``policy`` over ``baseline`` for one app and rate."""
        return self.get(app, policy, rate).speedup_over(
            self.get(app, baseline, rate)
        )

    def eviction_ratio(self, app: str, policy: str, baseline: str, rate: float) -> float:
        """Evictions of ``policy`` relative to ``baseline``."""
        return self.get(app, policy, rate).evictions_normalized_to(
            self.get(app, baseline, rate)
        )

    def apps(self) -> list[str]:
        seen: list[str] = []
        for key in self.results:
            if key.app not in seen:
                seen.append(key.app)
        return seen


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count for :func:`run_matrix`.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (default
    1, i.e. serial); ``0`` or a negative value means one worker per CPU.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _run_job(job: tuple) -> SimulationResult:
    """Pool entry point: one (app, policy, rate) simulation.

    Lives at module level so it pickles under any multiprocessing start
    method.  Only names and configs cross the process boundary inbound —
    the worker builds (or disk-loads) the trace on its side — and only
    the :class:`SimulationResult` crosses back.
    """
    app, policy, rate, seed, scale, config, hpe_config, observe = job
    # Workers observe registry-only (obs=True): an Observation carrying
    # an open JSONL handle must never cross the process boundary.  The
    # registry travels back serialised inside ``extras["metrics"]``.
    return run_application(
        app, policy, rate,
        seed=seed, scale=scale, config=config, hpe_config=hpe_config,
        obs=bool(observe),
    )


def run_matrix(
    policies: Sequence[str],
    rates: Sequence[float] = PAPER_RATES,
    apps: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
    progress: bool = False,
    jobs: Optional[int] = None,
) -> ResultMatrix:
    """Run the cartesian product and collect a :class:`ResultMatrix`.

    With ``jobs > 1`` the (rate × app × policy) runs fan out over a
    ``multiprocessing`` pool; results are collected in the same
    deterministic order the serial path produces and each worker builds
    traces locally (traces are never pickled across the boundary).
    ``jobs=None`` reads ``REPRO_JOBS``; ``jobs=1`` is plain serial
    execution in this process.  Progress lines go to stderr so piped
    harness output is never corrupted.
    """
    apps = list(apps) if apps is not None else list(APPLICATION_ORDER)
    keys = [
        RunKey(app.upper(), policy, rate)
        for rate in rates
        for app in apps
        for policy in policies
    ]
    matrix = ResultMatrix()
    if not keys:
        # No work: return the empty matrix before any pool is sized —
        # ``Pool(processes=0)`` raises on every platform.
        return matrix
    jobs = resolve_jobs(jobs)
    observing = obs_module.enabled()

    def note(key: RunKey) -> None:
        if progress:
            print(
                f"running {key.app} / {key.policy} @ {key.rate:.0%} ...",
                file=sys.stderr, flush=True,
            )

    if jobs == 1 or len(keys) <= 1:
        for key in keys:
            note(key)
            result = run_application(
                key.app, key.policy, key.rate,
                seed=seed, scale=scale,
                config=config, hpe_config=hpe_config,
            )
            matrix.put(key, result)
        return matrix

    import multiprocessing as mp

    # Prefer fork (cheap, shares the imported modules); fall back to the
    # platform default where fork is unavailable.
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    # The observe flag travels in the payload: a spawn-context worker
    # re-imports the world and loses any configure(enabled=True) made by
    # the CLI in this process.
    payloads = [
        (key.app, key.policy, key.rate, seed, scale, config, hpe_config,
         observing)
        for key in keys
    ]
    with ctx.Pool(processes=min(jobs, len(keys))) as pool:
        for key, result in zip(keys, pool.imap(_run_job, payloads)):
            note(key)
            matrix.put(key, result)
    return matrix


def geometric_mean(values: Iterable[float], *, strict: bool = False) -> float:
    """Geometric mean over the positive, finite values.

    Non-positive values are undefined under a geometric mean, and ``nan``
    marks a ratio that does not exist (e.g. a zero-IPC baseline in
    :meth:`~repro.sim.results.SimulationResult.speedup_over`); dropping
    either silently could let a degenerate run *inflate* a reported
    mean, so any dropped value triggers a :class:`RuntimeWarning` — or a
    :class:`ValueError` under ``strict=True``.  (``nan > 0`` is false,
    so the positivity filter removes NaN too.)
    """
    values = list(values)
    logs = [math.log(v) for v in values if v > 0]
    dropped = len(values) - len(logs)
    if dropped:
        nans = sum(1 for v in values if math.isnan(v))
        detail = f" ({nans} NaN)" if nans else ""
        message = (
            f"geometric_mean: dropping {dropped} non-positive or "
            f"undefined value(s){detail} out of {len(values)}; the "
            "reported mean covers only the positive entries"
        )
        if strict:
            raise ValueError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean (the paper reports arithmetic averages).

    ``nan`` entries — undefined ratios from degenerate baselines — are
    skipped with a :class:`RuntimeWarning` instead of poisoning the
    whole mean.
    """
    values = list(values)
    kept = [v for v in values if not math.isnan(v)]
    if len(kept) != len(values):
        warnings.warn(
            f"arithmetic_mean: skipping {len(values) - len(kept)} NaN "
            f"value(s) out of {len(values)}",
            RuntimeWarning, stacklevel=2,
        )
    if not kept:
        return 0.0
    return sum(kept) / len(kept)
