"""Generic (application × policy × oversubscription) experiment engine.

Every figure/table harness is a thin layer over :func:`run_application`
and :class:`ResultMatrix`.  Policies are constructed per run by name; RRIP
receives the paper's per-pattern configuration (distant insertion and a
128-fault delay threshold for type II applications, long insertion and no
threshold otherwise — Section V-B), and CLOCK-Pro is sized to the run's
capacity with the paper's fixed ``m_c = 128``.
"""

from __future__ import annotations

import math
import os
import signal
import sys
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.core.hpe import HPEConfig, HPEPolicy
from repro import obs as obs_module
from repro import resil as resil_module
from repro.obs import MetricsRegistry, Observation
from repro.resil import (
    ChaosSpec,
    JobFailure,
    MatrixInterrupted,
    RunJournal,
    SupervisorInterrupted,
    WorkerSupervisor,
)
from repro.resil import chaos as resil_chaos
from repro.resil import journal as resil_journal
from repro.resil import supervisor as resil_supervisor
from repro.scenarios.spec import (
    DEFAULT_SEED,
    PAPER_FAMILY,
    MatrixSpec,
    ScenarioError,
    ScenarioSpec,
)
from repro.sim import cache as sim_cache
from repro.policies import (
    ARCPolicy,
    CARPolicy,
    ClockProPolicy,
    EvictionPolicy,
    FIFOPolicy,
    IdealPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    RRIPConfig,
    RRIPPolicy,
    WSClockPolicy,
)
from repro.sim.config import GPUConfig
from repro.sim.engine import UVMSimulator
from repro.sim.results import SimulationResult
from repro.workloads.base import Trace
from repro.workloads.suite import APPLICATION_ORDER, ApplicationSpec, get_application

#: Policy names accepted by :func:`make_policy`, in report order.
POLICY_NAMES = (
    "ideal", "lru", "random", "rrip", "clock-pro", "hpe",
    "fifo", "lfu", "arc", "car", "wsclock",
)

#: The two oversubscription rates the paper evaluates (Section V).
PAPER_RATES = (0.75, 0.50)

# DEFAULT_SEED is defined in repro.scenarios.spec (the identity
# authority) and re-exported here for the harnesses that import it.

#: Environment variable selecting the default worker count for
#: :func:`run_matrix` (``0`` means "one worker per CPU").
ENV_JOBS = "REPRO_JOBS"

#: Environment variable gating the shared-memory trace store used by
#: parallel matrices (default on; ``0``/``false``/``off`` disable).
ENV_SHARED_TRACES = "REPRO_SHARED_TRACES"


def shared_traces_enabled() -> bool:
    """Should parallel matrices publish traces over shared memory?"""
    raw = os.environ.get(ENV_SHARED_TRACES, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


def make_policy(
    name: str,
    capacity: int,
    spec: Optional[ApplicationSpec] = None,
    hpe_config: Optional[HPEConfig] = None,
    seed: int = DEFAULT_SEED,
) -> EvictionPolicy:
    """Construct a fresh policy instance for one run."""
    name = name.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    if name == "rrip":
        thrashing = spec.is_thrashing_type if spec is not None else False
        return RRIPPolicy(RRIPConfig.for_pattern(thrashing))
    if name == "clock-pro":
        return ClockProPolicy(capacity=capacity)
    if name == "ideal":
        return IdealPolicy()
    if name == "hpe":
        return HPEPolicy(hpe_config or HPEConfig())
    if name == "fifo":
        return FIFOPolicy()
    if name == "lfu":
        return LFUPolicy()
    if name == "arc":
        return ARCPolicy(capacity=capacity)
    if name == "car":
        return CARPolicy(capacity=capacity)
    if name == "wsclock":
        return WSClockPolicy()
    raise ValueError(f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation run."""

    app: str
    policy: str
    rate: float


class TraceCache:
    """In-memory LRU of built traces per (abbr, seed, scale).

    Misses fall through to the persistent disk memo
    (:func:`repro.sim.cache.load_or_build_trace`), so a trace is
    generated at most once per machine.  The in-memory layer is bounded:
    the full 23-application suite fits comfortably, but long-lived
    sessions sweeping seeds/scales no longer grow without limit.
    """

    #: Default bound — the whole suite at two (seed, scale) settings.
    DEFAULT_MAX_ENTRIES = 64

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._cache: OrderedDict[tuple[str, int, float], Trace] = OrderedDict()
        #: Optional :class:`repro.workloads.trace_io.TraceStore` consulted
        #: on a miss before the disk memo (worker processes of a parallel
        #: matrix attach the parent's published store here).
        self.store = None

    def attach_store(self, store) -> None:
        """Serve future misses from a shared-memory trace store first."""
        self.store = store

    def get(self, abbr: str, seed: int = DEFAULT_SEED, scale: float = 1.0) -> Trace:
        key = (abbr.upper(), seed, scale)
        trace = self._cache.get(key)
        if trace is not None:
            self._cache.move_to_end(key)
            return trace
        if self.store is not None:
            trace = self.store.get(abbr, seed, scale)
        if trace is None:
            trace = sim_cache.load_or_build_trace(abbr, seed, scale)
        self._cache[key] = trace
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return trace

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


#: Module-level cache shared by all harnesses in one process.
_TRACES = TraceCache()


def clear_trace_cache() -> None:
    """Drop every in-memory trace (the CLI ``cache clear`` entry point)."""
    _TRACES.clear()


def run_application(
    app: str,
    policy: str,
    rate: float,
    *,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
    prefetch_degree: int = 0,
    use_cache: Optional[bool] = None,
    obs=None,
) -> SimulationResult:
    """Run one (application, policy, oversubscription-rate) simulation.

    A thin adapter over :func:`run_spec`: the arguments are folded into
    a :class:`~repro.scenarios.spec.ScenarioSpec`, whose canonical form
    keys the persistent cache (see :mod:`repro.sim.cache`).
    ``use_cache=False`` forces a fresh simulation for this call only.

    ``obs`` selects observability for this run: ``None`` consults the
    process-wide setting (``REPRO_OBS`` / ``--obs``), ``False`` forces
    it off, ``True`` builds a fresh registry-only
    :class:`~repro.obs.Observation`, and an ``Observation`` instance is
    used as-is (event traces included).  Observed runs always simulate —
    a cached result has no trace or time-series to offer — and are not
    stored back, keeping cache entries free of observation payloads.
    """
    return run_spec(
        ScenarioSpec(
            workload=app,
            policy=policy,
            rate=rate,
            seed=seed,
            scale=scale,
            config=config,
            hpe_config=hpe_config,
            prefetch_degree=prefetch_degree,
        ),
        use_cache=use_cache,
        obs=obs,
    )


def run_spec(
    spec: ScenarioSpec,
    *,
    use_cache: Optional[bool] = None,
    obs=None,
) -> SimulationResult:
    """Run (or serve from cache) the simulation ``spec`` describes.

    The cached entry point: the result is memoised under
    ``spec.digest()`` — the SHA-256 of the spec's canonical identity
    string — so every caller that goes through a spec shares entries by
    construction.  See :func:`run_application` for the ``obs`` contract.
    """
    if spec.family != PAPER_FAMILY:
        raise ScenarioError(
            f"workload family {spec.family!r} has no runnable backend yet "
            f"(only {PAPER_FAMILY!r} scenarios simulate)"
        )
    if obs is None:
        obs = obs_module.enabled()
    if obs is False:
        observation = None
    elif obs is True:
        observation = Observation()
    else:
        observation = obs
    caching = sim_cache.cache_enabled() if use_cache is None else use_cache
    if observation is not None:
        caching = False
    digest = spec.digest()
    if caching:
        cached = sim_cache.result_cache().get(digest)
        if cached is not None:
            return cached
    app_spec = get_application(spec.workload)
    trace = _TRACES.get(spec.workload, spec.seed, spec.scale)
    capacity = trace.capacity_for(spec.rate)
    policy_obj = make_policy(
        spec.policy, capacity, spec=app_spec,
        hpe_config=spec.hpe_config, seed=spec.seed,
    )
    simulator = UVMSimulator.for_scenario(
        spec, policy_obj, capacity, obs=observation
    )
    result = simulator.run(
        trace.pages, workload_name=app_spec.abbr, fast=spec.fastpath
    )
    result.extras["policy"] = policy_obj
    result.extras["pattern_type"] = app_spec.pattern_type
    result.extras["rate"] = spec.rate
    result.extras["scenario_digest"] = digest
    if observation is not None:
        sim_cache.result_cache().stats.observe_into(observation.registry)
        result.extras["metrics"] = observation.registry.to_dict()
    if caching:
        try:
            sim_cache.result_cache().put(digest, result)
        except (OSError, RecursionError):
            pass  # an unwritable/unpicklable entry must never fail the run
    return result


@dataclass
class ResultMatrix:
    """Results keyed by (app, policy, rate) with derived-metric helpers.

    A matrix can be *degraded*: cells whose retries were exhausted carry
    an explicit :class:`~repro.resil.JobFailure` in :attr:`failures`
    instead of a result.  Derived-metric helpers (:meth:`speedup`,
    :meth:`eviction_ratio`) return ``nan`` for any ratio touching a
    failed cell — the downstream means already skip NaN with a warning —
    so tables and figures render with flagged holes instead of raising.
    """

    results: dict[RunKey, SimulationResult] = field(default_factory=dict)
    #: Union of the per-run metric registries (observed runs only).
    #: Parallel workers serialise their registries inside
    #: ``extras["metrics"]``; :meth:`put` folds them back here, so the
    #: parent process sees one merged registry for the whole matrix.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Cells whose retries were exhausted (explicit, never raising).
    failures: dict[RunKey, JobFailure] = field(default_factory=dict)
    #: The run id whose journal recorded this matrix (when journaled).
    run_id: str = ""
    #: Every key in fold order (results and failures interleaved).
    _order: list[RunKey] = field(default_factory=list)

    def put(self, key: RunKey, result: SimulationResult) -> None:
        if key not in self.results and key not in self.failures:
            self._order.append(key)
        self.failures.pop(key, None)
        self.results[key] = result
        run_metrics = result.extras.get("metrics")
        if run_metrics:
            self.metrics.merge(MetricsRegistry.from_dict(run_metrics))

    def record_failure(self, key: RunKey, failure: JobFailure) -> None:
        """Mark one cell as exhausted — the matrix degrades, not raises."""
        if key not in self.results and key not in self.failures:
            self._order.append(key)
        self.failures[key] = failure

    @property
    def degraded(self) -> bool:
        """Does any cell carry a failure instead of a result?"""
        return bool(self.failures)

    def failure_lines(self) -> list[str]:
        """One human-readable line per failed cell, in fold order."""
        return [
            self.failures[key].render()
            for key in self._order
            if key in self.failures
        ]

    def get(self, app: str, policy: str, rate: float) -> SimulationResult:
        return self.results[RunKey(app.upper(), policy, rate)]

    def _lookup(
        self, app: str, policy: str, rate: float
    ) -> Optional[SimulationResult]:
        return self.results.get(RunKey(app.upper(), policy, rate))

    def speedup(self, app: str, policy: str, baseline: str, rate: float) -> float:
        """IPC of ``policy`` over ``baseline`` (``nan`` on a failed cell)."""
        cell = self._lookup(app, policy, rate)
        base = self._lookup(app, baseline, rate)
        if cell is None or base is None:
            return float("nan")
        return cell.speedup_over(base)

    def eviction_ratio(self, app: str, policy: str, baseline: str, rate: float) -> float:
        """Evictions relative to ``baseline`` (``nan`` on a failed cell)."""
        cell = self._lookup(app, policy, rate)
        base = self._lookup(app, baseline, rate)
        if cell is None or base is None:
            return float("nan")
        return cell.evictions_normalized_to(base)

    def apps(self) -> list[str]:
        seen: list[str] = []
        for key in self._order if self._order else self.results:
            if key.app not in seen:
                seen.append(key.app)
        return seen


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count for :func:`run_matrix`.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (default
    1, i.e. serial); ``0`` or a negative value means one worker per CPU.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


#: Worker-process memo of the attached shared trace store, keyed by the
#: segment name so successive jobs of one matrix attach exactly once.
_ATTACHED_STORE: Optional[tuple[str, object]] = None


def _attach_shared_traces(handle) -> None:
    """Attach the parent's trace store in this worker (idempotent).

    Any failure to attach is silent — the worker simply builds traces
    itself, exactly as it would with no store published.
    """
    global _ATTACHED_STORE
    if _ATTACHED_STORE is not None and _ATTACHED_STORE[0] == handle.shm_name:
        return
    from repro.workloads.trace_io import TraceStore

    store = TraceStore.attach(handle)
    if store is None:
        return
    # Worker-local memo by design: each worker attaches its own view of
    # the shared-memory store; nothing must propagate back to the parent.
    _ATTACHED_STORE = (handle.shm_name, store)  # noqa: REP011
    _TRACES.attach_store(store)


def _run_job(job: tuple) -> SimulationResult:
    """Pool entry point: one scenario-cell simulation.

    Lives at module level so it pickles under any multiprocessing start
    method.  Only the frozen :class:`ScenarioSpec` and (optionally) a
    shared-memory trace store handle cross the process boundary inbound
    — the worker maps the parent's published traces, or builds its own
    when there is no store — and only the :class:`SimulationResult`
    crosses back.
    """
    cell, observe, handle = job
    if handle is not None:
        _attach_shared_traces(handle)
    # Workers observe registry-only (obs=True): an Observation carrying
    # an open JSONL handle must never cross the process boundary.  The
    # registry travels back serialised inside ``extras["metrics"]``.
    return run_spec(cell, obs=bool(observe))


def matrix_run_id(
    policies: Sequence[str],
    rates: Sequence[float],
    apps: Sequence[str],
    *,
    seed: int,
    scale: float,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
) -> tuple[str, str]:
    """Deterministic (run id, full spec hash) for one matrix spec.

    A thin adapter over :meth:`~repro.scenarios.spec.MatrixSpec.run_id`
    — the id is a pure function of the *normalised* spec (``None`` and
    the explicit default ``GPUConfig()`` are the same matrix), so
    re-invoking the same matrix — by hand or via ``hpe-repro resume`` —
    lands on the same journal and picks up where the interrupted run
    stopped.
    """
    spec = MatrixSpec(
        policies=tuple(policies),
        rates=tuple(rates),
        apps=tuple(apps),
        seed=seed,
        scale=scale,
        config=config,
        hpe_config=hpe_config,
    )
    return spec.run_id(), spec.spec_hash()


class _MatrixSigTerm(BaseException):
    """Internal: SIGTERM converted to an exception for clean shutdown."""


class _SerialCellTimeout(Exception):
    """Internal: a serial (jobs=1) cell ran past its wall-clock budget."""


class _SerialDeadline:
    """SIGALRM-based wall-clock enforcement for serial cells.

    ``jobs=1`` runs in-process, so there is no worker to kill — but an
    interval timer can still interrupt a runaway cell.  Armed around
    each attempt; disarmed (and the previous handler restored) the
    moment the attempt finishes, so the alarm can never fire inside
    journaling or cache writes.  Enforcement is skipped — exactly as
    documented for ``REPRO_WORKER_TIMEOUT=0`` — when the timeout is 0,
    off the main thread, or the platform lacks ``setitimer``.
    """

    def __init__(self, timeout: float) -> None:
        self.timeout = timeout

    @property
    def enforcing(self) -> bool:
        return (
            self.timeout > 0
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )

    def __enter__(self) -> "_SerialDeadline":
        if not self.enforcing:
            return self

        def handler(_signum: int, _frame: object) -> None:
            raise _SerialCellTimeout()

        self._previous = signal.signal(signal.SIGALRM, handler)
        signal.setitimer(signal.ITIMER_REAL, self.timeout)
        return self

    def __exit__(self, *_exc: object) -> None:
        if not self.enforcing:
            return
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, self._previous)


def _chaos_serial_raise(action: str, key: str, attempt: int) -> None:
    """Serial-mode chaos: raise the stand-in exception for ``action``."""
    if action == "crash":
        raise resil_chaos.ChaosCrashError(
            f"injected crash for {key} (attempt {attempt})"
        )
    if action == "hang":
        raise resil_chaos.ChaosHangError(
            f"injected hang for {key} (attempt {attempt})"
        )
    raise resil_chaos.ChaosTransientError(
        f"injected transient failure for {key} (attempt {attempt})"
    )


def run_matrix(
    policies: Sequence[str],
    rates: Sequence[float] = PAPER_RATES,
    apps: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    config: Optional[GPUConfig] = None,
    hpe_config: Optional[HPEConfig] = None,
    progress: bool = False,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    chaos: Optional[Union[ChaosSpec, str]] = None,
    journal: Optional[bool] = None,
) -> ResultMatrix:
    """Run the cartesian product and collect a :class:`ResultMatrix`.

    A thin adapter over :func:`run_scenario`: the grid arguments are
    folded into a :class:`~repro.scenarios.spec.MatrixSpec`, so the
    legacy signature and an explicit spec produce identical run ids,
    journals, and cache digests by construction.

    With ``jobs > 1`` the (rate × app × policy) runs fan out over a
    supervised worker pool (:class:`~repro.resil.WorkerSupervisor`):
    each job gets a wall-clock ``timeout`` and up to ``retries`` extra
    attempts with exponential backoff, a crashed or hung worker costs
    one retry (never the matrix), and results are folded in the same
    deterministic order the serial path produces.  Workers build traces
    locally (traces are never pickled across the boundary).  ``jobs=1``
    runs serially in this process with the same retry discipline; the
    wall-clock timeout is enforced there too via a SIGALRM interval
    timer (``REPRO_WORKER_TIMEOUT=0`` disables enforcement on every
    path — the documented escape hatch for debugging a slow cell).

    When the persistent cache is on (and the run is not observed), every
    completion is recorded in an append-only run journal keyed by the
    cache digest; an interrupted run — ``KeyboardInterrupt``, SIGTERM,
    or an injected chaos interrupt — shuts down cleanly (pool
    terminated, journal and metrics flushed) and raises
    :class:`~repro.resil.MatrixInterrupted`; re-running the same spec
    (or ``hpe-repro resume <run-id>``) picks up from the completed jobs
    and produces bit-identical results to an uninterrupted run.

    Cells whose retries are exhausted become explicit failure records on
    the matrix (see :class:`ResultMatrix`) — never an exception.

    ``chaos`` injects deterministic faults for testing (``None`` reads
    ``REPRO_CHAOS``); see :mod:`repro.resil.chaos` for the grammar.

    Progress lines go to stderr so piped harness output is never
    corrupted.
    """
    spec = MatrixSpec(
        policies=tuple(policies),
        rates=tuple(rates),
        apps=tuple(apps) if apps is not None else tuple(APPLICATION_ORDER),
        seed=seed,
        scale=scale,
        config=config,
        hpe_config=hpe_config,
    )
    return run_scenario(
        spec,
        progress=progress, jobs=jobs, timeout=timeout, retries=retries,
        backoff=backoff, chaos=chaos, journal=journal,
    )


def run_scenario(
    spec: MatrixSpec,
    *,
    progress: bool = False,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    chaos: Optional[Union[ChaosSpec, str]] = None,
    journal: Optional[bool] = None,
) -> ResultMatrix:
    """Run every cell of ``spec`` — the scenario-first matrix engine.

    ``spec`` is the single identity authority for the whole run: the
    journal run id is ``spec.run_id()``, the ``run_start`` record
    carries ``spec.spec_hash()``, and each cell is cached under its
    :meth:`~repro.scenarios.spec.ScenarioSpec.digest`.  See
    :func:`run_matrix` for the execution/retry/journal contract.
    """
    cells = spec.cells()
    keys = [
        RunKey(cell.workload, cell.policy, cell.rate) for cell in cells
    ]
    cell_specs = dict(zip(keys, cells))
    matrix = ResultMatrix()
    if not keys:
        # No work: return the empty matrix before any pool is sized.
        return matrix
    jobs = resolve_jobs(jobs)
    observing = obs_module.enabled()
    chaos_spec = resil_chaos.resolve(chaos)
    caching = sim_cache.cache_enabled() and not observing
    run_id = spec.run_id()
    spec_hash = spec.spec_hash()
    matrix.run_id = run_id
    journaling = (
        journal if journal is not None
        else resil_module.journal_enabled() and caching
    )
    digests = {key: cell_specs[key].digest() for key in keys}

    def note(key: RunKey, suffix: str = "...") -> None:
        if progress:
            print(
                f"running {key.app} / {key.policy} @ {key.rate:.0%} {suffix}",
                file=sys.stderr, flush=True,
            )

    run_journal: Optional[RunJournal] = None
    if journaling:
        run_journal = RunJournal(run_id)
        run_journal.append(
            "run_start",
            schema=resil_journal.JOURNAL_SCHEMA_VERSION,
            run_id=run_id,
            spec_hash=spec_hash,
            family=spec.family,
            policies=list(spec.policies),
            rates=list(spec.rates),
            apps=list(spec.apps),
            seed=spec.seed,
            scale=spec.scale,
            prefetch=spec.prefetch_degree,
            total_jobs=len(keys),
        )

    # Terminal-outcome tallies, updated as outcomes land (the matrix
    # itself is only folded after a supervised run finishes, so it
    # undercounts at interrupt time).
    counts = {"done": 0, "failed": 0}

    def journal_done(key: RunKey, attempts: int, elapsed: float) -> None:
        counts["done"] += 1
        if run_journal is not None:
            run_journal.append(
                "job_done",
                app=key.app, policy=key.policy, rate=key.rate,
                digest=digests[key], cached=caching,
                attempts=attempts, elapsed=round(elapsed, 6),
            )

    def journal_failed(key: RunKey, failure: JobFailure) -> None:
        counts["failed"] += 1
        if run_journal is not None:
            run_journal.append(
                "job_failed",
                app=key.app, policy=key.policy, rate=key.rate,
                digest=digests[key], error=failure.error_type,
                message=failure.message[:500], attempts=failure.attempts,
                elapsed=round(failure.elapsed, 6),
            )

    def finalize(interrupted: bool) -> None:
        """Flush the journal (and its terminal record) exactly once."""
        if run_journal is None:
            return
        if interrupted:
            run_journal.append(
                "run_interrupted",
                completed=counts["done"],
                remaining=len(keys) - counts["done"] - counts["failed"],
            )
        else:
            run_journal.append(
                "run_end",
                completed=counts["done"], failed=counts["failed"],
            )
        run_journal.close()

    # Resume/warm path: serve any already-cached cell without touching
    # the pool.  This is what makes an interrupted run resumable — the
    # journal records completions by cache digest, and the cache serves
    # them bit-identically on the next invocation of the same spec.
    remaining: list[RunKey] = []
    for key in keys:
        cached_result = (
            sim_cache.result_cache().get(digests[key]) if caching else None
        )
        if cached_result is not None:
            note(key, "(cached)")
            matrix.put(key, cached_result)
            journal_done(key, attempts=0, elapsed=0.0)
        else:
            remaining.append(key)
    if not remaining:
        finalize(interrupted=False)
        return matrix

    def install_sigterm() -> Optional[object]:
        def handler(_signum: int, _frame: object) -> None:
            raise _MatrixSigTerm()
        if threading.current_thread() is not threading.main_thread():
            return None
        try:
            return signal.signal(signal.SIGTERM, handler)
        except (ValueError, OSError):
            return None

    def restore_sigterm(previous: Optional[object]) -> None:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except (ValueError, OSError, TypeError):
                pass

    previous_handler = install_sigterm()
    try:
        # jobs > 1 always takes the supervised path — even for a single
        # remaining cell (e.g. a resume with one missing job) — because
        # the supervisor enforces the wall-clock timeout by killing the
        # worker; the serial path enforces it with SIGALRM, which can
        # interrupt a runaway cell but not reclaim one stuck in C code.
        if jobs == 1:
            _run_serial(
                matrix, remaining, cell_specs,
                chaos_spec=chaos_spec,
                timeout=resil_supervisor.resolve_timeout(timeout),
                retries=resil_supervisor.resolve_retries(retries),
                backoff=resil_supervisor.resolve_backoff(backoff),
                note=note, journal_done=journal_done,
                journal_failed=journal_failed,
            )
        else:
            trace_store = _publish_traces(
                remaining, seed=spec.seed, scale=spec.scale
            )
            try:
                _run_supervised(
                    matrix, remaining, cell_specs,
                    observing=observing,
                    jobs=jobs, timeout=timeout, retries=retries,
                    backoff=backoff, chaos_spec=chaos_spec,
                    trace_store=trace_store,
                    note=note, journal_done=journal_done,
                    journal_failed=journal_failed,
                )
            finally:
                if trace_store is not None:
                    trace_store.close()
                    trace_store.unlink()
    except (KeyboardInterrupt, SupervisorInterrupted, _MatrixSigTerm) as exc:
        # Clean shutdown: the pool is already terminated (supervisor
        # shuts down in its finally), the journal gets its interruption
        # record and fsync, and the caller gets a typed, resumable error.
        finalize(interrupted=True)
        done = counts["done"] + counts["failed"]
        raise MatrixInterrupted(run_id, done, len(keys) - done) from exc
    finally:
        restore_sigterm(previous_handler)

    _fold_resil_metrics(matrix)
    finalize(interrupted=False)
    return matrix


def _run_serial(
    matrix: ResultMatrix,
    keys: Sequence[RunKey],
    cell_specs: dict[RunKey, ScenarioSpec],
    *,
    chaos_spec: Optional[ChaosSpec],
    timeout: float,
    retries: int,
    backoff: float,
    note,
    journal_done,
    journal_failed,
) -> None:
    """Serial execution with the same retry/chaos discipline as the pool.

    Chaos crash/hang actions degrade to in-process exceptions
    (:class:`~repro.resil.ChaosCrashError` / ``ChaosHangError``) so
    every failure mode stays testable without subprocesses.  The
    per-cell wall-clock ``timeout`` is enforced too — via a SIGALRM
    interval timer (:class:`_SerialDeadline`) rather than a process
    kill — so a single runaway cell can no longer wedge a serial run;
    ``REPRO_WORKER_TIMEOUT=0`` is the documented escape hatch.
    """
    previous_spec = resil_chaos.active_spec()
    if chaos_spec is not None:
        resil_chaos.activate(chaos_spec)
    completions = 0
    total_retries = 0
    try:
        for key in keys:
            note(key)
            job_key = f"{key.app}|{key.policy}|{key.rate!r}"
            started = time.monotonic()
            attempt = 1
            while True:
                try:
                    with _SerialDeadline(timeout):
                        if chaos_spec is not None:
                            action = chaos_spec.worker_action(
                                job_key, attempt
                            )
                            if action is not None:
                                _chaos_serial_raise(action, job_key, attempt)
                        result = run_spec(cell_specs[key])
                except Exception as exc:  # noqa: BLE001 — degraded, not hidden
                    if attempt <= retries:
                        total_retries += 1
                        delay = resil_supervisor.backoff_delay(
                            backoff, job_key, attempt
                        )
                        attempt += 1
                        if delay:
                            time.sleep(min(delay, 5.0))
                        continue
                    elapsed = time.monotonic() - started
                    if isinstance(exc, _SerialCellTimeout):
                        # Match the supervised path's failure identity.
                        error_type = "JobTimeout"
                        message = (
                            f"no result within {timeout:.1f}s "
                            "(serial in-process deadline)"
                        )
                    else:
                        error_type = type(exc).__name__
                        message = str(exc)
                    failure = JobFailure(
                        key=job_key,
                        error_type=error_type,
                        message=message,
                        attempts=attempt,
                        elapsed=elapsed,
                    )
                    matrix.record_failure(key, failure)
                    journal_failed(key, failure)
                    break
                else:
                    matrix.put(key, result)
                    journal_done(
                        key, attempts=attempt,
                        elapsed=time.monotonic() - started,
                    )
                    break
            completions += 1
            if chaos_spec is not None and chaos_spec.should_interrupt(
                completions
            ):
                raise SupervisorInterrupted(
                    f"chaos sigterm after {completions} completion(s)"
                )
    finally:
        if total_retries:
            matrix.metrics.set_gauge("resil.retries", total_retries)
        if chaos_spec is not None:
            resil_chaos.activate(previous_spec)


def _publish_traces(keys: Sequence[RunKey], *, seed: int, scale: float):
    """Build the distinct traces ``keys`` need and publish them over
    shared memory; ``None`` when disabled or unavailable.

    The parent pays one build (or disk load) per application — which it
    would pay anyway for any serial cell — and every worker then maps
    the same read-only buffer instead of regenerating its own copies.
    """
    if not shared_traces_enabled():
        return None
    from repro.workloads.trace_io import TraceStore

    traces = {}
    for key in keys:
        cache_key = (key.app, seed, scale)
        if cache_key not in traces:
            traces[cache_key] = _TRACES.get(key.app, seed, scale)
    return TraceStore.publish(traces)


def _run_supervised(
    matrix: ResultMatrix,
    keys: Sequence[RunKey],
    cell_specs: dict[RunKey, ScenarioSpec],
    *,
    observing: bool,
    jobs: int,
    timeout: Optional[float],
    retries: Optional[int],
    backoff: Optional[float],
    chaos_spec: Optional[ChaosSpec],
    trace_store=None,
    note=None,
    journal_done=None,
    journal_failed=None,
) -> None:
    """Fan ``keys`` out over a supervised worker pool and fold results.

    Outcomes are journaled as they land (so an interrupt loses nothing)
    but folded into the matrix in deterministic key order, keeping the
    parallel path bit-identical to the serial one.
    """
    # The observe flag travels in the payload: a spawn-context worker
    # re-imports the world and loses any configure(enabled=True) made by
    # the CLI in this process.
    trace_handle = trace_store.handle if trace_store is not None else None
    job_keys = {key: f"{key.app}|{key.policy}|{key.rate!r}" for key in keys}
    by_job_key = {job_keys[key]: key for key in keys}
    items = [
        (
            job_keys[key],
            (cell_specs[key], observing, trace_handle),
        )
        for key in keys
    ]
    supervisor = WorkerSupervisor(
        _run_job, min(jobs, len(keys)),
        timeout=timeout, retries=retries, backoff=backoff, chaos=chaos_spec,
    )

    def on_outcome(outcome) -> None:
        key = by_job_key[outcome.key]
        if outcome.ok:
            journal_done(key, attempts=outcome.attempts,
                         elapsed=outcome.elapsed)
        else:
            journal_failed(key, outcome.failure)

    outcomes = supervisor.run(items, on_outcome=on_outcome)
    # Gauges only when there is something to report: a clean, unobserved
    # matrix keeps its metrics registry empty (the obs contract).
    stat_gauges = {
        "resil.retries": supervisor.stats.retries,
        "resil.crashes": supervisor.stats.crashes,
        "resil.timeouts": supervisor.stats.timeouts,
        "resil.transient_errors": supervisor.stats.transient_errors,
    }
    for name, value in stat_gauges.items():
        if value:
            matrix.metrics.set_gauge(name, value)
    for key in keys:
        outcome = outcomes.get(job_keys[key])
        if outcome is None:
            continue
        note(key)
        if outcome.ok:
            matrix.put(key, outcome.result)
        else:
            matrix.record_failure(key, outcome.failure)


def _fold_resil_metrics(matrix: ResultMatrix) -> None:
    """Degradation counters every consumer can read off the matrix.

    Only emitted for a degraded matrix — a clean, unobserved run keeps
    its metrics registry empty (the obs contract).
    """
    if matrix.failures:
        matrix.metrics.set_gauge("resil.degraded_cells", len(matrix.failures))
        matrix.metrics.set_gauge("resil.completed_cells", len(matrix.results))


#: Call sites that already warned about dropped mean inputs, keyed by
#: ``(helper, filename, lineno)``.  A figure sweeping 50 cells against a
#: degenerate baseline would otherwise repeat the identical warning 50
#: times, burying everything else — the *first* occurrence carries all
#: the signal, so each call site warns once per process.
_MEAN_WARNED: "set[tuple[str, str, int]]" = set()


def reset_mean_warnings() -> None:
    """Forget which call sites have warned (test isolation hook)."""
    _MEAN_WARNED.clear()


def _warn_mean_once(helper: str, message: str) -> None:
    """Emit ``message`` unless this caller's call site already warned."""
    caller = sys._getframe(2)
    site = (helper, caller.f_code.co_filename, caller.f_lineno)
    if site in _MEAN_WARNED:
        return
    _MEAN_WARNED.add(site)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def geometric_mean(values: Iterable[float], *, strict: bool = False) -> float:
    """Geometric mean over the positive, finite values.

    Non-positive values are undefined under a geometric mean, and ``nan``
    marks a ratio that does not exist (e.g. a zero-IPC baseline in
    :meth:`~repro.sim.results.SimulationResult.speedup_over`); dropping
    either silently could let a degenerate run *inflate* a reported
    mean, so any dropped value triggers a :class:`RuntimeWarning` — or a
    :class:`ValueError` under ``strict=True``.  (``nan > 0`` is false,
    so the positivity filter removes NaN too.)  The warning fires once
    per call site per process; see :func:`reset_mean_warnings`.
    """
    values = list(values)
    logs = [math.log(v) for v in values if v > 0]
    dropped = len(values) - len(logs)
    if dropped:
        nans = sum(1 for v in values if math.isnan(v))
        detail = f" ({nans} NaN)" if nans else ""
        message = (
            f"geometric_mean: dropping {dropped} non-positive or "
            f"undefined value(s){detail} out of {len(values)}; the "
            "reported mean covers only the positive entries"
        )
        if strict:
            raise ValueError(message)
        _warn_mean_once("geometric_mean", message)
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean (the paper reports arithmetic averages).

    ``nan`` entries — undefined ratios from degenerate baselines — are
    skipped with a :class:`RuntimeWarning` instead of poisoning the
    whole mean.  The warning fires once per call site per process; see
    :func:`reset_mean_warnings`.
    """
    values = list(values)
    kept = [v for v in values if not math.isnan(v)]
    if len(kept) != len(values):
        _warn_mean_once(
            "arithmetic_mean",
            f"arithmetic_mean: skipping {len(values) - len(kept)} NaN "
            f"value(s) out of {len(values)}",
        )
    if not kept:
        return 0.0
    return sum(kept) / len(kept)
