"""Experiment harnesses regenerating every table and figure of the paper."""

from repro.experiments.ablation import VARIANTS as ABLATION_VARIANTS
from repro.experiments.ablation import ablation

from repro.experiments.figures import (
    FIGURES,
    FigureResult,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.overhead import (
    OVERHEADS,
    classification_cost,
    core_load,
    hir_storage,
    search_cost,
)
from repro.experiments.runner import (
    DEFAULT_SEED,
    PAPER_RATES,
    POLICY_NAMES,
    ResultMatrix,
    RunKey,
    TraceCache,
    arithmetic_mean,
    geometric_mean,
    make_policy,
    run_application,
    run_matrix,
)
from repro.experiments.sensitivity import (
    SENSITIVITIES,
    prefetch,
    transfer_interval,
    walk_latency,
)
from repro.experiments.tables import TABLES, table1, table2, table3

__all__ = [
    "ABLATION_VARIANTS",
    "DEFAULT_SEED",
    "FIGURES",
    "FigureResult",
    "OVERHEADS",
    "PAPER_RATES",
    "POLICY_NAMES",
    "ResultMatrix",
    "RunKey",
    "SENSITIVITIES",
    "TABLES",
    "TraceCache",
    "ablation",
    "arithmetic_mean",
    "classification_cost",
    "core_load",
    "figure3",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "geometric_mean",
    "hir_storage",
    "make_policy",
    "prefetch",
    "run_application",
    "run_matrix",
    "search_cost",
    "table1",
    "table2",
    "table3",
    "transfer_interval",
    "walk_latency",
]
