"""Plain-text table formatting shared by every experiment harness.

Each harness returns structured rows; these helpers render them the way
the paper's figures would read as text (one row per application, means at
the bottom), so benchmark logs and EXPERIMENTS.md stay legible.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a fixed-width text table."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        )
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(render(v) for v in row) + " |")
    return "\n".join(lines)
