"""Sensitivity studies from Section V that are not standalone figures."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.hpe import HPEConfig
from repro.experiments.figures import FigureResult, _apps
from repro.experiments.runner import (
    DEFAULT_SEED,
    arithmetic_mean,
    run_application,
)
from repro.obs import finite_or_none
from repro.sim.config import GPUConfig


def transfer_interval(
    apps: Optional[Sequence[str]] = None,
    intervals: Sequence[int] = (1, 8, 16, 32, 64),
    rate: float = 0.75,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """§V-A: how often to ship HIR contents to the driver.

    The paper sweeps 1/8/16/32/64 page faults per transfer and picks 16
    as the best tradeoff between driver interruption frequency and the
    freshness of the hit information.
    """
    apps = _apps(apps)
    rows: list[list[object]] = []
    baseline: dict[str, float] = {}
    mean_row: list[object] = ["MEAN IPC (norm. to 16)"]
    ipc: dict[int, list[float]] = {}
    entries: dict[int, list[float]] = {}
    for interval in intervals:
        ipc[interval] = []
        entries[interval] = []
        for app in apps:
            result = run_application(
                app, "hpe", rate, seed=seed, scale=scale,
                hpe_config=HPEConfig(transfer_interval=interval),
            )
            ipc[interval].append(result.ipc)
            policy = result.extras["policy"]
            entries[interval].append(policy.hir.stats.mean_entries_per_transfer)
    base = arithmetic_mean(ipc[16]) if 16 in ipc else arithmetic_mean(
        ipc[intervals[0]]
    )
    for interval in intervals:
        rows.append([
            interval,
            arithmetic_mean(ipc[interval]) / base if base else 0.0,
            arithmetic_mean(entries[interval]),
        ])
    return FigureResult(
        "Sens.TI", f"Transfer-interval sensitivity ({rate:.0%} OS)",
        ["faults/transfer", "mean IPC (norm. 16)", "mean entries/transfer"],
        rows,
        ["paper: 16 is the best tradeoff between frequency and performance"],
    )


def walk_latency(
    apps: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = (8, 20),
    rate: float = 0.75,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """§V-B: page-walk latency has little influence on overall IPC."""
    apps = _apps(apps)
    rows: list[list[object]] = []
    for policy_name in ("lru", "hpe"):
        ipcs: dict[int, float] = {}
        for latency in latencies:
            config = GPUConfig().with_walk_latency(latency)
            values = [
                run_application(app, policy_name, rate, seed=seed,
                                scale=scale, config=config).ipc
                for app in apps
            ]
            ipcs[latency] = arithmetic_mean(values)
        base = ipcs[latencies[0]]
        row: list[object] = [policy_name]
        for latency in latencies:
            row.append(ipcs[latency] / base if base else 0.0)
        rows.append(row)
    return FigureResult(
        "Sens.WL", f"Page-walk-latency sensitivity ({rate:.0%} OS)",
        ["policy"] + [f"{lat} cycles" for lat in latencies], rows,
        ["paper: minimal performance difference between 8 and 20 cycles"],
    )


def prefetch(
    apps: Optional[Sequence[str]] = None,
    degrees: Sequence[int] = (0, 1, 3, 7, 15),
    rate: float = 0.75,
    policy: str = "hpe",
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Extension study: fault-around prefetching under oversubscription.

    Not in the paper (its runtime migrates one page per fault); real UVM
    runtimes fault-around in 64 KB chunks.  Sweeps the prefetch degree
    and reports mean faults and IPC: sequential workloads amortise fault
    service across prefetched pages, while prefetching into a thrashing
    memory adds eviction pressure — the interaction an eviction-policy
    study should quantify.

    Every cell goes through the cached :func:`run_application` entry
    point (``prefetch_degree`` is part of the scenario spec, hence the
    cache fingerprint), so re-running the sweep — or overlapping it with
    a ``prefetch-64k`` scenario run — costs nothing.
    """
    apps = _apps(apps)
    mean_faults: dict[int, float] = {}
    mean_ipc: dict[int, float] = {}
    for degree in degrees:
        faults: list[int] = []
        ipcs: list[float] = []
        for app in apps:
            result = run_application(
                app, policy, rate, seed=seed, scale=scale,
                prefetch_degree=degree,
            )
            faults.append(result.faults)
            ipcs.append(result.ipc)
        mean_faults[degree] = arithmetic_mean(faults)
        mean_ipc[degree] = arithmetic_mean(ipcs)
    # finite_or_none guards the baseline: NaN is truthy, so the old
    # ``base or 1.0`` idiom would silently propagate a degenerate
    # degree-0 mean into every normalised column.
    base_ipc = finite_or_none(mean_ipc[degrees[0]])
    rows: list[list[object]] = [
        [
            degree,
            mean_faults[degree],
            mean_ipc[degree] / base_ipc if base_ipc else float("nan"),
        ]
        for degree in degrees
    ]
    return FigureResult(
        "Sens.PF", f"Fault-around prefetch sweep ({policy}, {rate:.0%} OS)",
        ["prefetch degree", "mean faults",
         f"IPC (norm. degree {degrees[0]})"], rows,
        ["extension beyond the paper: degree 15 matches Pascal's 64 KB "
         "fault-around granularity"],
    )


SENSITIVITIES = {
    "prefetch": prefetch,
    "transfer-interval": transfer_interval,
    "walk-latency": walk_latency,
}
