"""Harnesses regenerating every figure of the paper's evaluation.

Each ``figureN`` function runs the simulations it needs and returns a
:class:`FigureResult` whose rows mirror the series the paper plots; call
:meth:`FigureResult.render` for a text table.  Absolute numbers differ
from the paper (different substrate, scaled footprints) — the *shape*
(who wins, by roughly what factor, where crossovers fall) is the
reproduction target, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.hpe import HPEConfig
from repro.core.strategies import StrategyKind
from repro.experiments.report import format_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    PAPER_RATES,
    ResultMatrix,
    arithmetic_mean,
    geometric_mean,
    run_application,
    run_matrix,
)
from repro.workloads.base import PatternType
from repro.workloads.suite import (
    APPLICATION_ORDER,
    APPLICATIONS,
    MANUAL_STRATEGY,
)


@dataclass
class FigureResult:
    """One regenerated figure: titled rows plus free-form notes."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        text = format_table(
            self.headers, self.rows, title=f"[{self.figure_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text


def _apps(apps: Optional[Sequence[str]]) -> list[str]:
    return list(apps) if apps is not None else list(APPLICATION_ORDER)


def _degraded_notes(matrix: ResultMatrix) -> list[str]:
    """Flag every failed cell so a degraded figure is never mistaken
    for a complete one (ratios touching those cells render as NaN)."""
    if not matrix.degraded:
        return []
    return [
        f"DEGRADED: {len(matrix.failures)} cell(s) failed after retries; "
        "affected ratios are NaN and excluded from means"
    ] + [f"DEGRADED: {line}" for line in matrix.failure_lines()]


def _pattern(app: str) -> str:
    return APPLICATIONS[app].pattern_type.roman


def _manual_config(**overrides: object) -> HPEConfig:
    """Sensitivity-study configuration (Section V-A).

    Dynamic adjustment off, ideal hit-information model (no HIR), and a
    manually selected strategy per application (applied by the caller via
    ``forced_strategy``).
    """
    defaults = dict(use_hir=False, enable_adjustment=False)
    defaults.update(overrides)
    return HPEConfig(**defaults)  # type: ignore[arg-type]


def _forced(app: str) -> StrategyKind:
    return (
        StrategyKind.MRU_C
        if MANUAL_STRATEGY[app] == "mru-c"
        else StrategyKind.LRU
    )


# ----------------------------------------------------------------------
# Fig. 3 — evictions of LRU and RRIP normalised to Ideal (75%)
# ----------------------------------------------------------------------


def figure3(
    apps: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Motivation: LRU/RRIP evictions over Belady's MIN at 75% OS."""
    apps = _apps(apps)
    matrix = run_matrix(["ideal", "lru", "rrip"], rates=[0.75], apps=apps,
                        seed=seed, scale=scale)
    rows: list[list[object]] = []
    lru_ratios, rrip_ratios = [], []
    for app in apps:
        lru = matrix.eviction_ratio(app, "lru", "ideal", 0.75)
        rrip = matrix.eviction_ratio(app, "rrip", "ideal", 0.75)
        lru_ratios.append(lru)
        rrip_ratios.append(rrip)
        rows.append([app, _pattern(app), lru, rrip])
    rows.append(["MEAN", "-", arithmetic_mean(lru_ratios),
                 arithmetic_mean(rrip_ratios)])
    return FigureResult(
        "Fig.3", "Evictions of LRU and RRIP normalised to Ideal (75% OS)",
        ["app", "type", "LRU/Ideal", "RRIP/Ideal"], rows,
        ["paper shape: RRIP thrashes on SRD/HSD; LRU fine for type I "
         "(except GEM) and type VI; both poor for BFS/HIS/SPV"]
        + _degraded_notes(matrix),
    )


# ----------------------------------------------------------------------
# Fig. 7 / Fig. 8 — sensitivity to page set size and interval length
# ----------------------------------------------------------------------


def _sensitivity_by_type(
    configs: dict[int, HPEConfig],
    baseline_value: int,
    apps: Sequence[str],
    seed: int,
    scale: float,
    rate: float = 0.75,
) -> tuple[list[list[object]], list[int]]:
    """Average per-pattern-type IPC for each config, normalised."""
    values = sorted(configs)
    ipc: dict[tuple[str, int], float] = {}
    for value, config in configs.items():
        for app in apps:
            result = run_application(
                app, "hpe", rate, seed=seed, scale=scale,
                hpe_config=HPEConfig(
                    page_set_size=config.page_set_size,
                    interval_length=config.interval_length,
                    transfer_interval=config.transfer_interval,
                    use_hir=config.use_hir,
                    enable_adjustment=config.enable_adjustment,
                    forced_strategy=_forced(app),
                ),
            )
            ipc[(app, value)] = result.ipc
    rows: list[list[object]] = []
    for pattern in PatternType:
        members = [a for a in apps if APPLICATIONS[a].pattern_type is pattern]
        if not members:
            continue
        base = arithmetic_mean(ipc[(a, baseline_value)] for a in members)
        row: list[object] = [f"type {pattern.roman}"]
        for value in values:
            mean_ipc = arithmetic_mean(ipc[(a, value)] for a in members)
            row.append(mean_ipc / base if base else 0.0)
        rows.append(row)
    overall_base = arithmetic_mean(ipc[(a, baseline_value)] for a in apps)
    row = ["MEAN"]
    for value in values:
        mean_ipc = arithmetic_mean(ipc[(a, value)] for a in apps)
        row.append(mean_ipc / overall_base if overall_base else 0.0)
    rows.append(row)
    return rows, values


def figure7(
    apps: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    sizes: Sequence[int] = (8, 16, 32),
) -> FigureResult:
    """HPE's sensitivity to page set size (interval length 64)."""
    apps = _apps(apps)
    configs = {
        size: _manual_config(page_set_size=size, interval_length=64)
        for size in sizes
    }
    rows, values = _sensitivity_by_type(configs, values_base(sizes), apps, seed, scale)
    return FigureResult(
        "Fig.7", "Sensitivity to page set size (IPC normalised to size "
        f"{values_base(sizes)})",
        ["pattern"] + [f"size {v}" for v in values], rows,
        ["paper shape: all sizes within ~10%; 16 chosen as a compromise"],
    )


def figure8(
    apps: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    lengths: Sequence[int] = (32, 64, 128),
) -> FigureResult:
    """HPE's sensitivity to interval length (page set size 16)."""
    apps = _apps(apps)
    configs = {
        length: _manual_config(page_set_size=16, interval_length=length)
        for length in lengths
    }
    rows, values = _sensitivity_by_type(configs, values_base(lengths), apps, seed, scale)
    return FigureResult(
        "Fig.8", "Sensitivity to interval length (IPC normalised to "
        f"length {values_base(lengths)})",
        ["pattern"] + [f"len {v}" for v in values], rows,
        ["paper shape: all lengths within ~12%; 64 chosen"],
    )


def values_base(values: Sequence[int]) -> int:
    """The smallest swept value is the normalisation baseline."""
    return min(values)


# ----------------------------------------------------------------------
# Fig. 9 — ratio1/ratio2 and classification per application
# ----------------------------------------------------------------------


def figure9(
    apps: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    rate: float = 0.75,
) -> FigureResult:
    """Classification statistics when memory first fills."""
    apps = _apps(apps)
    rows: list[list[object]] = []
    for app in apps:
        result = run_application(app, "hpe", rate, seed=seed, scale=scale)
        policy = result.extras["policy"]
        classification = policy.classification
        if classification is None:
            rows.append([app, _pattern(app), "-", "-", "(memory never filled)"])
            continue
        census = classification.census
        ratio1 = census.ratio1 if census.ratio1 != float("inf") else 999.0
        ratio2 = census.ratio2 if census.ratio2 != float("inf") else 999.0
        rows.append([
            app, _pattern(app), ratio1, ratio2,
            classification.category.value,
        ])
    return FigureResult(
        "Fig.9", f"ratio1 / ratio2 at first-full ({rate:.0%} OS; 999 = inf)",
        ["app", "type", "ratio1", "ratio2", "category"], rows,
        ["paper shape: types I-III small ratios (KMN/SAD outliers); "
         "types IV-VI large ratio1 or ratio2 (SGM outlier)"],
    )


# ----------------------------------------------------------------------
# Fig. 10 / Fig. 11 — HPE vs LRU (IPC and evictions)
# ----------------------------------------------------------------------


def figure10(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = PAPER_RATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    matrix: Optional[ResultMatrix] = None,
) -> FigureResult:
    """HPE's IPC speedup over LRU per application and rate."""
    apps = _apps(apps)
    matrix = matrix or run_matrix(["lru", "hpe"], rates=rates, apps=apps,
                                  seed=seed, scale=scale)
    rows: list[list[object]] = []
    means: dict[float, list[float]] = {rate: [] for rate in rates}
    for app in apps:
        row: list[object] = [app, _pattern(app)]
        for rate in rates:
            speedup = matrix.speedup(app, "hpe", "lru", rate)
            means[rate].append(speedup)
            row.append(speedup)
        rows.append(row)
    rows.append(["MEAN", "-"] + [arithmetic_mean(means[r]) for r in rates])
    rows.append(["GEOMEAN", "-"] + [geometric_mean(means[r]) for r in rates])
    return FigureResult(
        "Fig.10", "HPE speedup over LRU (IPC ratio)",
        ["app", "type"] + [f"{r:.0%}" for r in rates], rows,
        ["paper: mean 1.34x @75%, 1.16x @50%, max 2.81x (HSD)"]
        + _degraded_notes(matrix),
    )


def figure11(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = PAPER_RATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    matrix: Optional[ResultMatrix] = None,
) -> FigureResult:
    """HPE's evictions relative to LRU per application and rate."""
    apps = _apps(apps)
    matrix = matrix or run_matrix(["lru", "hpe"], rates=rates, apps=apps,
                                  seed=seed, scale=scale)
    rows: list[list[object]] = []
    means: dict[float, list[float]] = {rate: [] for rate in rates}
    for app in apps:
        row: list[object] = [app, _pattern(app)]
        for rate in rates:
            ratio = matrix.eviction_ratio(app, "hpe", "lru", rate)
            means[rate].append(ratio)
            row.append(ratio)
        rows.append(row)
    rows.append(["MEAN", "-"] + [arithmetic_mean(means[r]) for r in rates])
    return FigureResult(
        "Fig.11", "HPE evictions normalised to LRU",
        ["app", "type"] + [f"{r:.0%}" for r in rates], rows,
        ["paper: HPE evicts 18% fewer pages @75%, 12% fewer @50%"]
        + _degraded_notes(matrix),
    )


# ----------------------------------------------------------------------
# Fig. 12 — all policies normalised to Ideal
# ----------------------------------------------------------------------


def figure12(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = PAPER_RATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    matrix: Optional[ResultMatrix] = None,
) -> FigureResult:
    """IPC and evictions of every policy normalised to Ideal."""
    apps = _apps(apps)
    policies = ["ideal", "lru", "random", "rrip", "clock-pro", "hpe"]
    matrix = matrix or run_matrix(policies, rates=rates, apps=apps,
                                  seed=seed, scale=scale)
    compared = policies[1:]
    rows: list[list[object]] = []
    for rate in rates:
        perf: dict[str, list[float]] = {p: [] for p in compared}
        evic: dict[str, list[float]] = {p: [] for p in compared}
        for app in apps:
            for policy in compared:
                perf[policy].append(matrix.speedup(app, policy, "ideal", rate))
                evic[policy].append(
                    matrix.eviction_ratio(app, policy, "ideal", rate)
                )
        for policy in compared:
            rows.append([
                f"{rate:.0%}", policy,
                arithmetic_mean(perf[policy]),
                arithmetic_mean(evic[policy]),
            ])
    return FigureResult(
        "Fig.12", "Policies normalised to Ideal (mean over apps)",
        ["rate", "policy", "IPC/Ideal", "evictions/Ideal"], rows,
        ["paper @75%: HPE within 11% of Ideal IPC, 18% more evictions; "
         "1.16x/1.27x/1.2x over random/RRIP/CLOCK-Pro",
         "per-app data available via run_matrix for deeper analysis"]
        + _degraded_notes(matrix),
    )


# ----------------------------------------------------------------------
# Fig. 13 — strategy-adjustment breakdown
# ----------------------------------------------------------------------


def figure13(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = PAPER_RATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Fraction of execution (in faults) spent under each strategy."""
    apps = _apps(apps)
    rows: list[list[object]] = []
    for rate in rates:
        for app in apps:
            result = run_application(app, "hpe", rate, seed=seed, scale=scale)
            policy = result.extras["policy"]
            if policy.adjustment is None:
                rows.append([f"{app} {rate:.0%}", "-", 0.0, 0.0, 0, 0])
                continue
            timeline = policy.adjustment.timeline(policy.stats.faults)
            total = max(1, policy.stats.faults)
            lru_faults = sum(
                seg.end_fault - seg.start_fault
                for seg in timeline if seg.strategy is StrategyKind.LRU
            )
            mru_faults = total - lru_faults
            stats = policy.adjustment.stats
            rows.append([
                f"{app} {rate:.0%}",
                policy.category.value if policy.category else "-",
                lru_faults / total,
                mru_faults / total,
                stats.strategy_switches,
                stats.jump_adjustments,
            ])
    return FigureResult(
        "Fig.13", "Eviction-strategy breakdown (fraction of faults)",
        ["app@rate", "category", "LRU", "MRU-C", "switches", "jumps"], rows,
        ["paper: KMN/NW/B+T/HYB/SPV/MVT pure LRU; "
         "HOT/BKP/PAT/LEU/CUT/MRQ/STN/2DC/GEM pure MRU-C; "
         "SRD/BFS/SAD/HIS adjust at both rates; DWT/HSD/SGM only at 50%"],
    )


# ----------------------------------------------------------------------
# Fig. 14 — average search overhead
# ----------------------------------------------------------------------


def figure14(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = PAPER_RATES,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Mean comparisons per MRU-C victim search.

    Applications that used LRU for their entire execution are omitted,
    as in the paper.
    """
    apps = _apps(apps)
    rows: list[list[object]] = []
    for rate in rates:
        for app in apps:
            result = run_application(app, "hpe", rate, seed=seed, scale=scale)
            policy = result.extras["policy"]
            adjustment = policy.adjustment
            if adjustment is None:
                continue
            used_mru_c = any(
                seg.strategy is StrategyKind.MRU_C
                for seg in adjustment.timeline(policy.stats.faults)
            )
            if not used_mru_c:
                continue
            rows.append([
                f"{app} {rate:.0%}",
                policy.stats.mean_comparisons,
                policy.stats.comparisons_max,
                policy.stats.searches,
            ])
    return FigureResult(
        "Fig.14", "Average MRU-C search overhead (comparisons per search)",
        ["app@rate", "mean", "max", "searches"], rows,
        ["paper: typically < 50 comparisons, outliers BFS and HIS"],
    )


# ----------------------------------------------------------------------
# Fig. 15 — HIR entries transferred
# ----------------------------------------------------------------------


def figure15(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75,),
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Average populated HIR entries shipped per transfer."""
    apps = _apps(apps)
    rows: list[list[object]] = []
    for rate in rates:
        for app in apps:
            result = run_application(app, "hpe", rate, seed=seed, scale=scale)
            policy = result.extras["policy"]
            stats = policy.hir.stats
            rows.append([
                f"{app} {rate:.0%}",
                stats.mean_entries_per_transfer,
                stats.transfers,
                stats.conflicts,
            ])
    return FigureResult(
        "Fig.15", "HIR entries transferred per transfer (mean)",
        ["app@rate", "mean entries", "transfers", "way conflicts"], rows,
        ["paper: fewer than ten entries for most applications; MVT the "
         "outlier (139) due to its stride-4 pages"],
    )


#: Registry used by the CLI: figure id → harness.
FIGURES = {
    "3": figure3,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
    "11": figure11,
    "12": figure12,
    "13": figure13,
    "14": figure14,
    "15": figure15,
}
