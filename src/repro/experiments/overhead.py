"""Overhead analyses of Section V-C.

Three quantities back the paper's "HPE is cheap" argument:

* **HIR storage** versus a naive buffer that records every page-walk hit
  address in order (the paper reports 63% / 53% storage savings at
  75% / 50% oversubscription);
* **CPU core load** — fault handling plus chain-update time over total
  execution time;
* **classification / search wall-clock** — measured on this host and
  compared against the paper's published unit costs.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.classifier import classify
from repro.core.hir import ENTRY_BYTES
from repro.experiments.figures import FigureResult, _apps
from repro.experiments.runner import (
    DEFAULT_SEED,
    arithmetic_mean,
    run_application,
)
from repro.sim.config import GPUConfig

#: Bytes to record one page address in the naive buffer (48-bit address).
ADDRESS_BYTES = 6

#: The paper's measured worst-case page-set-chain update cost (§V-C).
UPDATE_COST_US = 16.1


def hir_storage(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.50),
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Storage cost of HIR versus an in-order address buffer."""
    apps = _apps(apps)
    rows: list[list[object]] = []
    for rate in rates:
        savings: list[float] = []
        for app in apps:
            result = run_application(app, "hpe", rate, seed=seed, scale=scale)
            stats = result.extras["policy"].hir.stats
            hir_bytes = stats.entries_transferred * ENTRY_BYTES
            buffer_bytes = stats.records * ADDRESS_BYTES
            if buffer_bytes:
                savings.append(1.0 - hir_bytes / buffer_bytes)
        rows.append([
            f"{rate:.0%}",
            arithmetic_mean(savings),
            min(savings) if savings else 0.0,
            max(savings) if savings else 0.0,
        ])
    return FigureResult(
        "Ovh.HIR", "HIR storage saving vs in-order address buffer",
        ["rate", "mean saving", "min", "max"], rows,
        ["paper: 63% saving at 75% OS, 53% at 50% OS"],
    )


def core_load(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.50),
    policies: Sequence[str] = ("lru", "rrip", "clock-pro", "hpe"),
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Host-CPU utilisation estimate per policy (§V-C method).

    Core busy time = faults × fault-service time, plus — for HPE only —
    the paper's worst-case 16.1 µs chain update amortised over every
    16th fault, divided by total execution time.
    """
    apps = _apps(apps)
    config = GPUConfig()
    fault_us = config.pcie.fault_service_us
    rows: list[list[object]] = []
    for rate in rates:
        for policy_name in policies:
            loads: list[float] = []
            for app in apps:
                result = run_application(
                    app, policy_name, rate, seed=seed, scale=scale
                )
                total_us = result.cycles / (config.clock_ghz * 1e3)
                busy_us = result.faults * fault_us
                if policy_name == "hpe":
                    policy = result.extras["policy"]
                    busy_us += policy.hir.stats.transfers * UPDATE_COST_US
                if total_us:
                    loads.append(min(1.0, busy_us / total_us))
            rows.append([f"{rate:.0%}", policy_name, arithmetic_mean(loads)])
    return FigureResult(
        "Ovh.Load", "Estimated host-CPU core load",
        ["rate", "policy", "mean load"], rows,
        ["paper: LRU 29.9%/39.3%, RRIP 30.3%/39.5%, CLOCK-Pro 29.5%/39.2%, "
         "HPE 34.0%/47.2% (worst-case update costing)"],
    )


def classification_cost(
    app: str = "KMN",
    rate: float = 0.75,
    repeats: int = 200,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Wall-clock cost of one classification pass on KMN's chain.

    KMN has the largest footprint, so the paper uses it to bound the
    classification latency (16.7 µs on their host).
    """
    result = run_application(app, "hpe", rate, seed=seed, scale=scale)
    policy = result.extras["policy"]
    counters = policy.chain.counters()
    start = time.perf_counter()
    for _ in range(repeats):
        classify(counters, policy.config.page_set_size)
    elapsed_us = (time.perf_counter() - start) / repeats * 1e6
    return FigureResult(
        "Ovh.Class", f"Classification wall-clock cost ({app}, {rate:.0%} OS)",
        ["chain length", "mean us per pass"],
        [[len(counters), elapsed_us]],
        [f"paper: 16.7 us on their host; "
         "performed once per execution, so negligible either way"],
    )


def search_cost(comparisons: int = 300, repeats: int = 2000) -> FigureResult:
    """Wall-clock cost of chain-search comparisons (paper's 300-item probe)."""
    probe = list(range(comparisons))
    start = time.perf_counter()
    acc = 0
    for _ in range(repeats):
        best = probe[0]
        for value in probe:
            if value < best:
                best = value
        acc += best
    elapsed_us = (time.perf_counter() - start) / repeats * 1e6
    return FigureResult(
        "Ovh.Search", f"Wall-clock for {comparisons} comparisons",
        ["comparisons", "mean us"],
        [[comparisons, elapsed_us]],
        ["paper: 300 comparisons cost 19.92% of the 20 us fault penalty"],
    )


OVERHEADS = {
    "hir-storage": hir_storage,
    "core-load": core_load,
    "classification": classification_cost,
    "search": search_cost,
}
