"""Harnesses regenerating the paper's tables."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figures import FigureResult, _apps, _pattern
from repro.experiments.runner import DEFAULT_SEED, run_application
from repro.memory.addressing import PAGE_SIZE_BYTES
from repro.sim.config import GPUConfig
from repro.workloads.suite import get_application


def table1(config: Optional[GPUConfig] = None) -> FigureResult:
    """Table I — configuration of the simulated system."""
    config = config or GPUConfig()
    rows = [
        ["GPU cores", f"{config.num_sms} SMs, {config.clock_ghz} GHz"],
        ["Warps per SM", str(config.warps_per_sm)],
        ["Private L1 TLB",
         f"{config.l1_tlb.entries}-entry per SM, "
         f"{config.l1_tlb.latency_cycles}-cycle latency, LRU"],
        ["Shared L2 TLB",
         f"{config.l2_tlb.entries}-entry, "
         f"{config.l2_tlb.associativity}-way, "
         f"{config.l2_tlb.latency_cycles}-cycle latency, LRU"],
        ["Page walk", f"{config.walk_latency_cycles} cycles, single-level table"],
        ["Page size", f"{PAGE_SIZE_BYTES} bytes"],
        ["CPU-GPU interconnect",
         f"{config.pcie.bandwidth_gbs:.0f} GB/s, "
         f"{config.pcie.fault_service_us:.0f} us fault service"],
        ["DRAM latency (model)", f"{config.memory_latency_cycles} cycles"],
    ]
    return FigureResult(
        "Table.I", "Configuration of the simulated system",
        ["component", "configuration"], rows,
    )


def table2(
    apps: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
) -> FigureResult:
    """Table II — workload characteristics (plus trace statistics)."""
    apps = _apps(apps)
    rows = []
    for app in apps:
        spec = get_application(app)
        trace = spec.build(seed=seed, scale=scale)
        footprint_mb = trace.footprint_pages * PAGE_SIZE_BYTES / (1 << 20)
        rows.append([
            app, spec.name, spec.suite, spec.pattern_type.roman,
            trace.footprint_pages, f"{footprint_mb:.1f}", len(trace),
        ])
    return FigureResult(
        "Table.II", "Workload characteristics",
        ["abbr", "application", "suite", "type", "pages", "MB", "episodes"],
        rows,
        ["footprints scaled down from the paper's 3-130 MB; "
         "oversubscription is relative so dynamics are preserved"],
    )


def table3(
    apps: Optional[Sequence[str]] = None,
    seed: int = DEFAULT_SEED,
    scale: float = 1.0,
    rate: float = 0.75,
) -> FigureResult:
    """Table III — statistics-based classification outcome per app."""
    apps = _apps(apps)
    rows = []
    for app in apps:
        result = run_application(app, "hpe", rate, seed=seed, scale=scale)
        policy = result.extras["policy"]
        if policy.classification is None:
            rows.append([app, _pattern(app), "(never full)", "-", "-"])
            continue
        census = policy.classification.census
        rows.append([
            app, _pattern(app), policy.classification.category.value,
            min(census.ratio1, 999.0), min(census.ratio2, 999.0),
        ])
    return FigureResult(
        "Table.III", f"Classification at first-full ({rate:.0%} OS)",
        ["app", "type", "category", "ratio1", "ratio2"], rows,
        ["thresholds: ratio1 <= 0.3, ratio2 >= 2 (Section IV-D)"],
    )


#: Registry used by the CLI.
TABLES = {"1": table1, "2": table2, "3": table3}
