"""Least-recently-used page replacement (the paper's primary baseline).

Uses the paper's "ideal model" for driver-side baselines: both page-walk
hits and page faults update the recency chain immediately and in exact
reference order, with no transfer latency (Section V-B).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.policies.base import EvictionPolicy, PolicyError


class LRUPolicy(EvictionPolicy):
    """Classic LRU over resident pages, updated at page-walk granularity."""

    name = "lru"
    uses_walk_hits = True

    def __init__(self) -> None:
        self._chain: OrderedDict[int, None] = OrderedDict()

    def on_page_in(self, page: int, fault_number: int) -> None:
        self._chain[page] = None
        self._chain.move_to_end(page)

    def on_walk_hit(self, page: int) -> None:
        if page in self._chain:
            self._chain.move_to_end(page)

    def on_walk_hits(self, pages: Sequence[int]) -> None:
        chain = self._chain
        move_to_end = chain.move_to_end
        for page in pages:
            if page in chain:
                move_to_end(page)

    def select_victim(self) -> int:
        if not self._chain:
            raise PolicyError("LRU chain is empty; nothing to evict")
        page, _ = self._chain.popitem(last=False)
        return page

    def resident_count(self) -> int:
        return len(self._chain)
