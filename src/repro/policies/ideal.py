"""Offline "Ideal" eviction policy (Belady's MIN, Section III-B).

The paper's upper-bound baseline: "we use an offline eviction policy to
explore the upper bound of performance, which is similar to Belady's MIN
algorithm".  The policy is primed with the complete future page-reference
trace and always evicts the resident page whose next use is farthest in
the future (never-used-again pages first).

Because demand-paged residency depends only on the reference stream (TLBs
never hold translations for evicted pages — shootdowns see to that), MIN
on the raw trace is the true lower bound on evictions.

Implementation: every resident page's *next-use position* is kept exact —
each trace reference re-keys the referenced page — and victims come from a
max-heap with lazy deletion, so the cost is O(log n) per reference.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Sequence

from repro.policies.base import EvictionPolicy, PolicyError

#: Next-use key for pages never referenced again.
NEVER = float("inf")


class IdealPolicy(EvictionPolicy):
    """Belady's MIN over the primed reference trace."""

    name = "ideal"
    requires_future = True

    def __init__(self) -> None:
        self._trace: Sequence[int] = ()
        self._occurrences: dict[int, list[int]] = {}
        self._position = -1
        #: page → its current (exact) next-use key.
        self._resident: dict[int, float] = {}
        self._heap: list[tuple[float, int]] = []
        self._primed = False

    def prime_future(self, trace: Sequence[int]) -> None:
        """Index every page's occurrence positions in ``trace``."""
        occurrences: dict[int, list[int]] = {}
        for index, page in enumerate(trace):
            occurrences.setdefault(page, []).append(index)
        self._trace = trace
        self._occurrences = occurrences
        self._position = -1
        self._primed = True

    def _next_use(self, page: int) -> float:
        positions = self._occurrences.get(page)
        if not positions:
            return NEVER
        index = bisect_right(positions, self._position)
        if index >= len(positions):
            return NEVER
        return positions[index]

    def on_trace_position(self, position: int) -> None:
        """Advance to ``position`` and re-key the page referenced there."""
        self._position = position
        if 0 <= position < len(self._trace):
            page = self._trace[position]
            if page in self._resident:
                key = self._next_use(page)
                self._resident[page] = key
                heapq.heappush(self._heap, (-key, page))

    def on_page_in(self, page: int, fault_number: int) -> None:
        if not self._primed:
            raise PolicyError("IdealPolicy.prime_future() was never called")
        key = self._next_use(page)
        self._resident[page] = key
        heapq.heappush(self._heap, (-key, page))

    def select_victim(self) -> int:
        if not self._resident:
            raise PolicyError("no resident pages to evict")
        while self._heap:
            neg_key, page = heapq.heappop(self._heap)
            if self._resident.get(page) == -neg_key:
                del self._resident[page]
                return page
            # Otherwise: stale entry (page evicted or re-keyed); skip it.
        raise PolicyError("Ideal heap exhausted with pages still resident")

    def resident_count(self) -> int:
        return len(self._resident)
