"""First-in-first-out page replacement (extra baseline).

Not part of the paper's headline comparison, but a useful sanity baseline
for tests and ablations: FIFO ignores all reference information, so any
recency/frequency-aware policy should beat it on LRU-friendly workloads.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import EvictionPolicy, PolicyError


class FIFOPolicy(EvictionPolicy):
    """Evict pages in arrival order, ignoring hits entirely."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: OrderedDict[int, None] = OrderedDict()

    def on_page_in(self, page: int, fault_number: int) -> None:
        if page not in self._queue:
            self._queue[page] = None

    def select_victim(self) -> int:
        if not self._queue:
            raise PolicyError("FIFO queue is empty; nothing to evict")
        page, _ = self._queue.popitem(last=False)
        return page

    def resident_count(self) -> int:
        return len(self._queue)
