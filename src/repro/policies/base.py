"""Eviction-policy interface shared by every replacement policy.

The GPU driver (:mod:`repro.uvm.driver`) is policy-agnostic: it feeds each
policy the events the paper says the driver can observe and asks for one
victim page whenever GPU memory is full.

Observable events
-----------------
* **page-in** — a page fault was serviced and the page migrated to the
  GPU.  Every policy sees faults: the driver is invoked on each one.
* **page-walk hit** — the page-table walker found a valid translation.
  The paper's "ideal model" lets LRU / RRIP / CLOCK-Pro update their
  chains on these in exact reference order; HPE instead receives batched
  counts via the HIR cache.  References that hit in the L1/L2 TLBs never
  reach the driver under any policy.
* **trace position** — only the offline Ideal (Belady MIN) policy uses
  this: it is primed with the full future reference trace.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence


class EvictionPolicy(abc.ABC):
    """Abstract replacement policy over resident GPU pages.

    Subclasses must keep their own view of the resident set, updated via
    :meth:`on_page_in` and the page returned from :meth:`select_victim`
    (the driver evicts exactly the returned page).
    """

    #: Human-readable policy name used in experiment reports.
    name: str = "base"

    #: ``True`` when the policy consumes page-walk hit notifications.
    uses_walk_hits: bool = False

    #: ``True`` when the policy must be primed with the future trace.
    requires_future: bool = False

    def on_fault_pending(self, page: int) -> None:
        """A fault for ``page`` is about to be serviced.

        Called before :meth:`select_victim`, so adaptive policies (ARC,
        CAR) can see which page is incoming — their replacement decision
        depends on which ghost list, if any, holds it.
        """

    @abc.abstractmethod
    def on_page_in(self, page: int, fault_number: int) -> None:
        """A fault for ``page`` was serviced; the page is now resident."""

    def on_walk_hit(self, page: int) -> None:
        """The walker hit ``page``'s PTE (page is resident)."""

    def on_walk_hits(self, pages: Sequence[int]) -> None:
        """Batched equivalent of :meth:`on_walk_hit` over ``pages``.

        Must be observably identical to calling :meth:`on_walk_hit` once
        per page in order — the batch kernel relies on that equivalence.
        Subclasses may override to hoist per-call overhead out of the
        loop, never to change semantics.
        """
        on_walk_hit = self.on_walk_hit
        for page in pages:
            on_walk_hit(page)

    def on_trace_position(self, position: int) -> None:
        """Advance the global reference index (offline policies only)."""

    def prime_future(self, trace: Sequence[int]) -> None:
        """Provide the full future reference trace (offline policies only)."""

    @abc.abstractmethod
    def select_victim(self) -> int:
        """Return the resident page to evict next.

        Called only when GPU memory is full; the driver immediately evicts
        the returned page, so the policy must also forget it.
        """

    def select_victims_batch(self, count: int) -> list[int]:
        """Return ``count`` victims for one batched eviction burst.

        The relaxed batch kernel (fastpath v3) calls this once per fault
        run, with **no page-ins interleaved** between the selections.
        The default is the literal sequential loop, so every policy is
        batch-safe out of the box.  Overrides may amortize the
        per-victim search (HPE drains each selected page set) but must
        stay *metric-equivalent* to the sequential loop under the
        no-interleaved-page-ins premise — the v3 contract (DESIGN §13).
        """
        select_victim = self.select_victim
        return [select_victim() for _ in range(count)]

    def resident_count(self) -> Optional[int]:
        """Number of pages the policy believes are resident, if tracked."""
        return None


class PolicyError(RuntimeError):
    """Raised when a policy is asked for a victim but tracks no pages."""
