"""CAR — CLOCK with adaptive replacement (Bansal & Modha, FAST 2004).

Section VI cites CAR as a CLOCK variant that fixes LRU's thrashing
weakness by combining ARC's two-list adaptation with CLOCK's
reference-bit mechanics: two clocks T1 (recency) and T2 (frequency),
ghost lists B1/B2, and the same adaptive target ``p``.

Clock semantics, as in the original: a T1 page with its reference bit
set is *promoted* to T2 (not evicted) when the hand passes; a T2 page
with the bit set is recycled to T2's tail.  Pages demoted from T1/T2
enter B1/B2 respectively.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.policies.base import EvictionPolicy, PolicyError


class CARPolicy(EvictionPolicy):
    """CAR over resident GPU pages."""

    name = "car"
    uses_walk_hits = True

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.p = 0.0
        self._t1: deque[int] = deque()
        self._t2: deque[int] = deque()
        self._in_t1: set[int] = set()
        self._in_t2: set[int] = set()
        self._ref: set[int] = set()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()

    def on_walk_hit(self, page: int) -> None:
        if page in self._in_t1 or page in self._in_t2:
            self._ref.add(page)

    def on_page_in(self, page: int, fault_number: int) -> None:
        if page in self._b1:
            self.p = min(
                float(self.capacity),
                self.p + max(1.0, len(self._b2) / max(1, len(self._b1))),
            )
            del self._b1[page]
            self._t2.append(page)
            self._in_t2.add(page)
            return
        if page in self._b2:
            self.p = max(
                0.0,
                self.p - max(1.0, len(self._b1) / max(1, len(self._b2))),
            )
            del self._b2[page]
            self._t2.append(page)
            self._in_t2.add(page)
            return
        # History bounding as in CAR: |T1|+|B1| <= c, total <= 2c.
        if len(self._t1) + len(self._b1) >= self.capacity:
            if self._b1:
                self._b1.popitem(last=False)
        elif (len(self._t1) + len(self._t2)
              + len(self._b1) + len(self._b2)) >= 2 * self.capacity:
            if self._b2:
                self._b2.popitem(last=False)
        self._t1.append(page)
        self._in_t1.add(page)

    def select_victim(self) -> int:
        if not self._t1 and not self._t2:
            raise PolicyError("CAR has no resident pages to evict")
        guard = 4 * (len(self._t1) + len(self._t2)) + 4
        for _ in range(guard):
            if self._t1 and (len(self._t1) >= max(1.0, self.p) or not self._t2):
                page = self._t1.popleft()
                self._in_t1.discard(page)
                if page in self._ref:
                    # Promote to the frequency clock.
                    self._ref.discard(page)
                    self._t2.append(page)
                    self._in_t2.add(page)
                    continue
                self._b1[page] = None
                return page
            if self._t2:
                page = self._t2.popleft()
                self._in_t2.discard(page)
                if page in self._ref:
                    self._ref.discard(page)
                    self._t2.append(page)
                    self._in_t2.add(page)
                    continue
                self._b2[page] = None
                return page
        raise PolicyError("CAR victim sweep failed to terminate")

    def resident_count(self) -> int:
        return len(self._t1) + len(self._t2)
