"""WSClock — working-set CLOCK (Carr & Hennessy, SOSP 1981).

Section VI cites WSClock as the classic combination of the working-set
model with CLOCK's circular scan: a page is evictable only when its
reference bit is clear *and* it has been idle longer than the working-set
window τ.  We measure virtual time in page faults (the driver's natural
clock), matching how HPE counts intervals.
"""

from __future__ import annotations

from collections import deque

from repro.policies.base import EvictionPolicy, PolicyError


class WSClockPolicy(EvictionPolicy):
    """WSClock over resident GPU pages with a fault-count window."""

    name = "wsclock"
    uses_walk_hits = True

    def __init__(self, tau_faults: int = 128) -> None:
        if tau_faults <= 0:
            raise ValueError(f"tau_faults must be positive, got {tau_faults}")
        self.tau_faults = tau_faults
        self._clock: deque[int] = deque()
        self._resident: set[int] = set()
        self._ref: set[int] = set()
        self._last_use: dict[int, int] = {}
        self._now = 0

    def on_walk_hit(self, page: int) -> None:
        if page in self._resident:
            self._ref.add(page)

    def on_page_in(self, page: int, fault_number: int) -> None:
        self._now = fault_number
        if page in self._resident:
            return
        self._clock.append(page)
        self._resident.add(page)
        self._last_use[page] = fault_number

    def _evict(self, page: int) -> int:
        self._resident.discard(page)
        self._ref.discard(page)
        self._last_use.pop(page, None)
        return page

    def select_victim(self) -> int:
        if not self._clock:
            raise PolicyError("WSClock has no resident pages to evict")
        oldest_page = None
        oldest_use = None
        # At most two sweeps: the first clears reference bits, so the
        # second must find an idle page unless everything is in the
        # working set — then fall back to the least recently used.
        for _ in range(2 * len(self._clock)):
            page = self._clock[0]
            self._clock.rotate(-1)
            if page in self._ref:
                self._ref.discard(page)
                self._last_use[page] = self._now
                continue
            last_use = self._last_use.get(page, 0)
            if self._now - last_use >= self.tau_faults:
                self._clock.remove(page)
                return self._evict(page)
            if oldest_use is None or last_use < oldest_use:
                oldest_use = last_use
                oldest_page = page
        assert oldest_page is not None
        self._clock.remove(oldest_page)
        return self._evict(oldest_page)

    def resident_count(self) -> int:
        return len(self._resident)
