"""Least-frequently-used page replacement (extra baseline).

Section VI notes that "using frequency information is not enough to select
appropriate eviction candidates in unified memory"; this implementation
lets the experiments demonstrate that.  Frequency counts page-walk level
touches (faults + walk hits); ties break by recency (least recent first).
"""

from __future__ import annotations

import heapq
import itertools

from repro.policies.base import EvictionPolicy, PolicyError


class LFUPolicy(EvictionPolicy):
    """LFU with LRU tie-breaking, via a lazily-invalidated heap."""

    name = "lfu"
    uses_walk_hits = True

    def __init__(self) -> None:
        self._count: dict[int, int] = {}
        self._stamp: dict[int, int] = {}
        self._clock = itertools.count()
        self._heap: list[tuple[int, int, int]] = []

    def _touch(self, page: int) -> None:
        self._count[page] = self._count.get(page, 0) + 1
        stamp = next(self._clock)
        self._stamp[page] = stamp
        heapq.heappush(self._heap, (self._count[page], stamp, page))

    def on_page_in(self, page: int, fault_number: int) -> None:
        self._count.pop(page, None)
        self._touch(page)

    def on_walk_hit(self, page: int) -> None:
        if page in self._count:
            self._touch(page)

    def select_victim(self) -> int:
        while self._heap:
            count, stamp, page = heapq.heappop(self._heap)
            if self._count.get(page) == count and self._stamp.get(page) == stamp:
                del self._count[page]
                del self._stamp[page]
                return page
        raise PolicyError("no resident pages to evict")

    def resident_count(self) -> int:
        return len(self._count)
