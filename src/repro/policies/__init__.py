"""Page eviction policies: the paper's baselines plus extra references.

The HPE policy itself lives in :mod:`repro.core` (it is the paper's
contribution); everything here is a comparison baseline.
"""

from repro.policies.arc import ARCPolicy
from repro.policies.base import EvictionPolicy, PolicyError
from repro.policies.car import CARPolicy
from repro.policies.clock_pro import ClockProPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.ideal import IdealPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.rrip import RRIPConfig, RRIPPolicy
from repro.policies.wsclock import WSClockPolicy

__all__ = [
    "ARCPolicy",
    "CARPolicy",
    "ClockProPolicy",
    "EvictionPolicy",
    "FIFOPolicy",
    "IdealPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "PolicyError",
    "RRIPConfig",
    "RRIPPolicy",
    "RandomPolicy",
    "WSClockPolicy",
]
