"""CLOCK-Pro page replacement (Jiang, Chen & Zhang, USENIX ATC 2005).

CLOCK-Pro approximates LIRS with CLOCK mechanics: pages are *hot* or
*cold*; resident cold pages run a *test period* during which a re-access
(observed as a fault on the retained non-resident metadata, or a reference
bit while resident) promotes them to hot.  Three hands sweep one circular
list:

* ``HAND_cold`` — finds the eviction victim among resident cold pages;
* ``HAND_test`` — terminates test periods and prunes non-resident
  metadata (bounded by the memory size);
* ``HAND_hot`` — demotes hot pages whose reference bits are unset.

Following Section V-B of the HPE paper, the cold-page allocation ``m_c``
is fixed at 128 (no adaptation) "because this value can alleviate instant
thrashing"; it is clamped when the simulated memory is smaller.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.policies.base import EvictionPolicy, PolicyError


class _Status(enum.Enum):
    HOT = "hot"
    COLD = "cold"          # resident cold page
    NONRES = "nonres"      # non-resident cold page (test metadata only)


class _Node:
    """One clock-list entry."""

    __slots__ = ("page", "status", "ref", "in_test", "prev", "next")

    def __init__(self, page: int, status: _Status, in_test: bool) -> None:
        self.page = page
        self.status = status
        self.ref = False
        self.in_test = in_test
        self.prev: "_Node" = self
        self.next: "_Node" = self


class ClockProPolicy(EvictionPolicy):
    """CLOCK-Pro over resident GPU pages with a fixed cold allocation."""

    name = "clock-pro"
    uses_walk_hits = True

    def __init__(self, capacity: int, m_c: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if m_c <= 0:
            raise ValueError(f"m_c must be positive, got {m_c}")
        self.capacity = capacity
        # Keep at least one hot slot so HAND_hot has something to manage.
        self.m_c = min(m_c, max(1, capacity - 1))
        self.m_h = capacity - self.m_c
        self._nodes: dict[int, _Node] = {}
        self._hand_hot: Optional[_Node] = None
        self._hand_cold: Optional[_Node] = None
        self._hand_test: Optional[_Node] = None
        self.n_hot = 0
        self.n_cold = 0
        self.n_nonres = 0
        #: Faults that re-referenced a page still in its test period.
        self.test_promotions = 0

    # ------------------------------------------------------------------
    # Circular-list plumbing
    # ------------------------------------------------------------------

    def _insert_at_head(self, node: _Node) -> None:
        """Insert ``node`` at the list head (just behind HAND_hot)."""
        if self._hand_hot is None:
            node.prev = node.next = node
            self._hand_hot = self._hand_cold = self._hand_test = node
            return
        anchor = self._hand_hot
        node.prev = anchor.prev
        node.next = anchor
        anchor.prev.next = node
        anchor.prev = node

    def _unlink(self, node: _Node) -> None:
        """Remove ``node``; advance any hand parked on it first."""
        if node.next is node:
            self._hand_hot = self._hand_cold = self._hand_test = None
            return
        for attr in ("_hand_hot", "_hand_cold", "_hand_test"):
            if getattr(self, attr) is node:
                setattr(self, attr, node.next)
        node.prev.next = node.next
        node.next.prev = node.prev

    def _remove(self, node: _Node) -> None:
        self._unlink(node)
        del self._nodes[node.page]

    # ------------------------------------------------------------------
    # Hand actions
    # ------------------------------------------------------------------

    def _run_hand_test(self) -> None:
        """Advance HAND_test one cold page: end its test / prune metadata."""
        node = self._hand_test
        if node is None:
            return
        # Skip hot pages; act on the first cold page encountered.
        for _ in range(len(self._nodes) + 1):
            if node.status is not _Status.HOT:
                break
            node = node.next
        self._hand_test = node.next
        if node.status is _Status.COLD:
            node.in_test = False
        elif node.status is _Status.NONRES:
            self.n_nonres -= 1
            self._remove(node)

    def _run_hand_hot(self) -> None:
        """Advance HAND_hot until one hot page is demoted to cold."""
        if self.n_hot == 0:
            return
        node = self._hand_hot
        assert node is not None
        for _ in range(2 * len(self._nodes) + 2):
            nxt = node.next
            if node.status is _Status.HOT:
                if node.ref:
                    node.ref = False
                else:
                    node.status = _Status.COLD
                    node.in_test = False
                    self.n_hot -= 1
                    self.n_cold += 1
                    self._hand_hot = nxt
                    return
            elif node.status is _Status.COLD:
                # HAND_hot does HAND_test's duty as it sweeps.
                node.in_test = False
            else:  # NONRES
                self.n_nonres -= 1
                self._remove(node)
            node = nxt
        self._hand_hot = node

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------

    def on_page_in(self, page: int, fault_number: int) -> None:
        node = self._nodes.get(page)
        if node is not None and node.status is _Status.NONRES:
            # Re-accessed during its test period: reuse distance is short,
            # so the page enters as hot (the LIRS "low IRR" promotion).
            self.test_promotions += 1
            self.n_nonres -= 1
            self._remove(node)
            fresh = _Node(page, _Status.HOT, in_test=False)
            self._nodes[page] = fresh
            self._insert_at_head(fresh)
            self.n_hot += 1
            while self.n_hot > self.m_h:
                before = self.n_hot
                self._run_hand_hot()
                if self.n_hot == before:
                    break
            return
        fresh = _Node(page, _Status.COLD, in_test=True)
        self._nodes[page] = fresh
        self._insert_at_head(fresh)
        self.n_cold += 1
        while self.n_nonres > self.capacity:
            before = self.n_nonres
            self._run_hand_test()
            if self.n_nonres == before:
                break

    def on_walk_hit(self, page: int) -> None:
        node = self._nodes.get(page)
        if node is not None and node.status is not _Status.NONRES:
            node.ref = True

    def select_victim(self) -> int:
        if self.n_cold == 0:
            self._run_hand_hot()
        if self.n_cold == 0:
            raise PolicyError("CLOCK-Pro has no evictable page")
        node = self._hand_cold
        assert node is not None
        # Bounded sweep: each promotion removes a cold page, each pass
        # resets a reference bit, so the loop terminates.
        for _ in range(4 * len(self._nodes) + 4):
            nxt = node.next
            if self._nodes.get(node.page) is not node:
                # Stale node pruned by a nested hand run; keep sweeping.
                node = nxt
                continue
            if node.status is _Status.COLD:
                if node.ref:
                    node.ref = False
                    if node.in_test:
                        # Promote: re-accessed within its test period.
                        node.status = _Status.HOT
                        node.in_test = False
                        self.n_cold -= 1
                        self.n_hot += 1
                        self._unlink(node)
                        self._insert_at_head(node)
                        while self.n_hot > self.m_h:
                            before = self.n_hot
                            self._run_hand_hot()
                            if self.n_hot == before:
                                break
                    else:
                        # Grant a fresh test period and recycle to the head.
                        node.in_test = True
                        self._unlink(node)
                        self._insert_at_head(node)
                else:
                    victim = node.page
                    self.n_cold -= 1
                    if node.in_test:
                        node.status = _Status.NONRES
                        self.n_nonres += 1
                        self._hand_cold = nxt
                        while self.n_nonres > self.capacity:
                            before = self.n_nonres
                            self._run_hand_test()
                            if self.n_nonres == before:
                                break
                    else:
                        self._remove(node)
                    if self._hand_cold is node:
                        self._hand_cold = nxt
                    return victim
                if self.n_cold == 0:
                    self._run_hand_hot()
                    if self.n_cold == 0:
                        raise PolicyError("CLOCK-Pro has no evictable page")
            node = nxt
        raise PolicyError("CLOCK-Pro victim sweep failed to terminate")

    def resident_count(self) -> int:
        return self.n_hot + self.n_cold

    # ------------------------------------------------------------------
    # Pickling (result caching / parallel matrix transport)
    # ------------------------------------------------------------------
    # The clock is a circular doubly-linked list; default pickling would
    # recurse node-by-node and blow the recursion limit on large
    # capacities, so the ring is flattened to a list and rebuilt.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        ring: list[tuple[int, _Status, bool, bool]] = []
        index_of: dict[int, int] = {}
        anchor = self._hand_hot
        if anchor is not None:
            node = anchor
            while True:
                index_of[id(node)] = len(ring)
                ring.append((node.page, node.status, node.ref, node.in_test))
                node = node.next
                if node is anchor:
                    break
        for attr in ("_hand_hot", "_hand_cold", "_hand_test"):
            hand = state.pop(attr)
            state[attr + "_index"] = (
                None if hand is None else index_of[id(hand)]
            )
        del state["_nodes"]
        state["_ring"] = ring
        return state

    def __setstate__(self, state: dict) -> None:
        ring = state.pop("_ring")
        hand_indices = {
            attr: state.pop(attr + "_index")
            for attr in ("_hand_hot", "_hand_cold", "_hand_test")
        }
        self.__dict__.update(state)
        nodes: list[_Node] = []
        self._nodes = {}
        for page, status, ref, in_test in ring:
            node = _Node(page, status, in_test)
            node.ref = ref
            nodes.append(node)
            self._nodes[page] = node
        count = len(nodes)
        for i, node in enumerate(nodes):
            node.next = nodes[(i + 1) % count]
            node.prev = nodes[(i - 1) % count]
        for attr, index in hand_indices.items():
            setattr(self, attr, None if index is None else nodes[index])
