"""ARC — adaptive replacement cache (Megiddo & Modha, FAST 2003).

One of the related-work policies the paper discusses (Section VI): ARC
balances a recency list T1 against a frequency list T2, steered by ghost
lists B1/B2 of recently evicted pages and an adaptive target ``p`` for
T1's share of memory.

Adaptation to the demand-paging driver interface: the driver announces
the incoming page via :meth:`on_fault_pending` (ARC's REPLACE decision
needs to know whether it sits in B2), :meth:`select_victim` performs
REPLACE (demoting the chosen page to the matching ghost list), and
:meth:`on_page_in` finishes the ARC miss path (ghost-hit adaptation of
``p`` and list placement).  Hits are observed at page-walk granularity,
like every other driver-side policy here.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.base import EvictionPolicy, PolicyError


class ARCPolicy(EvictionPolicy):
    """ARC over resident GPU pages with ghost-list adaptation."""

    name = "arc"
    uses_walk_hits = True

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Target size of T1 (recency side), 0 <= p <= capacity.
        self.p = 0.0
        self._t1: OrderedDict[int, None] = OrderedDict()  # seen once
        self._t2: OrderedDict[int, None] = OrderedDict()  # seen twice+
        self._b1: OrderedDict[int, None] = OrderedDict()  # ghosts of T1
        self._b2: OrderedDict[int, None] = OrderedDict()  # ghosts of T2
        self._pending: int | None = None

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def on_walk_hit(self, page: int) -> None:
        """ARC hit path: promote to the MRU end of T2."""
        if page in self._t1:
            del self._t1[page]
            self._t2[page] = None
        elif page in self._t2:
            self._t2.move_to_end(page)

    def on_fault_pending(self, page: int) -> None:
        self._pending = page

    def on_page_in(self, page: int, fault_number: int) -> None:
        """ARC miss path: adapt ``p`` on ghost hits, then place the page."""
        self._pending = None
        if page in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self.p = min(float(self.capacity), self.p + delta)
            del self._b1[page]
            self._t2[page] = None
            return
        if page in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self.p = max(0.0, self.p - delta)
            del self._b2[page]
            self._t2[page] = None
            return
        # Brand-new page: bound the directory at 2c, then insert into T1.
        l1 = len(self._t1) + len(self._b1)
        if l1 >= self.capacity:
            if self._b1:
                self._b1.popitem(last=False)
        else:
            total = l1 + len(self._t2) + len(self._b2)
            if total >= 2 * self.capacity and self._b2:
                self._b2.popitem(last=False)
        self._t1[page] = None

    # ------------------------------------------------------------------
    # Victim selection (ARC's REPLACE)
    # ------------------------------------------------------------------

    def select_victim(self) -> int:
        if not self._t1 and not self._t2:
            raise PolicyError("ARC has no resident pages to evict")
        incoming_in_b2 = (
            self._pending is not None and self._pending in self._b2
        )
        take_t1 = bool(self._t1) and (
            len(self._t1) > self.p
            or (incoming_in_b2 and len(self._t1) == int(self.p))
            or not self._t2
        )
        if take_t1:
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        return victim

    def resident_count(self) -> int:
        return len(self._t1) + len(self._t2)

    @property
    def ghost_count(self) -> int:
        """Pages tracked only as history (B1 + B2)."""
        return len(self._b1) + len(self._b2)
