"""RRIP page replacement with the paper's instant-thrashing enhancement.

Re-reference interval prediction (Jaleel et al., ISCA 2010) stores an
M-bit re-reference prediction value (RRPV) per page and evicts pages whose
predicted re-reference interval is *distant* (RRPV == 2^M - 1).  This
implementation uses the **frequency-priority (FP)** hit promotion the
paper selects: a hit decrements RRPV by one instead of zeroing it.

Section V-B enhances RRIP for unified memory with a **delay field** that
records the global page-fault number at insertion; a page only qualifies
for eviction when, additionally, ``current_fault - delay >= threshold``.
The paper parameterises the enhancement by access-pattern type:

* type II (thrashing) applications — insert at *distant* RRPV,
  threshold 128;
* all other applications — insert at *long* RRPV (2^M - 2), threshold 0.

The insertion mode is supplied per workload by the experiment runner via
:class:`RRIPConfig` (the paper configures it the same way, from the
offline pattern classification of Table II).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.policies.base import EvictionPolicy, PolicyError


@dataclass(frozen=True)
class RRIPConfig:
    """Shape of the RRIP predictor and the delay-field enhancement."""

    m_bits: int = 2
    #: ``True`` → insert at distant RRPV (paper's type II setting).
    insert_distant: bool = False
    #: Minimum fault-number margin before an inserted page may be evicted.
    delay_threshold: int = 0

    def __post_init__(self) -> None:
        if self.m_bits < 1:
            raise ValueError(f"m_bits must be >= 1, got {self.m_bits}")
        if self.delay_threshold < 0:
            raise ValueError("delay_threshold must be non-negative")

    @property
    def max_rrpv(self) -> int:
        """The distant re-reference prediction value."""
        return (1 << self.m_bits) - 1

    @property
    def insertion_rrpv(self) -> int:
        """RRPV assigned to newly inserted pages."""
        return self.max_rrpv if self.insert_distant else self.max_rrpv - 1

    @classmethod
    def for_pattern(cls, is_thrashing: bool, m_bits: int = 2) -> "RRIPConfig":
        """Return the paper's per-pattern configuration (Section V-B)."""
        if is_thrashing:
            return cls(m_bits=m_bits, insert_distant=True, delay_threshold=128)
        return cls(m_bits=m_bits, insert_distant=False, delay_threshold=0)


class _Bucket:
    """All pages sharing one RRPV, ordered by arrival into the bucket."""

    __slots__ = ("rrpv", "pages")

    def __init__(self, rrpv: int) -> None:
        self.rrpv = rrpv
        #: page → delay field (global fault number at insertion).
        self.pages: OrderedDict[int, int] = OrderedDict()


class RRIPPolicy(EvictionPolicy):
    """RRIP-FP over resident pages with the delay-field enhancement.

    Pages are kept in per-RRPV buckets so aging (incrementing every
    page's RRPV) is a bucket rotation rather than an O(n) sweep.
    """

    name = "rrip"
    uses_walk_hits = True

    def __init__(self, config: RRIPConfig = RRIPConfig()) -> None:
        self.config = config
        self._buckets: list[_Bucket] = [
            _Bucket(r) for r in range(config.max_rrpv + 1)
        ]
        self._bucket_of: dict[int, _Bucket] = {}
        self._current_fault = 0
        self.aging_sweeps = 0

    def on_page_in(self, page: int, fault_number: int) -> None:
        self._current_fault = fault_number
        old = self._bucket_of.get(page)
        if old is not None:
            del old.pages[page]
        bucket = self._buckets[self.config.insertion_rrpv]
        bucket.pages[page] = fault_number
        self._bucket_of[page] = bucket

    def on_walk_hit(self, page: int) -> None:
        bucket = self._bucket_of.get(page)
        if bucket is None or bucket.rrpv == 0:
            return
        target = self._buckets[bucket.rrpv - 1]
        delay = bucket.pages.pop(page)
        target.pages[page] = delay
        self._bucket_of[page] = target

    def _age(self) -> None:
        """Increment every page's RRPV by one (saturating at distant)."""
        self.aging_sweeps += 1
        top = self._buckets[-1]
        donor = self._buckets[-2]
        for page, delay in donor.pages.items():
            top.pages[page] = delay
            self._bucket_of[page] = top
        donor.pages.clear()
        # Rotate the remaining buckets up by one RRPV.
        for rrpv in range(len(self._buckets) - 2, 0, -1):
            self._buckets[rrpv] = self._buckets[rrpv - 1]
            self._buckets[rrpv].rrpv = rrpv
        self._buckets[0] = _Bucket(0)

    def select_victim(self) -> int:
        if not self._bucket_of:
            raise PolicyError("no resident pages to evict")
        top = self._buckets[-1]
        sweeps = 0
        while not top.pages:
            self._age()
            top = self._buckets[-1]
            sweeps += 1
            if sweeps > self.config.max_rrpv + 1:
                raise PolicyError("RRIP aging failed to surface a victim")
        threshold = self.config.delay_threshold
        victim = None
        if threshold:
            for page, delay in top.pages.items():
                if self._current_fault - delay >= threshold:
                    victim = page
                    break
            if victim is None:
                # No distant page is old enough: fall back to the one with
                # the oldest delay field so eviction always makes progress.
                victim = min(top.pages, key=top.pages.__getitem__)
        else:
            victim = next(iter(top.pages))
        del top.pages[victim]
        del self._bucket_of[victim]
        return victim

    def resident_count(self) -> int:
        return len(self._bucket_of)
