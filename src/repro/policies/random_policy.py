"""Random page replacement.

Zheng et al. [10] observed (and Section V-B corroborates) that random
eviction is competitive with LRU for most access patterns except types IV
and VI.  The policy keeps resident pages in a flat array with an index map
so victim selection is O(1).
"""

from __future__ import annotations

import random

from repro.policies.base import EvictionPolicy, PolicyError


class RandomPolicy(EvictionPolicy):
    """Uniform random victim selection with a seedable RNG."""

    name = "random"

    def __init__(self, seed: int = 0x5EED) -> None:
        self._rng = random.Random(seed)
        self._pages: list[int] = []
        self._index: dict[int, int] = {}

    def on_page_in(self, page: int, fault_number: int) -> None:
        if page in self._index:
            return
        self._index[page] = len(self._pages)
        self._pages.append(page)

    def select_victim(self) -> int:
        if not self._pages:
            raise PolicyError("no resident pages to evict")
        slot = self._rng.randrange(len(self._pages))
        page = self._pages[slot]
        last = self._pages.pop()
        if last != page:
            self._pages[slot] = last
            self._index[last] = slot
        del self._index[page]
        return page

    def resident_count(self) -> int:
        return len(self._pages)
