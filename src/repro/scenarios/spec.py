"""Declarative, hashable experiment identity — the one canonical form.

Before this module existed, the identity of an experiment was computed in
three subtly different places, and they disagreed: ``matrix_run_id``
hashed ``config=None`` and an explicit default ``GPUConfig()`` to
*different* run ids while ``sim_cache.fingerprint`` normalised them to
the same digest, and the journal's ``run_start`` record carried only a
``custom_config: bool`` that could not tell a default-config resume from
a genuinely different one.  DESIGN.md §10 tells the full story.

:class:`ScenarioSpec` (one simulation cell) and :class:`MatrixSpec` (a
grid of cells) are now the single source of truth.  Every hash-derived
identity in the repo — the persistent result-cache fingerprint, the
matrix run id, the journal ``run_start`` spec hash, the golden-snapshot
spec digest, and the registry manifest — is a SHA-256 of the one
normalised string :meth:`ScenarioSpec.canonical` /
:meth:`MatrixSpec.canonical` produce.  Hand-rolling a canonical spec
string anywhere else is a lint error (REP008).

Normalisation rules (applied identically everywhere):

* ``config=None`` ≡ the explicit default ``GPUConfig()``;
* ``hpe_config`` participates only when the policy is (or the matrix
  includes) ``hpe`` — it cannot affect any other policy — and ``None``
  ≡ the default ``HPEConfig()`` when it does;
* policy names are lower-cased, paper-suite workload names upper-cased;
* generator ``params`` are sorted by key.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.core.hpe import HPEConfig
from repro.sim.config import GPUConfig

#: Default RNG seed for trace generation (fixed for reproducibility;
#: re-exported by :mod:`repro.experiments.runner`).
DEFAULT_SEED = 7

#: The workload family of the paper's Table II application suite.
PAPER_FAMILY = "paper"

#: The synthetic differential-trace generators of the golden harness.
GOLDEN_FAMILY = "golden"

#: Families a spec may declare today.  New families (ML-training chunks,
#: imported real traces, multi-page-size memory — ROADMAP item 3) are
#: added here and immediately participate in every identity hash.
KNOWN_FAMILIES = (PAPER_FAMILY, GOLDEN_FAMILY)


class ScenarioError(ValueError):
    """A scenario spec or registry lookup is invalid."""


def stable_config_repr(config: object) -> str:
    """Deterministic text form of a (possibly nested) config dataclass."""
    if config is None:
        return "None"
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        fields = ", ".join(
            f"{f.name}={stable_config_repr(getattr(config, f.name))}"
            for f in dataclasses.fields(config)
        )
        return f"{type(config).__name__}({fields})"
    return repr(config)


def _cache_schema_version() -> int:
    # Late import: repro.sim.cache imports this module at load time.
    from repro.sim.cache import CACHE_SCHEMA_VERSION

    return CACHE_SCHEMA_VERSION


def _journal_schema_version() -> int:
    from repro.resil.journal import JOURNAL_SCHEMA_VERSION

    return JOURNAL_SCHEMA_VERSION


def _normalise_params(
    params: object,
) -> tuple[tuple[str, object], ...]:
    """Sorted, validated ``params`` tuple from a mapping or pair sequence."""
    if isinstance(params, Mapping):
        items = list(params.items())
    else:
        items = [tuple(pair) for pair in params]  # type: ignore[union-attr]
    out: list[tuple[str, object]] = []
    for item in items:
        if len(item) != 2 or not isinstance(item[0], str):
            raise ScenarioError(
                f"params entries must be (name, value) pairs, got {item!r}"
            )
        name, value = item
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ScenarioError(
                f"param {name!r} must be a scalar, "
                f"got {type(value).__name__}"
            )
        out.append((name, value))
    out.sort(key=lambda pair: pair[0])
    names = [name for name, _ in out]
    if len(set(names)) != len(names):
        raise ScenarioError(f"duplicate param names in {names}")
    return tuple(out)


def _coerce_config(value: object, kind: str) -> object:
    """Build a GPUConfig/HPEConfig from a mapping, validating fields."""
    cls = GPUConfig if kind == "config" else HPEConfig
    if value is None or isinstance(value, cls):
        return value
    if isinstance(value, Mapping):
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(value) - known)
        if unknown:
            raise ScenarioError(
                f"unknown {cls.__name__} field(s): {', '.join(unknown)}"
            )
        try:
            return cls(**value)
        except (TypeError, ValueError) as error:
            raise ScenarioError(f"invalid {cls.__name__}: {error}") from error
    raise ScenarioError(
        f"{kind} must be a {cls.__name__}, a mapping, or None, "
        f"got {type(value).__name__}"
    )


def _check_family(family: str) -> None:
    if family not in KNOWN_FAMILIES:
        raise ScenarioError(
            f"unknown workload family {family!r}; "
            f"known: {', '.join(KNOWN_FAMILIES)}"
        )


def _params_canonical(params: tuple[tuple[str, object], ...]) -> str:
    return ",".join(f"{name}={value!r}" for name, value in params)


@dataclass(frozen=True)
class ScenarioSpec:
    """Identity of one simulation run — everything that can change it.

    Frozen, hashable, and picklable: matrix workers receive the cell
    spec itself across the process boundary, so the digest a worker
    computes is the digest the parent journals.
    """

    workload: str
    policy: str
    rate: float
    seed: int = DEFAULT_SEED
    scale: float = 1.0
    family: str = PAPER_FAMILY
    config: Optional[GPUConfig] = None
    hpe_config: Optional[HPEConfig] = None
    prefetch_degree: int = 0
    #: Requested simulator tier.  ``None`` ≡ the engine default; tiers
    #: 0–2 are bit-identical so they share one identity, while the
    #: relaxed tier 3 (DESIGN §13) is *metric-equivalent* only and must
    #: carry its own digest — see :meth:`canonical`.
    fastpath: Optional[int] = None
    #: Extra generator parameters for non-paper families (sorted pairs).
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        _check_family(self.family)
        object.__setattr__(self, "policy", self.policy.lower())
        if self.family == PAPER_FAMILY:
            object.__setattr__(self, "workload", self.workload.upper())
        object.__setattr__(self, "params", _normalise_params(self.params))
        if self.prefetch_degree < 0:
            raise ScenarioError("prefetch_degree must be non-negative")
        if self.fastpath is not None and self.fastpath not in (0, 1, 2, 3):
            raise ScenarioError(
                f"fastpath must be None or 0..3, got {self.fastpath!r}"
            )

    @property
    def effective_config(self) -> GPUConfig:
        """The GPU configuration with ``None`` ≡ the default instance."""
        return self.config or GPUConfig()

    @property
    def effective_hpe_config(self) -> Optional[HPEConfig]:
        """The HPE configuration as it participates in the identity.

        ``None`` for every non-HPE policy (it cannot affect them, and
        normalising keeps sweeps sharing cache entries for their
        baselines); the default instance when HPE runs unconfigured.
        """
        if self.policy != "hpe":
            return None
        return self.hpe_config or HPEConfig()

    def canonical(self) -> str:
        """The one normalised identity string every hash derives from.

        The ``fastpath`` field participates **only when it selects a
        relaxed tier** (≥ 3): tiers 0–2 are proven bit-identical by the
        differential harness, so pinning any of them is a performance
        knob, not an identity change, and every pre-existing digest
        stays stable.  Tier-3 results may drift within the §13
        tolerances and therefore hash differently.
        """
        parts = [
            f"schema={_cache_schema_version()}",
            f"family={self.family}",
            f"workload={self.workload}",
            f"policy={self.policy}",
            f"rate={self.rate!r}",
            f"seed={self.seed}",
            f"scale={self.scale!r}",
            f"prefetch={self.prefetch_degree}",
            f"config={stable_config_repr(self.effective_config)}",
            f"hpe={stable_config_repr(self.effective_hpe_config)}",
            f"params={_params_canonical(self.params)}",
        ]
        if self.fastpath is not None and self.fastpath >= 3:
            parts.append(f"fastpath={self.fastpath}")
        return "|".join(parts)

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical` — the result-cache fingerprint."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Build a spec from plain data, rejecting unknown fields."""
        return cls(**_validated_fields(cls, data))

    def describe(self) -> dict[str, object]:
        """JSON-able view (CLI ``scenarios show``, the service layer)."""
        return {
            "family": self.family,
            "workload": self.workload,
            "policy": self.policy,
            "rate": self.rate,
            "seed": self.seed,
            "scale": self.scale,
            "prefetch_degree": self.prefetch_degree,
            "fastpath": self.fastpath,
            "config": stable_config_repr(self.config),
            "hpe_config": stable_config_repr(self.hpe_config),
            "params": dict(self.params),
            "digest": self.digest(),
        }


@dataclass(frozen=True)
class MatrixSpec:
    """Identity of one (policies × rates × workloads) experiment grid."""

    policies: tuple[str, ...]
    rates: tuple[float, ...]
    apps: tuple[str, ...]
    seed: int = DEFAULT_SEED
    scale: float = 1.0
    family: str = PAPER_FAMILY
    config: Optional[GPUConfig] = None
    hpe_config: Optional[HPEConfig] = None
    prefetch_degree: int = 0

    def __post_init__(self) -> None:
        _check_family(self.family)
        object.__setattr__(
            self, "policies", tuple(p.lower() for p in self.policies)
        )
        object.__setattr__(self, "rates", tuple(self.rates))
        apps = tuple(self.apps)
        if self.family == PAPER_FAMILY:
            apps = tuple(a.upper() for a in apps)
        object.__setattr__(self, "apps", apps)
        if self.prefetch_degree < 0:
            raise ScenarioError("prefetch_degree must be non-negative")

    @property
    def effective_config(self) -> GPUConfig:
        """The GPU configuration with ``None`` ≡ the default instance."""
        return self.config or GPUConfig()

    @property
    def effective_hpe_config(self) -> Optional[HPEConfig]:
        """HPE config as it participates: only when the grid runs HPE."""
        if "hpe" not in self.policies:
            return None
        return self.hpe_config or HPEConfig()

    def cell(self, app: str, policy: str, rate: float) -> ScenarioSpec:
        """The :class:`ScenarioSpec` of one grid cell."""
        return ScenarioSpec(
            workload=app,
            policy=policy,
            rate=rate,
            seed=self.seed,
            scale=self.scale,
            family=self.family,
            config=self.config,
            hpe_config=self.hpe_config,
            prefetch_degree=self.prefetch_degree,
        )

    def cells(self) -> list[ScenarioSpec]:
        """Every cell spec in fold order (rate → app → policy)."""
        return [
            self.cell(app, policy, rate)
            for rate in self.rates
            for app in self.apps
            for policy in self.policies
        ]

    def canonical(self) -> str:
        """The one normalised identity string the run id derives from."""
        return "|".join([
            f"journal-schema={_journal_schema_version()}",
            f"cache-schema={_cache_schema_version()}",
            f"family={self.family}",
            f"policies={','.join(self.policies)}",
            f"rates={','.join(repr(r) for r in self.rates)}",
            f"apps={','.join(self.apps)}",
            f"seed={self.seed}",
            f"scale={self.scale!r}",
            f"prefetch={self.prefetch_degree}",
            f"config={stable_config_repr(self.effective_config)}",
            f"hpe={stable_config_repr(self.effective_hpe_config)}",
        ])

    def spec_hash(self) -> str:
        """SHA-256 of :meth:`canonical` — the journal ``spec_hash``."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def run_id(self) -> str:
        """The journal run id (a readable prefix of :meth:`spec_hash`)."""
        return f"run-{self.spec_hash()[:12]}"

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MatrixSpec":
        """Build a spec from plain data, rejecting unknown fields."""
        fields = _validated_fields(cls, data)
        for name in ("policies", "rates", "apps"):
            if name in fields:
                value = fields[name]
                if isinstance(value, (str, bytes)) or not isinstance(
                    value, Sequence
                ):
                    raise ScenarioError(
                        f"{name} must be a sequence, "
                        f"got {type(value).__name__}"
                    )
                fields[name] = tuple(value)
        return cls(**fields)

    def describe(self) -> dict[str, object]:
        """JSON-able view (CLI ``scenarios show``, the service layer)."""
        return {
            "family": self.family,
            "policies": list(self.policies),
            "rates": list(self.rates),
            "apps": list(self.apps),
            "seed": self.seed,
            "scale": self.scale,
            "prefetch_degree": self.prefetch_degree,
            "config": stable_config_repr(self.config),
            "hpe_config": stable_config_repr(self.hpe_config),
            "cells": len(self.cells()),
            "run_id": self.run_id(),
            "spec_hash": self.spec_hash(),
        }


def _validated_fields(
    cls: type, data: Mapping[str, object]
) -> dict[str, Any]:
    """Filter ``data`` against ``cls``'s fields, rejecting unknowns."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ScenarioError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    fields = dict(data)
    if "config" in fields:
        fields["config"] = _coerce_config(fields["config"], "config")
    if "hpe_config" in fields:
        fields["hpe_config"] = _coerce_config(fields["hpe_config"], "hpe")
    return fields
