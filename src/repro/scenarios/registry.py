"""Named scenario registry — the experiments the repo knows by name.

The registry maps short names to :class:`~repro.scenarios.spec.MatrixSpec`
instances so experiments can be listed, inspected, and launched without
hand-assembling a grid — ``hpe-repro scenarios list|show|run NAME`` — and
so the serving layer (ROADMAP item 1) can validate client requests
against a closed set cheaply.

Identity discipline: every registered scenario's ``spec_hash`` is pinned
in :mod:`repro.scenarios.manifest`.  ``hpe-repro scenarios verify`` (run
in CI) recomputes the hashes and fails on any drift, so a change to the
canonical form, a default config value, or a schema version is always a
*deliberate*, reviewable diff of the manifest — bumped together with
``CACHE_SCHEMA_VERSION`` — never a silent cache/journal invalidation.

Built-ins are registered lazily on first access: the paper grid needs
:data:`~repro.experiments.runner.POLICY_NAMES` and the application
suite, which import a good chunk of the world.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scenarios.spec import MatrixSpec, ScenarioError


@dataclass(frozen=True)
class RegisteredScenario:
    """One named entry: the spec plus a human-readable description."""

    name: str
    description: str
    spec: MatrixSpec


_REGISTRY: dict[str, RegisteredScenario] = {}
_BUILTINS_LOADED = False


def register(
    name: str,
    spec: MatrixSpec,
    description: str = "",
    replace: bool = False,
) -> RegisteredScenario:
    """Add a named scenario; re-registration requires ``replace=True``."""
    if not name or any(ch.isspace() for ch in name):
        raise ScenarioError(
            f"scenario name must be non-empty and whitespace-free, "
            f"got {name!r}"
        )
    if not replace and name in _REGISTRY:
        raise ScenarioError(f"scenario {name!r} is already registered")
    entry = RegisteredScenario(name=name, description=description, spec=spec)
    _REGISTRY[name] = entry
    return entry


def unregister(name: str) -> None:
    """Remove a named scenario (test isolation hook)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> RegisteredScenario:
    """Look up one scenario; unknown names list what *is* registered."""
    _ensure_builtins()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; "
            f"known: {', '.join(scenario_names())}"
        )
    return entry


def scenario_names() -> list[str]:
    """Registered names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def all_scenarios() -> list[RegisteredScenario]:
    """Every registered scenario, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def registry_digests() -> dict[str, str]:
    """``{name: spec_hash}`` for every registered scenario."""
    return {
        entry.name: entry.spec.spec_hash() for entry in all_scenarios()
    }


def verify_manifest() -> list[str]:
    """Compare live registry digests against the committed manifest.

    Returns one human-readable line per drifted, missing, or unpinned
    scenario; empty means every hash matches.
    """
    from repro.scenarios.manifest import SCENARIO_DIGESTS

    problems: list[str] = []
    live = registry_digests()
    for name in sorted(set(live) | set(SCENARIO_DIGESTS)):
        if name not in SCENARIO_DIGESTS:
            problems.append(
                f"{name}: registered but not pinned in "
                "repro/scenarios/manifest.py"
            )
        elif name not in live:
            problems.append(f"{name}: pinned in the manifest but not "
                            "registered")
        elif live[name] != SCENARIO_DIGESTS[name]:
            problems.append(
                f"{name}: spec hash {live[name]} != pinned "
                f"{SCENARIO_DIGESTS[name]} — experiment identity drifted; "
                "if intentional, update repro/scenarios/manifest.py "
                "(and bump CACHE_SCHEMA_VERSION when cached results are "
                "affected)"
            )
    return problems


def _ensure_builtins() -> None:
    """Register the built-in scenarios exactly once (lazy, idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True

    from repro.experiments.runner import PAPER_RATES, POLICY_NAMES
    from repro.sim.config import GPUConfig
    from repro.workloads.suite import APPLICATION_ORDER

    paper_policies = ("ideal", "lru", "random", "rrip", "clock-pro", "hpe")

    register(
        "paper-grid",
        MatrixSpec(
            policies=tuple(POLICY_NAMES),
            rates=PAPER_RATES,
            apps=tuple(APPLICATION_ORDER),
        ),
        "Every policy (paper + extensions) x both paper rates x the "
        "full 23-application suite",
    )
    register(
        "paper-baselines",
        MatrixSpec(
            policies=paper_policies,
            rates=PAPER_RATES,
            apps=tuple(APPLICATION_ORDER),
        ),
        "The paper's six evaluated policies on the full suite "
        "(Figs. 3/7-15 source grid)",
    )
    register(
        "smoke",
        MatrixSpec(
            policies=("lru", "hpe"),
            rates=(0.75,),
            apps=("BFS", "STN", "HOT"),
            scale=0.25,
        ),
        "Two policies x three small apps at quarter scale (CI smoke "
        "grid)",
    )
    register(
        "walk-latency-20",
        MatrixSpec(
            policies=("lru", "hpe"),
            rates=(0.75,),
            apps=tuple(APPLICATION_ORDER),
            config=GPUConfig().with_walk_latency(20),
        ),
        "Section V-B sensitivity point: 20-cycle page walks instead of "
        "the default 8",
    )
    register(
        "prefetch-64k",
        MatrixSpec(
            policies=("lru", "hpe"),
            rates=(0.75,),
            apps=tuple(APPLICATION_ORDER),
            prefetch_degree=15,
        ),
        "Fault-around extension grid: degree 15 matches Pascal's 64 KB "
        "fault-around granularity",
    )
