"""Scenario specs and registry — the single experiment-identity authority.

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` (one simulation
  cell) and :class:`MatrixSpec` (a grid), whose ``canonical()`` strings
  are the sole source of every identity hash in the repo;
* :mod:`repro.scenarios.registry` — named scenarios (``hpe-repro
  scenarios list|show|run``);
* :mod:`repro.scenarios.manifest` — pinned spec hashes of every
  registered scenario, verified in CI.
"""

from repro.scenarios.registry import (
    RegisteredScenario,
    all_scenarios,
    get_scenario,
    register,
    registry_digests,
    scenario_names,
    unregister,
    verify_manifest,
)
from repro.scenarios.spec import (
    DEFAULT_SEED,
    GOLDEN_FAMILY,
    KNOWN_FAMILIES,
    PAPER_FAMILY,
    MatrixSpec,
    ScenarioError,
    ScenarioSpec,
    stable_config_repr,
)

__all__ = [
    "DEFAULT_SEED",
    "GOLDEN_FAMILY",
    "KNOWN_FAMILIES",
    "MatrixSpec",
    "PAPER_FAMILY",
    "RegisteredScenario",
    "ScenarioError",
    "ScenarioSpec",
    "all_scenarios",
    "get_scenario",
    "register",
    "registry_digests",
    "scenario_names",
    "stable_config_repr",
    "unregister",
    "verify_manifest",
]
