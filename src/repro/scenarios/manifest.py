"""Pinned spec hashes for every registered scenario.

``hpe-repro scenarios verify`` (run in CI and in the tier-1 suite)
recomputes each registered scenario's
:meth:`~repro.scenarios.spec.MatrixSpec.spec_hash` and compares it
against this table.  A mismatch means experiment identity drifted — a
canonical-form change, a default config value, a schema bump — and the
fix is a *deliberate* update of this file in the same commit (bumping
``CACHE_SCHEMA_VERSION`` whenever cached results are invalidated), never
a silent re-keying of caches and journals.

Regenerate with::

    PYTHONPATH=src python -c "from repro.scenarios import registry; \
print('\n'.join(f'    \"{n}\": \"{d}\",' \
for n, d in registry.registry_digests().items()))"
"""

from __future__ import annotations

#: ``{scenario name: MatrixSpec.spec_hash()}`` at CACHE_SCHEMA_VERSION 4
#: / JOURNAL_SCHEMA_VERSION 2.
SCENARIO_DIGESTS: dict[str, str] = {
    "paper-baselines": "f5f2d666b89fb1d05660134fd15e0568cc9605daa845612c8108e422ab89b5f7",
    "paper-grid": "fcb15d1b7d38289b10f64e9091351b0ccd60f28e971a57a37254774b12e8714c",
    "prefetch-64k": "868f677fad0b793be4b41b7e71d733f6ddcefc2ca71f8e7301b52e615aa18d65",
    "smoke": "3ea82d5db7f5291701aff5def7ab437bc5029f95f51e1cfc28ae46beec6d5ebf",
    "walk-latency-20": "f773be5d19d04d0808a7ced7a5c6d74991e6a5b82563b244f97b9bd7428322b5",
}
