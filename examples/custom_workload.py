#!/usr/bin/env python3
"""Bring your own workload: drive HPE with a custom page-touch trace.

Models a two-phase analytics kernel — build a hash table over a streamed
relation, then probe it with skewed (Zipf-like) lookups — a pattern that
is not in the paper's suite.  Shows how to:

* construct a :class:`~repro.workloads.base.Trace` from raw page numbers;
* inspect HPE's internal state after a run (classification, strategy
  timeline, divisions, HIR traffic);
* compare against the offline optimum.

Run with:  python examples/custom_workload.py
"""

import random

from repro import HPEPolicy, IdealPolicy, LRUPolicy, simulate
from repro.core.strategies import StrategyKind
from repro.workloads import PatternType, Trace


def build_hash_join_trace(
    build_pages: int = 1024,
    probe_pages: int = 2048,
    probes: int = 6000,
    seed: int = 42,
) -> Trace:
    """Streamed build phase, then skewed random probes into the table."""
    rng = random.Random(seed)
    pages: list[int] = []
    # Phase 1: scan the build relation and write the hash table.
    table_pages = list(range(build_pages))
    pages.extend(table_pages)
    # Phase 2: stream the probe relation; each input page triggers a
    # skewed lookup into the hash table (80/20 hot split).
    hot = table_pages[: build_pages // 5]
    for i in range(probes):
        pages.append(build_pages + i % probe_pages)   # streamed input
        if rng.random() < 0.8:
            pages.append(rng.choice(hot))             # hot bucket
        else:
            pages.append(rng.choice(table_pages))     # cold bucket
    return Trace("hash-join", pages, PatternType.MOST_REPETITIVE)


def main() -> None:
    trace = build_hash_join_trace()
    capacity = trace.capacity_for(0.6)
    print(f"hash-join trace: {trace.footprint_pages} pages, "
          f"{len(trace)} episodes, memory {capacity} pages (60%)\n")

    hpe = HPEPolicy()
    results = {
        "lru": simulate(trace.pages, LRUPolicy(), capacity),
        "hpe": simulate(trace.pages, hpe, capacity),
        "ideal": simulate(trace.pages, IdealPolicy(), capacity),
    }
    for name, result in results.items():
        print(f"{name:6s} faults={result.faults:6d} "
              f"evictions={result.evictions:6d} ipc={result.ipc:.4f}")

    print("\n-- inside HPE --")
    classification = hpe.classification
    if classification is not None:
        census = classification.census
        print(f"classified       : {classification.category.value} "
              f"(ratio1={census.ratio1:.2f}, ratio2={census.ratio2:.2f})")
    timeline = hpe.adjustment.timeline(hpe.stats.faults)
    segments = ", ".join(
        f"{seg.strategy.value}[{seg.start_fault}..{seg.end_fault})"
        for seg in timeline
    )
    print(f"strategy timeline: {segments}")
    print(f"page-set divisions: {hpe.stats.divisions}")
    print(f"HIR transfers    : {hpe.hir.stats.transfers} "
          f"({hpe.hir.stats.mean_entries_per_transfer:.1f} entries each, "
          f"{hpe.hir.stats.conflicts} way conflicts)")
    mru_c = sum(
        seg.end_fault - seg.start_fault
        for seg in timeline if seg.strategy is StrategyKind.MRU_C
    )
    print(f"MRU-C fraction   : {mru_c / max(1, hpe.stats.faults):.0%} of faults")


if __name__ == "__main__":
    main()
