#!/usr/bin/env python3
"""How much oversubscription can demand paging absorb?

Sweeps the oversubscription rate from 95% down to 40% for a thrashing
stencil workload (HSD) and a streaming workload (HOT), printing HPE's and
LRU's slowdown relative to a fully-fitting run.  This extends the paper's
two-point evaluation (75% / 50%) into a full curve — useful when sizing
GPU memory for a workload.

Run with:  python examples/oversubscription_sweep.py
"""

from repro.experiments.report import format_table
from repro.experiments.runner import run_application


def sweep(app: str, rates) -> list[list[object]]:
    baseline = run_application(app, "lru", 1.0)
    rows = []
    for rate in rates:
        lru = run_application(app, "lru", rate)
        hpe = run_application(app, "hpe", rate)
        rows.append([
            f"{rate:.0%}",
            baseline.ipc / lru.ipc,
            baseline.ipc / hpe.ipc,
            hpe.ipc / lru.ipc,
        ])
    return rows


def main() -> None:
    rates = (0.95, 0.85, 0.75, 0.60, 0.50, 0.40)
    for app, story in (
        ("HSD", "thrashing stencil — LRU collapses as soon as the working "
                "set stops fitting"),
        ("HOT", "pure streaming — any policy degrades gracefully"),
    ):
        rows = sweep(app, rates)
        print(format_table(
            ["memory", "LRU slowdown", "HPE slowdown", "HPE speedup"],
            rows,
            title=f"{app}: {story}",
        ))
        print()
    print("The crossover story: for streaming workloads the eviction")
    print("policy barely matters, so buy less memory; for iterative")
    print("workloads HPE moves the cliff edge several capacity steps")
    print("to the left compared with LRU.")


if __name__ == "__main__":
    main()
