#!/usr/bin/env python3
"""Policy shootout across the six GPU access-pattern types (Fig. 2).

For one representative application of each pattern type, runs every
eviction policy the paper compares (plus FIFO/LFU extras) and prints the
eviction counts normalised to the offline optimum — a compact version of
the paper's Fig. 3 + Fig. 12 analysis.

Run with:  python examples/policy_shootout.py
"""

from repro.experiments.report import format_table
from repro.experiments.runner import run_application

#: One representative application per pattern type (Table II).
REPRESENTATIVES = {
    "I (streaming)": "GEM",
    "II (thrashing)": "HSD",
    "III (part repetitive)": "PAT",
    "IV (most repetitive)": "BFS",
    "V (repetitive thrashing)": "SGM",
    "VI (region moving)": "B+T",
}

POLICIES = ("lru", "random", "rrip", "clock-pro", "arc", "car",
            "wsclock", "fifo", "lfu", "hpe")


def main() -> None:
    rate = 0.75
    rows = []
    for label, app in REPRESENTATIVES.items():
        ideal = run_application(app, "ideal", rate)
        row = [f"{app} {label}"]
        for policy in POLICIES:
            result = run_application(app, policy, rate)
            row.append(result.evictions / max(1, ideal.evictions))
        rows.append(row)
    print(format_table(
        ["application"] + list(POLICIES), rows,
        title=f"Evictions normalised to Ideal at {rate:.0%} oversubscription "
              "(lower is better)",
    ))
    print("\nReading the shape: LRU collapses on type II, frequency-based")
    print("policies (RRIP/LFU) mispredict type VI, random is middling")
    print("everywhere, and HPE tracks the best policy per pattern —")
    print("exactly the behaviour HPE's classification machinery targets.")


if __name__ == "__main__":
    main()
