#!/usr/bin/env python3
"""Quickstart: simulate GPU memory oversubscription with two policies.

Builds a thrashing workload (the access pattern that defeats LRU), runs
it through the UVM simulator under LRU and under HPE at 75%
oversubscription, and prints the paper's headline comparison.

Run with:  python examples/quickstart.py
"""

from repro import HPEPolicy, IdealPolicy, LRUPolicy, simulate
from repro.workloads import thrashing


def main() -> None:
    # A type II workload: 2048 pages (8 MB of 4 KB pages) swept 6 times.
    trace = thrashing(num_pages=2048, iterations=6)

    # 75% oversubscription: only 75% of the footprint fits in GPU memory.
    capacity = trace.capacity_for(0.75)
    print(f"workload : {trace.footprint_pages} pages x "
          f"{trace.metadata['iterations']} sweeps "
          f"({len(trace)} page-touch episodes)")
    print(f"memory   : {capacity} pages (75% of footprint)\n")

    results = {}
    for policy in (LRUPolicy(), HPEPolicy(), IdealPolicy()):
        results[policy.name] = simulate(trace.pages, policy, capacity)

    print(f"{'policy':8s} {'faults':>8s} {'evictions':>10s} {'IPC':>10s}")
    for name, result in results.items():
        print(f"{name:8s} {result.faults:8d} {result.evictions:10d} "
              f"{result.ipc:10.4f}")

    speedup = results["hpe"].ipc / results["lru"].ipc
    gap = results["hpe"].evictions / results["ideal"].evictions
    print(f"\nHPE speedup over LRU : {speedup:.2f}x")
    print(f"HPE evictions vs MIN : {gap:.2f}x")
    print("\nLRU evicts exactly the pages the next sweep needs; HPE's")
    print("MRU-C strategy keeps most of the working set resident, close")
    print("to Belady's offline optimum (the paper's Fig. 10 story).")


if __name__ == "__main__":
    main()
