"""HTTP transport: routing, hostile clients, end-to-end chaos runs.

The acceptance contract of ISSUE 9: every request gets a structured
response — a result, explicit DEGRADED cells, or an HTTP error body
with ``Retry-After`` where meaningful.  Nothing is silently dropped.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.resil.settings import ResilSettings
from repro.serve.chaos_client import ChaosClient, chaos_roll
from repro.serve.client import ServiceClient
from repro.serve.http import MAX_BODY_BYTES, ServerThread
from repro.serve.service import EvaluationService

from tests.serve.test_service import CELL_A, CELL_B, StubRunner

FAST = dict(
    rate_limit=0.0, max_queue=16, max_concurrent=2,
    request_deadline=0.0, breaker_threshold=0, drain_grace=1.0,
    read_timeout=0.8,
)


@pytest.fixture
def stub_server():
    runner = StubRunner(delay=0.05)
    service = EvaluationService(ResilSettings(**FAST), runner=runner)
    with ServerThread(service) as server:
        yield server, ServiceClient("127.0.0.1", server.port), runner


class TestRouting:
    def test_health_ready_stats_scenarios(self, stub_server):
        _server, client, _runner = stub_server
        assert client.health().body == {"status": "ok"}
        assert client.ready().status == 200
        assert client.stats().status == 200
        names = {s["name"] for s in client.scenarios().body["scenarios"]}
        assert "smoke" in names

    def test_submit_watch_roundtrip(self, stub_server):
        _server, client, _runner = stub_server
        response = client.submit({"cell": CELL_A})
        assert response.status == 202
        job_id = response.body["job_id"]
        final = client.watch(job_id, timeout=30.0)
        assert final.body["status"] == "done"
        assert final.body["result"]["cells_total"] == 1

    def test_unknown_route_and_job(self, stub_server):
        _server, client, _runner = stub_server
        assert client.request("GET", "/nope").status == 404
        missing = client.job("job-ffffffff-0")
        assert missing.status == 404
        assert missing.body["error"] == "unknown_job"

    def test_wrong_method_is_405(self, stub_server):
        _server, client, _runner = stub_server
        assert client.request("GET", "/v1/submit").status == 405
        assert client.request("POST", "/healthz").status == 405

    def test_invalid_json_is_400(self, stub_server):
        server, _client, _runner = stub_server
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10.0
        ) as sock:
            body = b"{not json"
            sock.sendall(
                b"POST /v1/submit HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body
            )
            raw = sock.makefile("rb").read()
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"invalid_json" in raw

    def test_jobs_listing(self, stub_server):
        _server, client, _runner = stub_server
        client.submit({"cell": CELL_A})
        listing = client.request("GET", "/v1/jobs")
        assert listing.status == 200
        assert len(listing.body["jobs"]) == 1


class TestHostileClients:
    def test_slow_client_gets_408(self, stub_server):
        server, _client, _runner = stub_server
        chaos = ChaosClient("127.0.0.1", server.port, seed=1, slow=1.0)
        body = json.dumps({"cell": CELL_A}).encode()
        response = chaos.send_slow(body, trickle_delay=0.4)
        assert response is not None
        assert response.status == 408
        assert response.body["error"] == "read_timeout"

    def test_oversized_body_gets_413(self, stub_server):
        server, _client, _runner = stub_server
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10.0
        ) as sock:
            sock.sendall(
                b"POST /v1/submit HTTP/1.1\r\nContent-Length: "
                + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n"
            )
            raw = sock.makefile("rb").read()
        assert b"413" in raw.split(b"\r\n", 1)[0]

    def test_abandoned_connection_leaves_server_healthy(self, stub_server):
        server, client, _runner = stub_server
        chaos = ChaosClient("127.0.0.1", server.port, seed=2)
        for _ in range(5):
            chaos.send_abandoned()
        assert client.health().status == 200

    def test_malformed_http_gets_a_structured_answer(self, stub_server):
        server, client, _runner = stub_server
        chaos = ChaosClient("127.0.0.1", server.port, seed=3)
        response = chaos.send_malformed(1)  # odd index: raw garbage
        assert response is not None and response.status == 400
        response = chaos.send_malformed(0)  # even index: bad JSON shape
        assert response is not None and response.status == 400
        assert client.health().status == 200

    def test_chaos_campaign_every_request_answered(self, stub_server):
        server, client, _runner = stub_server
        chaos = ChaosClient(
            "127.0.0.1", server.port, seed=11,
            abandon=0.2, malformed=0.2, duplicate=0.3,
        )
        report = chaos.run({"cell": CELL_B}, count=25)
        # The contract: only deliberately abandoned requests may go
        # unanswered; everything else got a structured status.
        assert report.unanswered == 0
        assert report.abandoned > 0
        assert report.malformed > 0
        answered = sum(report.statuses.values())
        assert answered == report.sent - report.abandoned
        assert set(report.statuses) <= {202, 400, 429, 503}
        assert client.health().status == 200

    def test_chaos_rolls_are_deterministic(self):
        first = [chaos_roll(7, "slow", i) for i in range(10)]
        second = [chaos_roll(7, "slow", i) for i in range(10)]
        assert first == second
        assert len(set(first)) == 10


class TestConcurrentDedupe:
    def test_eight_concurrent_identical_submissions_compute_once(self):
        gate = threading.Event()
        runner = StubRunner(gate=gate)
        service = EvaluationService(ResilSettings(**FAST), runner=runner)
        with ServerThread(service) as server:
            responses = []
            lock = threading.Lock()

            def submit():
                client = ServiceClient("127.0.0.1", server.port)
                response = client.submit({"cell": CELL_A})
                with lock:
                    responses.append(response)

            threads = [
                threading.Thread(target=submit) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            gate.set()
            assert len(responses) == 8
            assert all(r.status == 202 for r in responses)
            job_ids = {r.body["job_id"] for r in responses}
            assert len(job_ids) == 1
            deduped = [r.body["deduped"] for r in responses]
            assert deduped.count(False) == 1
            assert deduped.count(True) == 7
            client = ServiceClient("127.0.0.1", server.port)
            final = client.watch(job_ids.pop(), timeout=30.0)
            assert final.body["status"] == "done"
            assert runner.calls == 1


class TestRetryAfterHeader:
    def test_429_and_503_carry_retry_after(self):
        gate = threading.Event()
        runner = StubRunner(gate=gate)
        settings = ResilSettings(
            rate_limit=0.0, max_queue=0, max_concurrent=1,
            request_deadline=0.0, breaker_threshold=0, drain_grace=1.0,
            read_timeout=0.8,
        )
        service = EvaluationService(settings, runner=runner)
        with ServerThread(service) as server:
            client = ServiceClient("127.0.0.1", server.port)
            assert client.submit({"cell": CELL_A}).status == 202
            shed = client.submit({"cell": CELL_B})
            assert shed.status == 503
            assert shed.retry_after is not None and shed.retry_after >= 1
            gate.set()


class TestEndToEndChaos:
    """Real evaluations through the real supervised pool."""

    @pytest.fixture(autouse=True)
    def _private_result_cache(self, tmp_path):
        # A warm session cache would serve these cells without ever
        # dispatching a worker (so chaos could never fire); give each
        # test its own empty cache directory instead.
        from repro.sim import cache as sim_cache

        previous_dir = sim_cache.cache_dir()
        previous_enabled = sim_cache.cache_enabled()
        sim_cache.configure(enabled=True, directory=tmp_path)
        try:
            yield
        finally:
            sim_cache.configure(
                enabled=previous_enabled, directory=previous_dir
            )

    def test_worker_crashes_degrade_not_drop(self):
        settings = ResilSettings(
            rate_limit=0.0, max_queue=8, max_concurrent=1,
            request_deadline=0.0, breaker_threshold=0, drain_grace=2.0,
            worker_timeout=60.0, retries=0, backoff=0.01, serve_jobs=2,
        )
        service = EvaluationService(settings)
        with ServerThread(service) as server:
            client = ServiceClient("127.0.0.1", server.port)
            response = client.submit({
                "cell": {"workload": "HOT", "policy": "lru",
                         "rate": 0.5, "scale": 0.25},
                "chaos": "seed=3,crash=1.0",
            })
            assert response.status == 202
            final = client.watch(response.body["job_id"], timeout=120.0)
            assert final.body["status"] == "done"
            result = final.body["result"]
            assert result["degraded"] is True
            assert result["cells_degraded"] == result["cells_total"] == 1
            failure = result["cells"][0]["failure"]
            assert failure["error_type"] in (
                "WorkerCrash", "ChaosCrashError"
            )

    def test_healthy_run_through_the_service_path(self):
        settings = ResilSettings(
            rate_limit=0.0, max_queue=8, max_concurrent=1,
            request_deadline=0.0, breaker_threshold=3, drain_grace=2.0,
            worker_timeout=60.0, retries=1, backoff=0.01, serve_jobs=2,
        )
        service = EvaluationService(settings)
        with ServerThread(service) as server:
            client = ServiceClient("127.0.0.1", server.port)
            response = client.submit({
                "cell": {"workload": "HOT", "policy": "hpe",
                         "rate": 0.5, "scale": 0.25},
            })
            assert response.status == 202
            final = client.watch(response.body["job_id"], timeout=120.0)
            assert final.body["status"] == "done"
            result = final.body["result"]
            assert result["degraded"] is False
            metrics = result["cells"][0]["metrics"]
            assert metrics["faults"] > 0
            # A second submission is served from the result cache.
            start = time.monotonic()
            again = client.submit({
                "cell": {"workload": "HOT", "policy": "hpe",
                         "rate": 0.5, "scale": 0.25},
            })
            final2 = client.watch(again.body["job_id"], timeout=60.0)
            assert final2.body["status"] == "done"
            assert time.monotonic() - start < 30.0
            assert final2.body["result"]["cells"][0]["metrics"] == metrics
